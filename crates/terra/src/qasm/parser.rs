//! Recursive-descent parser for OpenQASM 2.0.
//!
//! Produces a [`QuantumCircuit`] directly. User-defined `gate` blocks are
//! macro-expanded at application time, matching the semantics of the
//! OpenQASM 2.0 specification. `include "qelib1.inc"` enables the standard
//! gate library, which this toolchain implements natively (see
//! [`crate::gate::Gate`]).

use super::expr::{BinOp, Expr, Func};
use super::lexer::{tokenize, Token, TokenKind};
use crate::circuit::QuantumCircuit;
use crate::error::{Result, TerraError};
use crate::gate::Gate;
use crate::instruction::{Condition, Instruction};
use std::collections::HashMap;

/// A user-defined gate body statement.
#[derive(Debug, Clone)]
enum BodyOp {
    /// Call of a (builtin or previously defined) gate.
    Call { name: String, params: Vec<Expr>, qargs: Vec<String>, line: usize, col: usize },
    /// Barrier inside a gate body (ignored on expansion, per Qiskit).
    Barrier,
}

/// A `gate` definition.
#[derive(Debug, Clone)]
struct GateDef {
    params: Vec<String>,
    qargs: Vec<String>,
    body: Vec<BodyOp>,
}

/// An operand in a quantum operation: a whole register or an indexed bit.
#[derive(Debug, Clone, PartialEq)]
enum Argument {
    Register(String),
    Bit(String, usize),
}

/// Parses OpenQASM 2.0 source into a circuit.
///
/// # Errors
///
/// Returns [`TerraError::QasmParse`] with line/column information for any
/// syntactic or semantic violation (unknown gate, arity mismatch, broadcast
/// size mismatch, …).
///
/// # Examples
///
/// ```
/// use qukit_terra::qasm::parse;
///
/// # fn main() -> Result<(), qukit_terra::error::TerraError> {
/// let circ = parse(r#"
///     OPENQASM 2.0;
///     include "qelib1.inc";
///     qreg q[2];
///     creg c[2];
///     h q[0];
///     cx q[0],q[1];
///     measure q -> c;
/// "#)?;
/// assert_eq!(circ.num_qubits(), 2);
/// assert_eq!(circ.count_ops()["measure"], 2);
/// # Ok(())
/// # }
/// ```
pub fn parse(src: &str) -> Result<QuantumCircuit> {
    Parser::new(src)?.parse_program()
}

fn err_at(tok: &Token, msg: impl Into<String>) -> TerraError {
    TerraError::QasmParse { line: tok.line, col: tok.col, msg: msg.into() }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    circuit: QuantumCircuit,
    defs: HashMap<String, GateDef>,
    qelib_included: bool,
    opaque: Vec<String>,
}

impl Parser {
    fn new(src: &str) -> Result<Self> {
        Ok(Self {
            tokens: tokenize(src)?,
            pos: 0,
            circuit: QuantumCircuit::empty(),
            defs: HashMap::new(),
            qelib_included: false,
            opaque: Vec::new(),
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, tok: &Token, msg: impl Into<String>) -> TerraError {
        err_at(tok, msg)
    }

    fn expect_symbol(&mut self, sym: char) -> Result<()> {
        let tok = self.advance();
        if tok.kind == TokenKind::Symbol(sym) {
            Ok(())
        } else {
            Err(self.error(&tok, format!("expected '{sym}', found {}", tok.kind.describe())))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Token)> {
        let tok = self.advance();
        match &tok.kind {
            TokenKind::Ident(name) => Ok((name.clone(), tok.clone())),
            _ => {
                Err(self.error(&tok, format!("expected identifier, found {}", tok.kind.describe())))
            }
        }
    }

    fn expect_int(&mut self) -> Result<u64> {
        let tok = self.advance();
        match tok.kind {
            TokenKind::Int(v) => Ok(v),
            _ => Err(self.error(&tok, format!("expected integer, found {}", tok.kind.describe()))),
        }
    }

    fn eat_symbol(&mut self, sym: char) -> bool {
        if self.peek().kind == TokenKind::Symbol(sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_program(mut self) -> Result<QuantumCircuit> {
        // Header: OPENQASM 2.0;
        let tok = self.advance();
        if tok.kind != TokenKind::OpenQasm {
            return Err(self.error(&tok, "program must start with 'OPENQASM 2.0;'"));
        }
        let ver = self.advance();
        match ver.kind {
            TokenKind::Real(v) if (v - 2.0).abs() < 1e-9 => {}
            TokenKind::Int(2) => {}
            _ => return Err(self.error(&ver, "unsupported OPENQASM version (expected 2.0)")),
        }
        self.expect_symbol(';')?;

        while self.peek().kind != TokenKind::Eof {
            self.parse_statement()?;
        }
        Ok(self.circuit)
    }

    fn parse_statement(&mut self) -> Result<()> {
        let tok = self.peek().clone();
        match &tok.kind {
            TokenKind::Ident(name) => match name.as_str() {
                "include" => self.parse_include(),
                "qreg" => self.parse_reg(true),
                "creg" => self.parse_reg(false),
                "gate" => self.parse_gate_def(),
                "opaque" => self.parse_opaque(),
                "measure" => {
                    self.advance();
                    self.parse_measure(None)
                }
                "reset" => {
                    self.advance();
                    self.parse_reset()
                }
                "barrier" => {
                    self.advance();
                    self.parse_barrier()
                }
                "if" => self.parse_if(),
                _ => self.parse_gate_call(None),
            },
            _ => Err(self.error(&tok, format!("unexpected {}", tok.kind.describe()))),
        }
    }

    fn parse_include(&mut self) -> Result<()> {
        self.advance(); // include
        let tok = self.advance();
        match &tok.kind {
            TokenKind::Str(path) => {
                if path == "qelib1.inc" {
                    self.qelib_included = true;
                } else {
                    return Err(self.error(
                        &tok,
                        format!(
                            "cannot include '{path}': only the builtin 'qelib1.inc' is available"
                        ),
                    ));
                }
            }
            _ => return Err(self.error(&tok, "expected a quoted file name after 'include'")),
        }
        self.expect_symbol(';')
    }

    fn parse_reg(&mut self, quantum: bool) -> Result<()> {
        self.advance(); // qreg/creg
        let (name, tok) = self.expect_ident()?;
        self.expect_symbol('[')?;
        let size = self.expect_int()? as usize;
        self.expect_symbol(']')?;
        self.expect_symbol(';')?;
        let result = if quantum {
            self.circuit.add_qreg(&name, size).map(|_| ())
        } else {
            self.circuit.add_creg(&name, size).map(|_| ())
        };
        result.map_err(|e| self.error(&tok, e.to_string()))
    }

    fn parse_opaque(&mut self) -> Result<()> {
        self.advance(); // opaque
        let (name, _) = self.expect_ident()?;
        self.opaque.push(name);
        // Skip to the terminating semicolon.
        loop {
            let tok = self.advance();
            match tok.kind {
                TokenKind::Symbol(';') => return Ok(()),
                TokenKind::Eof => return Err(self.error(&tok, "unterminated opaque declaration")),
                _ => {}
            }
        }
    }

    fn parse_gate_def(&mut self) -> Result<()> {
        self.advance(); // gate
        let (name, name_tok) = self.expect_ident()?;
        if self.defs.contains_key(&name) {
            return Err(self.error(&name_tok, format!("gate '{name}' already defined")));
        }
        let mut params = Vec::new();
        if self.eat_symbol('(') && !self.eat_symbol(')') {
            loop {
                let (p, _) = self.expect_ident()?;
                params.push(p);
                if self.eat_symbol(')') {
                    break;
                }
                self.expect_symbol(',')?;
            }
        }
        let mut qargs = Vec::new();
        loop {
            let (q, _) = self.expect_ident()?;
            qargs.push(q);
            if !self.eat_symbol(',') {
                break;
            }
        }
        self.expect_symbol('{')?;
        let mut body = Vec::new();
        while !self.eat_symbol('}') {
            let tok = self.peek().clone();
            match &tok.kind {
                TokenKind::Ident(op) if op == "barrier" => {
                    self.advance();
                    // Skip operand list.
                    while !self.eat_symbol(';') {
                        let t = self.advance();
                        if t.kind == TokenKind::Eof {
                            return Err(self.error(&t, "unterminated gate body"));
                        }
                    }
                    body.push(BodyOp::Barrier);
                }
                TokenKind::Ident(op) => {
                    let op = op.clone();
                    self.advance();
                    let call_params = if self.eat_symbol('(') {
                        self.parse_expr_list(&params)?
                    } else {
                        Vec::new()
                    };
                    let mut call_qargs = Vec::new();
                    loop {
                        let (q, qtok) = self.expect_ident()?;
                        if !qargs.contains(&q) {
                            return Err(self.error(
                                &qtok,
                                format!("'{q}' is not a qubit argument of gate '{name}'"),
                            ));
                        }
                        call_qargs.push(q);
                        if !self.eat_symbol(',') {
                            break;
                        }
                    }
                    self.expect_symbol(';')?;
                    body.push(BodyOp::Call {
                        name: op,
                        params: call_params,
                        qargs: call_qargs,
                        line: tok.line,
                        col: tok.col,
                    });
                }
                TokenKind::Eof => return Err(self.error(&tok, "unterminated gate body")),
                _ => {
                    return Err(self
                        .error(&tok, format!("unexpected {} in gate body", tok.kind.describe())))
                }
            }
        }
        self.defs.insert(name, GateDef { params, qargs, body });
        Ok(())
    }

    /// Parses a comma-separated expression list up to the closing `)`.
    fn parse_expr_list(&mut self, formal_params: &[String]) -> Result<Vec<Expr>> {
        let mut out = Vec::new();
        if self.eat_symbol(')') {
            return Ok(out);
        }
        loop {
            out.push(self.parse_expr(formal_params)?);
            if self.eat_symbol(')') {
                return Ok(out);
            }
            self.expect_symbol(',')?;
        }
    }

    // Expression grammar: expr -> term (('+'|'-') term)*
    //                     term -> factor (('*'|'/') factor)*
    //                     factor -> unary ('^' factor)?
    //                     unary -> '-' unary | primary
    //                     primary -> num | pi | ident | func '(' expr ')' | '(' expr ')'
    fn parse_expr(&mut self, formal: &[String]) -> Result<Expr> {
        let mut lhs = self.parse_term(formal)?;
        loop {
            if self.eat_symbol('+') {
                let rhs = self.parse_term(formal)?;
                lhs = Expr::BinOp(BinOp::Add, Box::new(lhs), Box::new(rhs));
            } else if self.eat_symbol('-') {
                let rhs = self.parse_term(formal)?;
                lhs = Expr::BinOp(BinOp::Sub, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_term(&mut self, formal: &[String]) -> Result<Expr> {
        let mut lhs = self.parse_factor(formal)?;
        loop {
            if self.eat_symbol('*') {
                let rhs = self.parse_factor(formal)?;
                lhs = Expr::BinOp(BinOp::Mul, Box::new(lhs), Box::new(rhs));
            } else if self.eat_symbol('/') {
                let rhs = self.parse_factor(formal)?;
                lhs = Expr::BinOp(BinOp::Div, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn parse_factor(&mut self, formal: &[String]) -> Result<Expr> {
        let base = self.parse_unary(formal)?;
        if self.eat_symbol('^') {
            let exp = self.parse_factor(formal)?;
            Ok(Expr::BinOp(BinOp::Pow, Box::new(base), Box::new(exp)))
        } else {
            Ok(base)
        }
    }

    fn parse_unary(&mut self, formal: &[String]) -> Result<Expr> {
        if self.eat_symbol('-') {
            let inner = self.parse_unary(formal)?;
            return Ok(Expr::Neg(Box::new(inner)));
        }
        self.parse_primary(formal)
    }

    fn parse_primary(&mut self, formal: &[String]) -> Result<Expr> {
        let tok = self.advance();
        match &tok.kind {
            TokenKind::Real(v) => Ok(Expr::Num(*v)),
            TokenKind::Int(v) => Ok(Expr::Num(*v as f64)),
            TokenKind::Symbol('(') => {
                let e = self.parse_expr(formal)?;
                self.expect_symbol(')')?;
                Ok(e)
            }
            TokenKind::Ident(name) if name == "pi" => Ok(Expr::Pi),
            TokenKind::Ident(name) => {
                if let Some(func) = Func::from_name(name) {
                    self.expect_symbol('(')?;
                    let e = self.parse_expr(formal)?;
                    self.expect_symbol(')')?;
                    Ok(Expr::Func(func, Box::new(e)))
                } else if formal.contains(name) {
                    Ok(Expr::Param(name.clone()))
                } else {
                    Err(self.error(&tok, format!("unknown parameter '{name}'")))
                }
            }
            _ => {
                Err(self.error(&tok, format!("expected expression, found {}", tok.kind.describe())))
            }
        }
    }

    fn parse_argument(&mut self) -> Result<(Argument, Token)> {
        let (name, tok) = self.expect_ident()?;
        if self.eat_symbol('[') {
            let idx = self.expect_int()? as usize;
            self.expect_symbol(']')?;
            Ok((Argument::Bit(name, idx), tok))
        } else {
            Ok((Argument::Register(name), tok))
        }
    }

    /// Resolves an argument to flat qubit indices (registers broadcast).
    fn resolve_qarg(&self, arg: &Argument, tok: &Token) -> Result<Vec<usize>> {
        match arg {
            Argument::Register(name) => {
                let reg = self
                    .circuit
                    .qreg(name)
                    .ok_or_else(|| self.error(tok, format!("unknown quantum register '{name}'")))?;
                Ok(reg.bits().collect())
            }
            Argument::Bit(name, idx) => {
                let reg = self
                    .circuit
                    .qreg(name)
                    .ok_or_else(|| self.error(tok, format!("unknown quantum register '{name}'")))?;
                let bit = reg.bit(*idx).ok_or_else(|| {
                    self.error(tok, format!("index {idx} out of range for {}", reg))
                })?;
                Ok(vec![bit])
            }
        }
    }

    fn resolve_carg(&self, arg: &Argument, tok: &Token) -> Result<Vec<usize>> {
        match arg {
            Argument::Register(name) => {
                let reg = self.circuit.creg(name).ok_or_else(|| {
                    self.error(tok, format!("unknown classical register '{name}'"))
                })?;
                Ok(reg.bits().collect())
            }
            Argument::Bit(name, idx) => {
                let reg = self.circuit.creg(name).ok_or_else(|| {
                    self.error(tok, format!("unknown classical register '{name}'"))
                })?;
                let bit = reg.bit(*idx).ok_or_else(|| {
                    self.error(tok, format!("index {idx} out of range for {}", reg))
                })?;
                Ok(vec![bit])
            }
        }
    }

    fn parse_measure(&mut self, condition: Option<Condition>) -> Result<()> {
        let (qarg, qtok) = self.parse_argument()?;
        let tok = self.advance();
        if tok.kind != TokenKind::Arrow {
            return Err(self.error(&tok, "expected '->' in measure statement"));
        }
        let (carg, ctok) = self.parse_argument()?;
        self.expect_symbol(';')?;
        let qubits = self.resolve_qarg(&qarg, &qtok)?;
        let clbits = self.resolve_carg(&carg, &ctok)?;
        if qubits.len() != clbits.len() {
            return Err(self.error(
                &qtok,
                format!(
                    "measure broadcast size mismatch: {} qubits vs {} classical bits",
                    qubits.len(),
                    clbits.len()
                ),
            ));
        }
        for (q, c) in qubits.into_iter().zip(clbits) {
            let mut inst = Instruction::measure(q, c);
            inst.condition = condition.clone();
            self.circuit.push(inst).map_err(|e| err_at(&qtok, e.to_string()))?;
        }
        Ok(())
    }

    fn parse_reset(&mut self) -> Result<()> {
        let (arg, tok) = self.parse_argument()?;
        self.expect_symbol(';')?;
        for q in self.resolve_qarg(&arg, &tok)? {
            self.circuit.reset(q).map_err(|e| err_at(&tok, e.to_string()))?;
        }
        Ok(())
    }

    fn parse_barrier(&mut self) -> Result<()> {
        let mut qubits = Vec::new();
        loop {
            let (arg, tok) = self.parse_argument()?;
            qubits.extend(self.resolve_qarg(&arg, &tok)?);
            if !self.eat_symbol(',') {
                break;
            }
        }
        self.expect_symbol(';')?;
        let tok = self.peek().clone();
        self.circuit.push(Instruction::barrier(qubits)).map_err(|e| err_at(&tok, e.to_string()))?;
        Ok(())
    }

    fn parse_if(&mut self) -> Result<()> {
        self.advance(); // if
        self.expect_symbol('(')?;
        let (creg_name, ctok) = self.expect_ident()?;
        let tok = self.advance();
        if tok.kind != TokenKind::EqEq {
            return Err(self.error(&tok, "expected '==' in if condition"));
        }
        let value = self.expect_int()?;
        self.expect_symbol(')')?;
        let reg = self.circuit.creg(&creg_name).ok_or_else(|| {
            self.error(&ctok, format!("unknown classical register '{creg_name}'"))
        })?;
        let condition = Condition { clbits: reg.bits().collect(), value };
        // The conditioned operation.
        let tok = self.peek().clone();
        match &tok.kind {
            TokenKind::Ident(name) if name == "measure" => {
                self.advance();
                self.parse_measure(Some(condition))
            }
            TokenKind::Ident(name) if name == "reset" => {
                Err(self.error(&tok, "conditioned reset is not supported"))
            }
            TokenKind::Ident(_) => self.parse_gate_call(Some(condition)),
            _ => Err(self.error(&tok, "expected a quantum operation after if(...)")),
        }
    }

    fn parse_gate_call(&mut self, condition: Option<Condition>) -> Result<()> {
        let (name, name_tok) = self.expect_ident()?;
        let params = if self.eat_symbol('(') {
            let exprs = self.parse_expr_list(&[])?;
            exprs.iter().map(|e| e.eval(&HashMap::new())).collect::<Vec<f64>>()
        } else {
            Vec::new()
        };
        let mut args = Vec::new();
        loop {
            let (arg, tok) = self.parse_argument()?;
            args.push((arg, tok));
            if !self.eat_symbol(',') {
                break;
            }
        }
        self.expect_symbol(';')?;

        // Resolve broadcast: each argument is a list of flat indices.
        let resolved: Vec<Vec<usize>> =
            args.iter().map(|(arg, tok)| self.resolve_qarg(arg, tok)).collect::<Result<_>>()?;
        let broadcast = resolved.iter().map(|v| v.len()).max().unwrap_or(1);
        for v in &resolved {
            if v.len() != 1 && v.len() != broadcast {
                return Err(
                    self.error(&name_tok, format!("broadcast size mismatch in call of '{name}'"))
                );
            }
        }
        for k in 0..broadcast {
            let qubits: Vec<usize> =
                resolved.iter().map(|v| if v.len() == 1 { v[0] } else { v[k] }).collect();
            self.apply_gate(&name, &params, &qubits, &name_tok, condition.clone())?;
        }
        Ok(())
    }

    /// Applies a gate by name: user definitions take precedence, then the
    /// builtin library (requires `qelib1.inc` except for `U`/`CX`).
    fn apply_gate(
        &mut self,
        name: &str,
        params: &[f64],
        qubits: &[usize],
        tok: &Token,
        condition: Option<Condition>,
    ) -> Result<()> {
        if self.opaque.iter().any(|o| o == name) {
            return Err(self.error(tok, format!("cannot apply opaque gate '{name}'")));
        }
        if let Some(def) = self.defs.get(name).cloned() {
            if def.params.len() != params.len() {
                return Err(self.error(
                    tok,
                    format!(
                        "gate '{name}' expects {} parameter(s), found {}",
                        def.params.len(),
                        params.len()
                    ),
                ));
            }
            if def.qargs.len() != qubits.len() {
                return Err(self.error(
                    tok,
                    format!(
                        "gate '{name}' expects {} qubit(s), found {}",
                        def.qargs.len(),
                        qubits.len()
                    ),
                ));
            }
            let env: HashMap<String, f64> =
                def.params.iter().cloned().zip(params.iter().copied()).collect();
            let qmap: HashMap<&str, usize> =
                def.qargs.iter().map(|s| s.as_str()).zip(qubits.iter().copied()).collect();
            for op in &def.body {
                match op {
                    BodyOp::Barrier => {}
                    BodyOp::Call { name: inner, params: exprs, qargs, line, col } => {
                        let inner_params: Vec<f64> = exprs.iter().map(|e| e.eval(&env)).collect();
                        let inner_qubits: Vec<usize> =
                            qargs.iter().map(|q| qmap[q.as_str()]).collect();
                        let inner_tok =
                            Token { kind: TokenKind::Ident(inner.clone()), line: *line, col: *col };
                        self.apply_gate(
                            inner,
                            &inner_params,
                            &inner_qubits,
                            &inner_tok,
                            condition.clone(),
                        )?;
                    }
                }
            }
            return Ok(());
        }
        // Builtins. U and CX are always available; the rest require the
        // standard header.
        let is_core = name == "U" || name == "CX";
        if !is_core && !self.qelib_included {
            return Err(self.error(
                tok,
                format!("unknown gate '{name}' (did you forget to include \"qelib1.inc\"?)"),
            ));
        }
        let gate = Gate::from_name(name, params).ok_or_else(|| {
            self.error(tok, format!("unknown gate '{name}' or wrong parameter count"))
        })?;
        if gate.num_qubits() != qubits.len() {
            return Err(self.error(
                tok,
                format!(
                    "gate '{name}' expects {} qubit(s), found {}",
                    gate.num_qubits(),
                    qubits.len()
                ),
            ));
        }
        let mut inst = Instruction::gate(gate, qubits.to_vec());
        inst.condition = condition;
        self.circuit.push(inst).map_err(|e| err_at(tok, e.to_string()))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::fig1_circuit;

    const HEADER: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";

    fn parse_ok(body: &str) -> QuantumCircuit {
        parse(&format!("{HEADER}{body}")).expect("valid program")
    }

    fn parse_err(body: &str) -> TerraError {
        parse(&format!("{HEADER}{body}")).expect_err("invalid program")
    }

    #[test]
    fn parses_fig1_listing_exactly() {
        // The paper's Fig. 1a, verbatim.
        let circ = parse(
            r#"OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[2];
cx q[2],q[3];
cx q[0],q[1];
h q[1];
cx q[1],q[2];
t q[0];
cx q[2],q[0];
cx q[0],q[1];
"#,
        )
        .unwrap();
        assert_eq!(circ.instructions(), fig1_circuit().instructions());
    }

    #[test]
    fn parses_registers_and_measure_broadcast() {
        let circ = parse_ok("qreg q[3]; creg c[3]; h q[0]; measure q -> c;");
        assert_eq!(circ.num_qubits(), 3);
        assert_eq!(circ.num_clbits(), 3);
        assert_eq!(circ.count_ops()["measure"], 3);
    }

    #[test]
    fn broadcast_gate_over_register() {
        let circ = parse_ok("qreg q[4]; h q;");
        assert_eq!(circ.count_ops()["h"], 4);
        let circ = parse_ok("qreg q[3]; qreg r[3]; cx q,r;");
        assert_eq!(circ.count_ops()["cx"], 3);
        assert_eq!(circ.instructions()[1].qubits, vec![1, 4]);
    }

    #[test]
    fn broadcast_single_against_register() {
        let circ = parse_ok("qreg q[1]; qreg r[3]; cx q[0],r;");
        assert_eq!(circ.count_ops()["cx"], 3);
    }

    #[test]
    fn broadcast_mismatch_is_error() {
        let e = parse_err("qreg q[2]; qreg r[3]; cx q,r;");
        assert!(e.to_string().contains("broadcast"));
    }

    #[test]
    fn parameterized_gates_with_expressions() {
        let circ = parse_ok("qreg q[1]; rx(pi/2) q[0]; u(0.1, -pi, 2*pi) q[0];");
        match circ.instructions()[0].as_gate() {
            Some(Gate::Rx(t)) => assert!((t - std::f64::consts::FRAC_PI_2).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
        match circ.instructions()[1].as_gate() {
            Some(Gate::U(t, p, l)) => {
                assert!((t - 0.1).abs() < 1e-12);
                assert!((p + std::f64::consts::PI).abs() < 1e-12);
                assert!((l - 2.0 * std::f64::consts::PI).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn core_gates_work_without_include() {
        let circ = parse("OPENQASM 2.0; qreg q[2]; U(0,0,0) q[0]; CX q[0],q[1];").unwrap();
        assert_eq!(circ.num_gates(), 2);
        let err = parse("OPENQASM 2.0; qreg q[1]; h q[0];").unwrap_err();
        assert!(err.to_string().contains("qelib1.inc"));
    }

    #[test]
    fn user_defined_gates_expand() {
        let circ = parse_ok(
            "qreg q[2];\n\
             gate bell a, b { h a; cx a, b; }\n\
             bell q[0], q[1];",
        );
        let names: Vec<&str> = circ.instructions().iter().map(|i| i.op.name()).collect();
        assert_eq!(names, vec!["h", "cx"]);
    }

    #[test]
    fn user_defined_parameterized_gate() {
        let circ = parse_ok(
            "qreg q[1];\n\
             gate rot(t) a { rx(t/2) a; rx(t/2) a; }\n\
             rot(pi) q[0];",
        );
        assert_eq!(circ.count_ops()["rx"], 2);
        match circ.instructions()[0].as_gate() {
            Some(Gate::Rx(t)) => assert!((t - std::f64::consts::FRAC_PI_2).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nested_gate_definitions() {
        let circ = parse_ok(
            "qreg q[2];\n\
             gate mycz a, b { h b; cx a, b; h b; }\n\
             gate pair a, b { mycz a, b; mycz b, a; }\n\
             pair q[0], q[1];",
        );
        assert_eq!(circ.count_ops()["h"], 4);
        assert_eq!(circ.count_ops()["cx"], 2);
    }

    #[test]
    fn conditionals() {
        let circ = parse_ok("qreg q[1]; creg c[2]; if (c==2) x q[0];");
        let cond = circ.instructions()[0].condition.as_ref().unwrap();
        assert_eq!(cond.value, 2);
        assert_eq!(cond.clbits, vec![0, 1]);
        let e = parse_err("qreg q[1]; if (nope==1) x q[0];");
        assert!(e.to_string().contains("unknown classical register"));
    }

    #[test]
    fn reset_and_barrier() {
        let circ = parse_ok("qreg q[2]; reset q[0]; reset q; barrier q[0], q[1];");
        assert_eq!(circ.count_ops()["reset"], 3);
        assert_eq!(circ.count_ops()["barrier"], 1);
    }

    #[test]
    fn opaque_declares_but_cannot_apply() {
        let e = parse_err("qreg q[1]; opaque magic a; magic q[0];");
        assert!(e.to_string().contains("opaque"));
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse("OPENQASM 2.0;\nqreg q[1];\nbogus q[0];").unwrap_err();
        match err {
            TerraError::QasmParse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_missing_header_and_bad_version() {
        assert!(parse("qreg q[1];").is_err());
        assert!(parse("OPENQASM 3.0; qreg q[1];").is_err());
    }

    #[test]
    fn rejects_unknown_register_and_index() {
        let e = parse_err("qreg q[2]; h r[0];");
        assert!(e.to_string().contains("unknown quantum register"));
        let e = parse_err("qreg q[2]; h q[5];");
        assert!(e.to_string().contains("out of range"));
    }

    #[test]
    fn rejects_duplicate_gate_definition() {
        let e = parse_err("gate g a { h a; } gate g a { x a; } qreg q[1];");
        assert!(e.to_string().contains("already defined"));
    }

    #[test]
    fn rejects_wrong_arity_call() {
        let e = parse_err("qreg q[2]; h q[0], q[1];");
        assert!(e.to_string().contains("broadcast") || e.to_string().contains("expects"));
        let e = parse_err("qreg q[1]; cx q[0];");
        assert!(e.to_string().contains("expects"));
    }
}
