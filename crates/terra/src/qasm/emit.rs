//! OpenQASM 2.0 emitter.

use crate::circuit::QuantumCircuit;
use crate::instruction::Operation;
use std::fmt::Write as _;

/// Renders a parameter, using `pi` fractions where the value matches one
/// exactly (keeps emitted QASM readable and round-trip friendly).
fn render_param(v: f64) -> String {
    use std::f64::consts::PI;
    const FRACTIONS: &[(f64, &str)] = &[
        (PI, "pi"),
        (PI / 2.0, "pi/2"),
        (PI / 4.0, "pi/4"),
        (PI / 8.0, "pi/8"),
        (2.0 * PI, "2*pi"),
    ];
    for &(val, text) in FRACTIONS {
        if (v - val).abs() < 1e-12 {
            return text.to_owned();
        }
        if (v + val).abs() < 1e-12 {
            return format!("-{text}");
        }
    }
    // Round-trip-exact default formatting.
    format!("{v}")
}

/// Locates the register/offset rendering of a flat bit index.
fn render_bit(regs: &[crate::register::Register], flat: usize, fallback: &str) -> String {
    for reg in regs {
        if reg.contains(flat) {
            return format!("{}[{}]", reg.name(), flat - reg.start());
        }
    }
    format!("{fallback}[{flat}]")
}

/// Serializes a circuit to OpenQASM 2.0 source.
///
/// The output always begins with the standard two-line header and declares
/// every register of the circuit. Conditioned instructions are emitted as
/// `if (creg==value) ...;`.
///
/// # Examples
///
/// ```
/// use qukit_terra::circuit::QuantumCircuit;
/// use qukit_terra::qasm::{emit, parse};
///
/// # fn main() -> Result<(), qukit_terra::error::TerraError> {
/// let mut circ = QuantumCircuit::new(2);
/// circ.h(0)?;
/// circ.cx(0, 1)?;
/// let qasm = emit(&circ);
/// let reparsed = parse(&qasm)?;
/// assert_eq!(reparsed.instructions(), circ.instructions());
/// # Ok(())
/// # }
/// ```
pub fn emit(circuit: &QuantumCircuit) -> String {
    let mut out = String::from("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    for reg in circuit.qregs() {
        let _ = writeln!(out, "qreg {}[{}];", reg.name(), reg.len());
    }
    for reg in circuit.cregs() {
        let _ = writeln!(out, "creg {}[{}];", reg.name(), reg.len());
    }
    for inst in circuit.instructions() {
        if let Some(cond) = &inst.condition {
            // Find the register covering the condition bits.
            let name = circuit
                .cregs()
                .iter()
                .find(|r| cond.clbits.first().is_some_and(|&b| r.contains(b)))
                .map(|r| r.name().to_owned())
                .unwrap_or_else(|| "c".to_owned());
            let _ = write!(out, "if ({name}=={}) ", cond.value);
        }
        match &inst.op {
            Operation::Gate(g) => {
                let params = g.params();
                if params.is_empty() {
                    let _ = write!(out, "{}", g.name());
                } else {
                    let rendered: Vec<String> = params.iter().map(|&p| render_param(p)).collect();
                    let _ = write!(out, "{}({})", g.name(), rendered.join(","));
                }
                let qubits: Vec<String> =
                    inst.qubits.iter().map(|&q| render_bit(circuit.qregs(), q, "q")).collect();
                let _ = writeln!(out, " {};", qubits.join(","));
            }
            Operation::Measure => {
                let _ = writeln!(
                    out,
                    "measure {} -> {};",
                    render_bit(circuit.qregs(), inst.qubits[0], "q"),
                    render_bit(circuit.cregs(), inst.clbits[0], "c"),
                );
            }
            Operation::Reset => {
                let _ =
                    writeln!(out, "reset {};", render_bit(circuit.qregs(), inst.qubits[0], "q"));
            }
            Operation::Barrier => {
                let qubits: Vec<String> =
                    inst.qubits.iter().map(|&q| render_bit(circuit.qregs(), q, "q")).collect();
                let _ = writeln!(out, "barrier {};", qubits.join(","));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::fig1_circuit;
    use crate::gate::Gate;
    use crate::qasm::parse;

    #[test]
    fn fig1_emits_the_paper_listing() {
        let qasm = emit(&fig1_circuit());
        let expected = "OPENQASM 2.0;\n\
                        include \"qelib1.inc\";\n\
                        qreg q[4];\n\
                        h q[2];\n\
                        cx q[2],q[3];\n\
                        cx q[0],q[1];\n\
                        h q[1];\n\
                        cx q[1],q[2];\n\
                        t q[0];\n\
                        cx q[2],q[0];\n\
                        cx q[0],q[1];\n";
        assert_eq!(qasm, expected);
    }

    #[test]
    fn round_trip_preserves_instructions() {
        let mut circ = QuantumCircuit::with_size(3, 3);
        circ.h(0).unwrap();
        circ.rx(std::f64::consts::FRAC_PI_2, 1).unwrap();
        circ.u(0.25, -0.5, 1.75, 2).unwrap();
        circ.ccx(0, 1, 2).unwrap();
        circ.barrier_all();
        circ.measure(0, 0).unwrap();
        circ.reset(1).unwrap();
        let reparsed = parse(&emit(&circ)).unwrap();
        assert_eq!(reparsed.instructions().len(), circ.instructions().len());
        for (a, b) in reparsed.instructions().iter().zip(circ.instructions()) {
            assert_eq!(a.op.name(), b.op.name());
            assert_eq!(a.qubits, b.qubits);
            if let (Some(ga), Some(gb)) = (a.as_gate(), b.as_gate()) {
                for (pa, pb) in ga.params().iter().zip(gb.params()) {
                    assert!((pa - pb).abs() < 1e-12, "param drift {pa} vs {pb}");
                }
            }
        }
    }

    #[test]
    fn round_trip_with_condition() {
        let mut circ = QuantumCircuit::with_size(1, 2);
        circ.append_conditional(Gate::X, &[0], "c", 3).unwrap();
        let qasm = emit(&circ);
        assert!(qasm.contains("if (c==3) x q[0];"));
        let reparsed = parse(&qasm).unwrap();
        assert_eq!(reparsed.instructions()[0].condition, circ.instructions()[0].condition);
    }

    #[test]
    fn multi_register_bits_render_with_offsets() {
        let mut circ = QuantumCircuit::empty();
        circ.add_qreg("a", 2).unwrap();
        circ.add_qreg("b", 2).unwrap();
        circ.cx(1, 2).unwrap(); // a[1] -> b[0]
        let qasm = emit(&circ);
        assert!(qasm.contains("cx a[1],b[0];"));
    }

    #[test]
    fn pi_fractions_are_pretty() {
        assert_eq!(render_param(std::f64::consts::PI), "pi");
        assert_eq!(render_param(-std::f64::consts::FRAC_PI_4), "-pi/4");
        assert_eq!(render_param(0.5), "0.5");
    }
}
