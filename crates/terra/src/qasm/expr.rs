//! Parameter-expression AST for OpenQASM 2.0.
//!
//! Gate parameters in OpenQASM are real-valued expressions over literals,
//! `pi`, the enclosing gate definition's formal parameters, arithmetic
//! operators and the unary functions `sin/cos/tan/exp/ln/sqrt`.

use std::collections::HashMap;
use std::f64::consts::PI;

/// A parsed parameter expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal number.
    Num(f64),
    /// The constant `pi`.
    Pi,
    /// Reference to a formal parameter of the enclosing gate definition.
    Param(String),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Binary operation.
    BinOp(BinOp, Box<Expr>, Box<Expr>),
    /// Builtin unary function application.
    Func(Func, Box<Expr>),
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Exponentiation (`^`).
    Pow,
}

/// Builtin unary functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Func {
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Tangent.
    Tan,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Ln,
    /// Square root.
    Sqrt,
}

impl Func {
    /// Resolves a function name.
    pub fn from_name(name: &str) -> Option<Func> {
        Some(match name {
            "sin" => Func::Sin,
            "cos" => Func::Cos,
            "tan" => Func::Tan,
            "exp" => Func::Exp,
            "ln" => Func::Ln,
            "sqrt" => Func::Sqrt,
            _ => return None,
        })
    }
}

impl Expr {
    /// Evaluates the expression with formal parameters bound by `env`.
    ///
    /// Unbound parameters evaluate to `NaN`; the parser guarantees
    /// well-formed programs never reference unbound names.
    pub fn eval(&self, env: &HashMap<String, f64>) -> f64 {
        match self {
            Expr::Num(v) => *v,
            Expr::Pi => PI,
            Expr::Param(name) => env.get(name).copied().unwrap_or(f64::NAN),
            Expr::Neg(e) => -e.eval(env),
            Expr::BinOp(op, a, b) => {
                let (x, y) = (a.eval(env), b.eval(env));
                match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x / y,
                    BinOp::Pow => x.powf(y),
                }
            }
            Expr::Func(f, e) => {
                let x = e.eval(env);
                match f {
                    Func::Sin => x.sin(),
                    Func::Cos => x.cos(),
                    Func::Tan => x.tan(),
                    Func::Exp => x.exp(),
                    Func::Ln => x.ln(),
                    Func::Sqrt => x.sqrt(),
                }
            }
        }
    }

    /// Returns the free parameter names referenced by the expression.
    pub fn free_params(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_params(&mut out);
        out
    }

    fn collect_params<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Param(name) if !out.contains(&name.as_str()) => {
                out.push(name);
            }
            Expr::Neg(e) | Expr::Func(_, e) => e.collect_params(out),
            Expr::BinOp(_, a, b) => {
                a.collect_params(out);
                b.collect_params(out);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&str, f64)]) -> HashMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn literals_and_pi() {
        assert_eq!(Expr::Num(2.5).eval(&env(&[])), 2.5);
        assert_eq!(Expr::Pi.eval(&env(&[])), PI);
    }

    #[test]
    fn arithmetic() {
        // pi/2 + 1
        let e = Expr::BinOp(
            BinOp::Add,
            Box::new(Expr::BinOp(BinOp::Div, Box::new(Expr::Pi), Box::new(Expr::Num(2.0)))),
            Box::new(Expr::Num(1.0)),
        );
        assert!((e.eval(&env(&[])) - (PI / 2.0 + 1.0)).abs() < 1e-15);
        let p = Expr::BinOp(BinOp::Pow, Box::new(Expr::Num(2.0)), Box::new(Expr::Num(10.0)));
        assert_eq!(p.eval(&env(&[])), 1024.0);
    }

    #[test]
    fn params_and_negation() {
        let e = Expr::Neg(Box::new(Expr::Param("theta".into())));
        assert_eq!(e.eval(&env(&[("theta", 0.5)])), -0.5);
        assert!(e.eval(&env(&[])).is_nan());
        assert_eq!(e.free_params(), vec!["theta"]);
    }

    #[test]
    fn functions() {
        let e = Expr::Func(Func::Cos, Box::new(Expr::Num(0.0)));
        assert_eq!(e.eval(&env(&[])), 1.0);
        let s = Expr::Func(Func::Sqrt, Box::new(Expr::Num(9.0)));
        assert_eq!(s.eval(&env(&[])), 3.0);
        assert_eq!(Func::from_name("sin"), Some(Func::Sin));
        assert_eq!(Func::from_name("bogus"), None);
    }

    #[test]
    fn free_params_deduplicates() {
        let e = Expr::BinOp(
            BinOp::Mul,
            Box::new(Expr::Param("a".into())),
            Box::new(Expr::BinOp(
                BinOp::Add,
                Box::new(Expr::Param("a".into())),
                Box::new(Expr::Param("b".into())),
            )),
        );
        assert_eq!(e.free_params(), vec!["a", "b"]);
    }
}
