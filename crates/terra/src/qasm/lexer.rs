//! Tokenizer for OpenQASM 2.0 source.

use crate::error::TerraError;

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// The kinds of OpenQASM 2.0 tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (`qreg`, `h`, `myGate`, …).
    Ident(String),
    /// Real literal (`0.5`, `1e-3`).
    Real(f64),
    /// Non-negative integer literal.
    Int(u64),
    /// Quoted string (`"qelib1.inc"`).
    Str(String),
    /// `OPENQASM` keyword (case sensitive in the spec).
    OpenQasm,
    /// Punctuation / operators.
    Symbol(char),
    /// Two-character `==`.
    EqEq,
    /// `->` arrow.
    Arrow,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier '{s}'"),
            TokenKind::Real(v) => format!("real {v}"),
            TokenKind::Int(v) => format!("integer {v}"),
            TokenKind::Str(s) => format!("string \"{s}\""),
            TokenKind::OpenQasm => "'OPENQASM'".to_owned(),
            TokenKind::Symbol(c) => format!("'{c}'"),
            TokenKind::EqEq => "'=='".to_owned(),
            TokenKind::Arrow => "'->'".to_owned(),
            TokenKind::Eof => "end of input".to_owned(),
        }
    }
}

/// Tokenizes OpenQASM 2.0 source text.
///
/// # Errors
///
/// Returns [`TerraError::QasmParse`] on malformed numbers, unterminated
/// strings or illegal characters.
pub fn tokenize(src: &str) -> Result<Vec<Token>, TerraError> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;
    let err = |line: usize, col: usize, msg: String| TerraError::QasmParse { line, col, msg };

    while i < bytes.len() {
        let c = bytes[i];
        // Whitespace.
        if c == '\n' {
            line += 1;
            col = 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            col += 1;
            continue;
        }
        // Comments: // to end of line.
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == '/' {
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        let start_col = col;
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let mut s = String::new();
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                s.push(bytes[i]);
                i += 1;
                col += 1;
            }
            let kind = if s == "OPENQASM" { TokenKind::OpenQasm } else { TokenKind::Ident(s) };
            tokens.push(Token { kind, line, col: start_col });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() || (c == '.' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit())
        {
            let mut s = String::new();
            let mut is_real = false;
            while i < bytes.len() {
                let d = bytes[i];
                if d.is_ascii_digit() {
                    s.push(d);
                } else if d == '.' && !is_real {
                    is_real = true;
                    s.push(d);
                } else if (d == 'e' || d == 'E') && i + 1 < bytes.len() {
                    is_real = true;
                    s.push(d);
                    if bytes[i + 1] == '+' || bytes[i + 1] == '-' {
                        i += 1;
                        col += 1;
                        s.push(bytes[i]);
                    }
                } else {
                    break;
                }
                i += 1;
                col += 1;
            }
            let kind = if is_real {
                TokenKind::Real(
                    s.parse::<f64>()
                        .map_err(|_| err(line, start_col, format!("invalid real literal '{s}'")))?,
                )
            } else {
                TokenKind::Int(
                    s.parse::<u64>().map_err(|_| {
                        err(line, start_col, format!("invalid integer literal '{s}'"))
                    })?,
                )
            };
            tokens.push(Token { kind, line, col: start_col });
            continue;
        }
        // Strings.
        if c == '"' {
            i += 1;
            col += 1;
            let mut s = String::new();
            let mut terminated = false;
            while i < bytes.len() {
                if bytes[i] == '"' {
                    terminated = true;
                    i += 1;
                    col += 1;
                    break;
                }
                if bytes[i] == '\n' {
                    break;
                }
                s.push(bytes[i]);
                i += 1;
                col += 1;
            }
            if !terminated {
                return Err(err(line, start_col, "unterminated string".to_owned()));
            }
            tokens.push(Token { kind: TokenKind::Str(s), line, col: start_col });
            continue;
        }
        // Multi-char operators.
        if c == '=' && i + 1 < bytes.len() && bytes[i + 1] == '=' {
            tokens.push(Token { kind: TokenKind::EqEq, line, col: start_col });
            i += 2;
            col += 2;
            continue;
        }
        if c == '-' && i + 1 < bytes.len() && bytes[i + 1] == '>' {
            tokens.push(Token { kind: TokenKind::Arrow, line, col: start_col });
            i += 2;
            col += 2;
            continue;
        }
        // Single-char symbols.
        if "(){}[];,+-*/^".contains(c) {
            tokens.push(Token { kind: TokenKind::Symbol(c), line, col: start_col });
            i += 1;
            col += 1;
            continue;
        }
        return Err(err(line, start_col, format!("unexpected character '{c}'")));
    }
    tokens.push(Token { kind: TokenKind::Eof, line, col });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_header() {
        let k = kinds("OPENQASM 2.0;\ninclude \"qelib1.inc\";");
        assert_eq!(
            k,
            vec![
                TokenKind::OpenQasm,
                TokenKind::Real(2.0),
                TokenKind::Symbol(';'),
                TokenKind::Ident("include".into()),
                TokenKind::Str("qelib1.inc".into()),
                TokenKind::Symbol(';'),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn tokenizes_gate_application() {
        let k = kinds("cx q[2],q[3];");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("cx".into()),
                TokenKind::Ident("q".into()),
                TokenKind::Symbol('['),
                TokenKind::Int(2),
                TokenKind::Symbol(']'),
                TokenKind::Symbol(','),
                TokenKind::Ident("q".into()),
                TokenKind::Symbol('['),
                TokenKind::Int(3),
                TokenKind::Symbol(']'),
                TokenKind::Symbol(';'),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn tokenizes_measure_arrow_and_condition() {
        let k = kinds("measure q -> c; if (c==3) x q[0];");
        assert!(k.contains(&TokenKind::Arrow));
        assert!(k.contains(&TokenKind::EqEq));
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let toks = tokenize("// header\nh q[0];").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Ident("h".into()));
        assert_eq!(toks[0].line, 2);
        assert_eq!(toks[0].col, 1);
    }

    #[test]
    fn numbers_with_exponents() {
        assert_eq!(kinds("1e-3")[0], TokenKind::Real(0.001));
        assert_eq!(kinds("2.5E2")[0], TokenKind::Real(250.0));
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds(".5")[0], TokenKind::Real(0.5));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("@").is_err());
    }

    #[test]
    fn describe_is_readable() {
        assert_eq!(TokenKind::Ident("h".into()).describe(), "identifier 'h'");
        assert_eq!(TokenKind::Eof.describe(), "end of input");
    }
}
