//! Coupling maps of quantum devices.
//!
//! A [`CouplingMap`] is the directed graph of allowed CNOT applications the
//! paper describes in Section II-B: an edge `Qi → Qj` means a CNOT with
//! control `Qi` and target `Qj` is physically executable. The presets
//! reproduce the IBM QX architectures the paper references — in particular
//! QX4, whose map is the paper's Fig. 2.
//!
//! # Examples
//!
//! ```
//! use qukit_terra::coupling::CouplingMap;
//!
//! let qx4 = CouplingMap::ibm_qx4();
//! assert!(qx4.has_edge(2, 0));       // Q2 → Q0 allowed
//! assert!(!qx4.has_edge(0, 2));      // reverse needs H-conjugation
//! assert!(qx4.connected(0, 2));      // but they are neighbours
//! assert_eq!(qx4.distance(0, 4), 2); // via Q2
//! ```

use crate::error::{Result, TerraError};
use std::collections::BTreeSet;
use std::fmt;

/// A directed coupling graph over physical qubits.
///
/// Vertices are physical qubit indices `0..num_qubits`; a directed edge
/// `(c, t)` states that `CNOT c→t` is natively executable (the paper's
/// "CNOT-constraints").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CouplingMap {
    num_qubits: usize,
    edges: BTreeSet<(usize, usize)>,
    name: String,
}

impl CouplingMap {
    /// Creates a coupling map from a list of directed edges.
    ///
    /// # Errors
    ///
    /// Returns an error if an edge references a qubit `>= num_qubits` or is
    /// a self-loop.
    pub fn new(num_qubits: usize, edges: &[(usize, usize)]) -> Result<Self> {
        let mut set = BTreeSet::new();
        for &(c, t) in edges {
            if c >= num_qubits || t >= num_qubits {
                return Err(TerraError::CouplingMap {
                    msg: format!("edge ({c},{t}) out of range for {num_qubits} qubits"),
                });
            }
            if c == t {
                return Err(TerraError::CouplingMap { msg: format!("self-loop on qubit {c}") });
            }
            set.insert((c, t));
        }
        Ok(Self { num_qubits, edges: set, name: "custom".to_owned() })
    }

    fn preset(num_qubits: usize, edges: &[(usize, usize)], name: &str) -> Self {
        let mut map = Self::new(num_qubits, edges).expect("preset maps are valid");
        map.name = name.to_owned();
        map
    }

    /// The 5-qubit IBM QX2 map ("bowtie", launched March 2017).
    pub fn ibm_qx2() -> Self {
        Self::preset(5, &[(0, 1), (0, 2), (1, 2), (3, 2), (3, 4), (4, 2)], "ibmqx2")
    }

    /// The 5-qubit IBM QX4 map — the paper's Fig. 2.
    ///
    /// Arrows (control → target): Q1→Q0, Q2→Q0, Q2→Q1, Q3→Q2, Q3→Q4, Q2→Q4.
    pub fn ibm_qx4() -> Self {
        Self::preset(5, &[(1, 0), (2, 0), (2, 1), (3, 2), (3, 4), (2, 4)], "ibmqx4")
    }

    /// The 16-qubit IBM QX3 map (June 2017), a 2x8 ladder.
    pub fn ibm_qx3() -> Self {
        Self::preset(
            16,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 14),
                (4, 3),
                (4, 5),
                (6, 7),
                (6, 11),
                (7, 10),
                (8, 7),
                (9, 8),
                (9, 10),
                (11, 10),
                (12, 5),
                (12, 11),
                (12, 13),
                (13, 4),
                (13, 14),
                (15, 0),
                (15, 2),
                (15, 14),
            ],
            "ibmqx3",
        )
    }

    /// The 16-qubit IBM QX5 map (September 2017), the revised ladder.
    pub fn ibm_qx5() -> Self {
        Self::preset(
            16,
            &[
                (1, 0),
                (1, 2),
                (2, 3),
                (3, 4),
                (3, 14),
                (5, 4),
                (6, 5),
                (6, 7),
                (6, 11),
                (7, 10),
                (8, 7),
                (9, 8),
                (9, 10),
                (11, 10),
                (12, 5),
                (12, 11),
                (12, 13),
                (13, 4),
                (13, 14),
                (15, 0),
                (15, 2),
                (15, 14),
            ],
            "ibmqx5",
        )
    }

    /// A bidirectional line (1D nearest-neighbour) topology.
    pub fn line(num_qubits: usize) -> Self {
        let mut edges = Vec::new();
        for i in 1..num_qubits {
            edges.push((i - 1, i));
            edges.push((i, i - 1));
        }
        Self::preset(num_qubits, &edges, "line")
    }

    /// A bidirectional ring topology.
    pub fn ring(num_qubits: usize) -> Self {
        let mut edges = Vec::new();
        for i in 0..num_qubits {
            let j = (i + 1) % num_qubits;
            if i != j {
                edges.push((i, j));
                edges.push((j, i));
            }
        }
        Self::preset(num_qubits, &edges, "ring")
    }

    /// A bidirectional `rows x cols` grid topology.
    pub fn grid(rows: usize, cols: usize) -> Self {
        let mut edges = Vec::new();
        let idx = |r: usize, c: usize| r * cols + c;
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((idx(r, c), idx(r, c + 1)));
                    edges.push((idx(r, c + 1), idx(r, c)));
                }
                if r + 1 < rows {
                    edges.push((idx(r, c), idx(r + 1, c)));
                    edges.push((idx(r + 1, c), idx(r, c)));
                }
            }
        }
        Self::preset(rows * cols, &edges, "grid")
    }

    /// The 27-qubit IBM heavy-hex lattice (Falcon family): hexagonal cells
    /// with degree-2 "flag" qubits on the edges and degree-3 junctions, the
    /// topology of the Falcon/Hummingbird/Eagle processors. All couplings
    /// are bidirectional (cross-resonance devices calibrate both
    /// directions).
    pub fn heavy_hex() -> Self {
        let undirected = [
            (0, 1),
            (1, 2),
            (1, 4),
            (2, 3),
            (3, 5),
            (4, 7),
            (5, 8),
            (6, 7),
            (7, 10),
            (8, 9),
            (8, 11),
            (10, 12),
            (11, 14),
            (12, 13),
            (12, 15),
            (13, 14),
            (14, 16),
            (15, 18),
            (16, 19),
            (17, 18),
            (18, 21),
            (19, 20),
            (19, 22),
            (21, 23),
            (22, 25),
            (23, 24),
            (24, 25),
            (25, 26),
        ];
        let mut edges = Vec::new();
        for (a, b) in undirected {
            edges.push((a, b));
            edges.push((b, a));
        }
        Self::preset(27, &edges, "heavy_hex")
    }

    /// A fully-connected topology (every ordered pair is an edge) — the
    /// "no constraints" baseline.
    pub fn full(num_qubits: usize) -> Self {
        let mut edges = Vec::new();
        for i in 0..num_qubits {
            for j in 0..num_qubits {
                if i != j {
                    edges.push((i, j));
                }
            }
        }
        Self::preset(num_qubits, &edges, "full")
    }

    /// The device name of a preset (`"ibmqx4"`, `"line"`, …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The directed edge list in sorted order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges.iter().copied()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` when `CNOT control→target` is natively allowed.
    pub fn has_edge(&self, control: usize, target: usize) -> bool {
        self.edges.contains(&(control, target))
    }

    /// Returns `true` when the two qubits are adjacent in either direction
    /// (a CNOT can be realized natively or with H-conjugation).
    pub fn connected(&self, a: usize, b: usize) -> bool {
        self.has_edge(a, b) || self.has_edge(b, a)
    }

    /// Undirected neighbours of a qubit.
    pub fn neighbors(&self, q: usize) -> Vec<usize> {
        let mut out = BTreeSet::new();
        for &(c, t) in &self.edges {
            if c == q {
                out.insert(t);
            }
            if t == q {
                out.insert(c);
            }
        }
        out.into_iter().collect()
    }

    /// All-pairs undirected shortest-path distance matrix (BFS per vertex).
    /// Unreachable pairs get `usize::MAX`.
    pub fn distance_matrix(&self) -> Vec<Vec<usize>> {
        let n = self.num_qubits;
        let mut dist = vec![vec![usize::MAX; n]; n];
        let adj: Vec<Vec<usize>> = (0..n).map(|q| self.neighbors(q)).collect();
        #[allow(clippy::needless_range_loop)] // start indexes dist AND seeds the BFS queue
        for start in 0..n {
            dist[start][start] = 0;
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(u) = queue.pop_front() {
                for &v in &adj[u] {
                    if dist[start][v] == usize::MAX {
                        dist[start][v] = dist[start][u] + 1;
                        queue.push_back(v);
                    }
                }
            }
        }
        dist
    }

    /// Undirected shortest-path distance between two qubits
    /// (`usize::MAX` when unreachable).
    pub fn distance(&self, a: usize, b: usize) -> usize {
        if a == b {
            return 0;
        }
        let adj: Vec<Vec<usize>> = (0..self.num_qubits).map(|q| self.neighbors(q)).collect();
        let mut dist = vec![usize::MAX; self.num_qubits];
        dist[a] = 0;
        let mut queue = std::collections::VecDeque::from([a]);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    if v == b {
                        return dist[v];
                    }
                    queue.push_back(v);
                }
            }
        }
        dist[b]
    }

    /// One undirected shortest path from `a` to `b` (inclusive of both
    /// endpoints), or `None` when unreachable.
    pub fn shortest_path(&self, a: usize, b: usize) -> Option<Vec<usize>> {
        if a == b {
            return Some(vec![a]);
        }
        let adj: Vec<Vec<usize>> = (0..self.num_qubits).map(|q| self.neighbors(q)).collect();
        let mut prev = vec![usize::MAX; self.num_qubits];
        let mut seen = vec![false; self.num_qubits];
        seen[a] = true;
        let mut queue = std::collections::VecDeque::from([a]);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    prev[v] = u;
                    if v == b {
                        let mut path = vec![b];
                        let mut cur = b;
                        while prev[cur] != usize::MAX {
                            cur = prev[cur];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// Returns `true` when every qubit can reach every other (undirected).
    pub fn is_connected(&self) -> bool {
        if self.num_qubits == 0 {
            return true;
        }
        let d = self.distance_matrix();
        d[0].iter().all(|&x| x != usize::MAX)
    }
}

impl fmt::Display for CouplingMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} qubits): ", self.name, self.num_qubits)?;
        let rendered: Vec<String> = self.edges.iter().map(|(c, t)| format!("Q{c}->Q{t}")).collect();
        write!(f, "{}", rendered.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qx4_matches_paper_fig2() {
        let qx4 = CouplingMap::ibm_qx4();
        assert_eq!(qx4.num_qubits(), 5);
        assert_eq!(qx4.num_edges(), 6);
        // Fig. 2 arrows.
        for (c, t) in [(1, 0), (2, 0), (2, 1), (3, 2), (3, 4), (2, 4)] {
            assert!(qx4.has_edge(c, t), "missing Q{c}->Q{t}");
            assert!(!qx4.has_edge(t, c), "unexpected reverse Q{t}->Q{c}");
        }
        // The paper's Example: q2 control, q3 target is *not* allowed...
        assert!(!qx4.has_edge(2, 3));
        // ...only the opposite is.
        assert!(qx4.has_edge(3, 2));
    }

    #[test]
    fn qx_presets_are_connected() {
        for map in [
            CouplingMap::ibm_qx2(),
            CouplingMap::ibm_qx3(),
            CouplingMap::ibm_qx4(),
            CouplingMap::ibm_qx5(),
            CouplingMap::heavy_hex(),
        ] {
            assert!(map.is_connected(), "{} disconnected", map.name());
        }
        assert_eq!(CouplingMap::ibm_qx5().num_qubits(), 16);
        assert_eq!(CouplingMap::ibm_qx3().num_qubits(), 16);
    }

    #[test]
    fn validation_rejects_bad_edges() {
        assert!(CouplingMap::new(2, &[(0, 5)]).is_err());
        assert!(CouplingMap::new(2, &[(1, 1)]).is_err());
        assert!(CouplingMap::new(2, &[(0, 1)]).is_ok());
    }

    #[test]
    fn neighbors_are_undirected() {
        let qx4 = CouplingMap::ibm_qx4();
        assert_eq!(qx4.neighbors(2), vec![0, 1, 3, 4]);
        assert_eq!(qx4.neighbors(0), vec![1, 2]);
    }

    #[test]
    fn distances_on_qx4() {
        let qx4 = CouplingMap::ibm_qx4();
        assert_eq!(qx4.distance(0, 0), 0);
        assert_eq!(qx4.distance(0, 1), 1);
        assert_eq!(qx4.distance(0, 3), 2);
        assert_eq!(qx4.distance(0, 4), 2);
        let d = qx4.distance_matrix();
        assert_eq!(d[0][3], 2);
        assert_eq!(d[3][0], 2, "distance matrix symmetric (undirected)");
    }

    #[test]
    fn shortest_path_endpoints_and_adjacency() {
        let qx4 = CouplingMap::ibm_qx4();
        let path = qx4.shortest_path(0, 3).unwrap();
        assert_eq!(path.first(), Some(&0));
        assert_eq!(path.last(), Some(&3));
        assert_eq!(path.len(), 3);
        for w in path.windows(2) {
            assert!(qx4.connected(w[0], w[1]));
        }
        assert_eq!(qx4.shortest_path(2, 2), Some(vec![2]));
    }

    #[test]
    fn disconnected_map_reports_unreachable() {
        let map = CouplingMap::new(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!map.is_connected());
        assert_eq!(map.distance(0, 3), usize::MAX);
        assert!(map.shortest_path(0, 3).is_none());
    }

    #[test]
    fn generated_topologies() {
        let line = CouplingMap::line(4);
        assert_eq!(line.distance(0, 3), 3);
        assert!(line.has_edge(0, 1) && line.has_edge(1, 0));

        let ring = CouplingMap::ring(6);
        assert_eq!(ring.distance(0, 3), 3);
        assert_eq!(ring.distance(0, 5), 1);

        let grid = CouplingMap::grid(3, 3);
        assert_eq!(grid.num_qubits(), 9);
        assert_eq!(grid.distance(0, 8), 4);

        let full = CouplingMap::full(4);
        assert_eq!(full.num_edges(), 12);
        assert_eq!(full.distance(0, 3), 1);
    }

    #[test]
    fn heavy_hex_matches_falcon_shape() {
        let hh = CouplingMap::heavy_hex();
        assert_eq!(hh.num_qubits(), 27);
        assert_eq!(hh.num_edges(), 56, "28 undirected couplings, both directions");
        // Heavy-hex degree profile: only degrees 1..=3 appear, and the
        // junction qubits have degree exactly 3.
        let degrees: Vec<usize> = (0..27).map(|q| hh.neighbors(q).len()).collect();
        assert!(degrees.iter().all(|&d| (1..=3).contains(&d)), "degrees {degrees:?}");
        assert_eq!(degrees.iter().filter(|&&d| d == 3).count(), 8);
        // Both CNOT directions are native everywhere.
        for (c, t) in hh.edges().collect::<Vec<_>>() {
            assert!(hh.has_edge(t, c), "missing reverse of Q{c}->Q{t}");
        }
    }

    #[test]
    fn display_names_edges() {
        let text = CouplingMap::ibm_qx4().to_string();
        assert!(text.starts_with("ibmqx4 (5 qubits)"));
        assert!(text.contains("Q2->Q0"));
    }
}
