//! Pulse-level descriptions (OpenPulse).
//!
//! The paper's Terra description includes "tools for specifying and
//! manipulating quantum circuits through the OpenQASM language, or at the
//! pulse levels through OpenPulse [19]". This module provides that lower
//! layer: sampled microwave [`Waveform`]s, per-qubit [`Channel`]s, timed
//! [`Schedule`]s, and a lowering pass from gate-level circuits to pulse
//! schedules driven by a [`Calibration`] table — mirroring how transmon
//! control actually works ("control and measurements are conducted through
//! microwave pulses", paper Section II-B).

use crate::circuit::QuantumCircuit;
use crate::complex::Complex;
use crate::error::{Result, TerraError};
use crate::instruction::Operation;
use std::collections::HashMap;
use std::fmt;

/// A sampled complex pulse envelope (one sample per `dt` time step).
///
/// # Examples
///
/// ```
/// use qukit_terra::pulse::Waveform;
///
/// let pulse = Waveform::gaussian(160, 0.2, 40.0);
/// assert_eq!(pulse.duration(), 160);
/// assert!(pulse.peak_amplitude() <= 0.2 + 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    name: String,
    samples: Vec<Complex>,
}

impl Waveform {
    /// Creates a waveform from raw samples.
    ///
    /// # Panics
    ///
    /// Panics if any sample magnitude exceeds 1 (hardware drive limit).
    pub fn new(name: impl Into<String>, samples: Vec<Complex>) -> Self {
        assert!(
            samples.iter().all(|s| s.norm() <= 1.0 + 1e-9),
            "pulse samples must have magnitude <= 1"
        );
        Self { name: name.into(), samples }
    }

    /// A Gaussian envelope of the given duration, peak amplitude and width.
    pub fn gaussian(duration: usize, amplitude: f64, sigma: f64) -> Self {
        let center = (duration as f64 - 1.0) / 2.0;
        let samples = (0..duration)
            .map(|t| {
                let x = (t as f64 - center) / sigma;
                Complex::from_real(amplitude * (-0.5 * x * x).exp())
            })
            .collect();
        Self::new(format!("gaussian_{duration}_{sigma}"), samples)
    }

    /// A DRAG-corrected Gaussian (adds the derivative on the imaginary
    /// quadrature to suppress leakage to the second excited state).
    pub fn gaussian_drag(duration: usize, amplitude: f64, sigma: f64, beta: f64) -> Self {
        let center = (duration as f64 - 1.0) / 2.0;
        let samples = (0..duration)
            .map(|t| {
                let x = (t as f64 - center) / sigma;
                let envelope = amplitude * (-0.5 * x * x).exp();
                let derivative = -x / sigma * envelope;
                Complex::new(envelope, beta * derivative)
            })
            .collect();
        Self::new(format!("drag_{duration}_{sigma}"), samples)
    }

    /// A constant (square) pulse.
    pub fn constant(duration: usize, amplitude: f64) -> Self {
        Self::new(format!("const_{duration}"), vec![Complex::from_real(amplitude); duration])
    }

    /// The waveform name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of samples (duration in `dt` units).
    pub fn duration(&self) -> usize {
        self.samples.len()
    }

    /// The raw samples.
    pub fn samples(&self) -> &[Complex] {
        &self.samples
    }

    /// Largest sample magnitude.
    pub fn peak_amplitude(&self) -> f64 {
        self.samples.iter().map(|s| s.norm()).fold(0.0, f64::max)
    }

    /// Integrated area `|Σ samples|` — proportional to the rotation angle
    /// the pulse drives.
    pub fn area(&self) -> f64 {
        self.samples.iter().copied().sum::<Complex>().norm()
    }
}

/// A hardware channel pulses are played on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Channel {
    /// Single-qubit microwave drive line.
    Drive(usize),
    /// Cross-resonance control line for a directed qubit pair (indexed by
    /// the coupling-map edge id).
    Control(usize),
    /// Readout resonator stimulus.
    Measure(usize),
    /// Readout capture.
    Acquire(usize),
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Channel::Drive(q) => write!(f, "d{q}"),
            Channel::Control(e) => write!(f, "u{e}"),
            Channel::Measure(q) => write!(f, "m{q}"),
            Channel::Acquire(q) => write!(f, "a{q}"),
        }
    }
}

/// One pulse-level instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum PulseInstruction {
    /// Play a waveform on a channel.
    Play {
        /// The envelope.
        waveform: Waveform,
        /// The target channel.
        channel: Channel,
    },
    /// A virtual-Z frame rotation (zero duration, error-free — why
    /// transpilers prefer Rz).
    ShiftPhase {
        /// Phase in radians.
        phase: f64,
        /// The target channel.
        channel: Channel,
    },
    /// Idle for a duration.
    Delay {
        /// Duration in `dt`.
        duration: usize,
        /// The target channel.
        channel: Channel,
    },
    /// Capture readout data.
    Acquire {
        /// Duration in `dt`.
        duration: usize,
        /// The qubit being read.
        qubit: usize,
        /// Classical memory slot.
        memory_slot: usize,
    },
}

impl PulseInstruction {
    /// Duration of the instruction in `dt` units.
    pub fn duration(&self) -> usize {
        match self {
            PulseInstruction::Play { waveform, .. } => waveform.duration(),
            PulseInstruction::ShiftPhase { .. } => 0,
            PulseInstruction::Delay { duration, .. } => *duration,
            PulseInstruction::Acquire { duration, .. } => *duration,
        }
    }

    /// The channel the instruction occupies.
    pub fn channel(&self) -> Channel {
        match self {
            PulseInstruction::Play { channel, .. }
            | PulseInstruction::ShiftPhase { channel, .. }
            | PulseInstruction::Delay { channel, .. } => *channel,
            PulseInstruction::Acquire { qubit, .. } => Channel::Acquire(*qubit),
        }
    }
}

/// A timed pulse program: instructions with absolute start times.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schedule {
    name: String,
    instructions: Vec<(usize, PulseInstruction)>,
}

impl Schedule {
    /// An empty schedule.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), instructions: Vec::new() }
    }

    /// The schedule name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The timed instructions, sorted by start time.
    pub fn instructions(&self) -> &[(usize, PulseInstruction)] {
        &self.instructions
    }

    /// Total duration (end of the last instruction).
    pub fn duration(&self) -> usize {
        self.instructions.iter().map(|(start, inst)| start + inst.duration()).max().unwrap_or(0)
    }

    /// The first free time on a channel.
    pub fn channel_end(&self, channel: Channel) -> usize {
        self.instructions
            .iter()
            .filter(|(_, inst)| inst.channel() == channel)
            .map(|(start, inst)| start + inst.duration())
            .max()
            .unwrap_or(0)
    }

    /// Inserts an instruction at an absolute time.
    ///
    /// # Errors
    ///
    /// Returns an error if it would overlap an existing instruction on the
    /// same channel (zero-duration frame changes never conflict).
    pub fn insert(&mut self, start: usize, instruction: PulseInstruction) -> Result<()> {
        let dur = instruction.duration();
        if dur > 0 {
            let channel = instruction.channel();
            for (other_start, other) in &self.instructions {
                if other.channel() != channel || other.duration() == 0 {
                    continue;
                }
                let other_end = other_start + other.duration();
                if start < other_end && other_start < &(start + dur) {
                    return Err(TerraError::Transpile {
                        msg: format!("pulse overlap on channel {} at time {start}", channel),
                    });
                }
            }
        }
        let pos = self.instructions.partition_point(|(other_start, _)| *other_start <= start);
        self.instructions.insert(pos, (start, instruction));
        Ok(())
    }

    /// Appends an instruction at the earliest time its channel is free.
    ///
    /// # Errors
    ///
    /// Propagates overlap errors (cannot occur for appends).
    pub fn append(&mut self, instruction: PulseInstruction) -> Result<usize> {
        let start = self.channel_end(instruction.channel());
        self.insert(start, instruction)?;
        Ok(start)
    }

    /// Channels used by the schedule, sorted.
    pub fn channels(&self) -> Vec<Channel> {
        let mut channels: Vec<Channel> =
            self.instructions.iter().map(|(_, inst)| inst.channel()).collect();
        channels.sort();
        channels.dedup();
        channels
    }
}

/// A calibration table: pulse parameters for the device's native gates.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Duration of a single-qubit pulse in `dt`.
    pub single_qubit_duration: usize,
    /// Gaussian width for single-qubit pulses.
    pub single_qubit_sigma: f64,
    /// DRAG coefficient.
    pub drag_beta: f64,
    /// Duration of the cross-resonance tone for a CX.
    pub cx_duration: usize,
    /// Readout stimulus/acquire duration.
    pub measure_duration: usize,
    /// Control-channel index per directed qubit pair.
    pub control_channels: HashMap<(usize, usize), usize>,
}

impl Calibration {
    /// A generic calibration: 160 dt single-qubit pulses, 560 dt CR tones,
    /// control channel per (control, target) pair allocated on demand from
    /// the coupling edges provided.
    pub fn with_edges(edges: &[(usize, usize)]) -> Self {
        let control_channels = edges.iter().enumerate().map(|(i, &e)| (e, i)).collect();
        Self {
            single_qubit_duration: 160,
            single_qubit_sigma: 40.0,
            drag_beta: 0.2,
            cx_duration: 560,
            measure_duration: 1200,
            control_channels,
        }
    }
}

/// Lowers a gate-level circuit to a pulse [`Schedule`] using `calibration`.
///
/// The lowering follows the standard transmon scheme:
///
/// * `Rz`/`Phase`/`Z`-family gates become zero-duration [`PulseInstruction::ShiftPhase`]
///   frame changes (virtual Z);
/// * other single-qubit gates become DRAG pulses on the qubit's drive
///   channel, with the rotation angle encoded in the amplitude;
/// * `CX` becomes phase frames plus a cross-resonance tone on the pair's
///   control channel with an echo pulse on the control qubit;
/// * `Measure` becomes a stimulus on the measure channel plus an
///   [`PulseInstruction::Acquire`];
/// * barriers synchronize the involved channels.
///
/// # Errors
///
/// Returns an error for gates with more than two qubits (lower to the
/// elementary basis first) or CX pairs absent from the calibration.
pub fn lower_to_pulses(circuit: &QuantumCircuit, calibration: &Calibration) -> Result<Schedule> {
    let mut schedule = Schedule::new(format!("{}_pulse", circuit.name()));
    // Per-channel clocks are implied by Schedule::append; gate alignment
    // across channels uses explicit insert at the max of the channels.
    for inst in circuit.instructions() {
        match &inst.op {
            Operation::Gate(g) => {
                match (g.num_qubits(), g.is_diagonal()) {
                    (1, true) => {
                        // Virtual Z: total phase = sum of the gate's angle
                        // parameters (π for Z, π/2 for S, …).
                        let phase = diagonal_phase(g);
                        schedule.append(PulseInstruction::ShiftPhase {
                            phase,
                            channel: Channel::Drive(inst.qubits[0]),
                        })?;
                    }
                    (1, false) => {
                        let amplitude = rotation_amplitude(g);
                        let pulse = Waveform::gaussian_drag(
                            calibration.single_qubit_duration,
                            amplitude,
                            calibration.single_qubit_sigma,
                            calibration.drag_beta,
                        );
                        schedule.append(PulseInstruction::Play {
                            waveform: pulse,
                            channel: Channel::Drive(inst.qubits[0]),
                        })?;
                    }
                    (2, _) if *g == crate::gate::Gate::CX => {
                        let (c, t) = (inst.qubits[0], inst.qubits[1]);
                        let edge = calibration
                            .control_channels
                            .get(&(c, t))
                            .or_else(|| calibration.control_channels.get(&(t, c)))
                            .copied()
                            .ok_or_else(|| TerraError::Transpile {
                                msg: format!("no control channel calibrated for ({c},{t})"),
                            })?;
                        // Align all three channels.
                        let start = [Channel::Drive(c), Channel::Drive(t), Channel::Control(edge)]
                            .iter()
                            .map(|&ch| schedule.channel_end(ch))
                            .max()
                            .unwrap_or(0);
                        let half = calibration.cx_duration / 2;
                        // CR tone (two halves around a control echo).
                        schedule.insert(
                            start,
                            PulseInstruction::Play {
                                waveform: Waveform::constant(half, 0.3),
                                channel: Channel::Control(edge),
                            },
                        )?;
                        schedule.insert(
                            start,
                            PulseInstruction::Play {
                                waveform: Waveform::gaussian_drag(
                                    calibration.single_qubit_duration,
                                    0.5,
                                    calibration.single_qubit_sigma,
                                    calibration.drag_beta,
                                ),
                                channel: Channel::Drive(c),
                            },
                        )?;
                        schedule.insert(
                            start + half,
                            PulseInstruction::Play {
                                waveform: Waveform::constant(half, 0.3),
                                channel: Channel::Control(edge),
                            },
                        )?;
                        // Keep the target busy until the tone ends.
                        schedule.insert(
                            start + calibration.single_qubit_duration.min(half),
                            PulseInstruction::Delay {
                                duration: calibration.cx_duration
                                    - calibration.single_qubit_duration.min(half),
                                channel: Channel::Drive(t),
                            },
                        )?;
                    }
                    _ => {
                        return Err(TerraError::Transpile {
                            msg: format!(
                                "cannot lower '{}' to pulses; transpile to the \
                                 elementary basis first",
                                g.name()
                            ),
                        })
                    }
                }
            }
            Operation::Measure => {
                let q = inst.qubits[0];
                let start = schedule.channel_end(Channel::Drive(q));
                schedule.insert(
                    start.max(schedule.channel_end(Channel::Measure(q))),
                    PulseInstruction::Play {
                        waveform: Waveform::constant(calibration.measure_duration, 0.1),
                        channel: Channel::Measure(q),
                    },
                )?;
                schedule.insert(
                    start.max(schedule.channel_end(Channel::Acquire(q))),
                    PulseInstruction::Acquire {
                        duration: calibration.measure_duration,
                        qubit: q,
                        memory_slot: inst.clbits[0],
                    },
                )?;
            }
            Operation::Barrier => {
                // Synchronize involved drive channels with delays.
                let sync = inst
                    .qubits
                    .iter()
                    .map(|&q| schedule.channel_end(Channel::Drive(q)))
                    .max()
                    .unwrap_or(0);
                for &q in &inst.qubits {
                    let end = schedule.channel_end(Channel::Drive(q));
                    if end < sync {
                        schedule.insert(
                            end,
                            PulseInstruction::Delay {
                                duration: sync - end,
                                channel: Channel::Drive(q),
                            },
                        )?;
                    }
                }
            }
            Operation::Reset => {
                return Err(TerraError::Transpile {
                    msg: "pulse-level reset is not calibrated".to_owned(),
                })
            }
        }
    }
    Ok(schedule)
}

fn diagonal_phase(g: &crate::gate::Gate) -> f64 {
    use crate::gate::Gate::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};
    match *g {
        Z => PI,
        S => FRAC_PI_2,
        Sdg => -FRAC_PI_2,
        T => FRAC_PI_4,
        Tdg => -FRAC_PI_4,
        Rz(t) | Phase(t) => t,
        I => 0.0,
        _ => 0.0,
    }
}

fn rotation_amplitude(g: &crate::gate::Gate) -> f64 {
    use crate::gate::Gate::*;
    use std::f64::consts::PI;
    // Amplitude proportional to rotation angle, normalized to 0.5 for π.
    let angle = match *g {
        X | Y | H => PI,
        Sx | Sxdg => PI / 2.0,
        Rx(t) | Ry(t) => t.abs(),
        U(t, _, _) => t.abs(),
        _ => PI,
    };
    (0.5 * angle / PI).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_waveform_shape() {
        let w = Waveform::gaussian(100, 0.4, 25.0);
        assert_eq!(w.duration(), 100);
        assert!(w.peak_amplitude() <= 0.4 && w.peak_amplitude() > 0.39);
        // Symmetric envelope.
        assert!(w.samples()[10].approx_eq(w.samples()[89]));
        assert!(w.area() > 0.0);
    }

    #[test]
    fn drag_waveform_has_imaginary_quadrature() {
        let w = Waveform::gaussian_drag(100, 0.4, 25.0, 0.3);
        assert!(w.samples()[20].im.abs() > 0.0, "leading edge has +derivative");
        // The derivative changes sign at the center.
        assert!(w.samples()[20].im * w.samples()[79].im < 0.0);
    }

    #[test]
    #[should_panic(expected = "magnitude <= 1")]
    fn overdriven_waveform_panics() {
        let _ = Waveform::constant(10, 1.5);
    }

    #[test]
    fn schedule_append_and_overlap() {
        let mut sched = Schedule::new("test");
        let d0 = Channel::Drive(0);
        sched
            .append(PulseInstruction::Play { waveform: Waveform::constant(100, 0.1), channel: d0 })
            .unwrap();
        let start = sched
            .append(PulseInstruction::Play { waveform: Waveform::constant(50, 0.1), channel: d0 })
            .unwrap();
        assert_eq!(start, 100, "appends chain on the channel");
        assert_eq!(sched.duration(), 150);
        // Explicit overlapping insert is rejected.
        let overlap = sched.insert(
            120,
            PulseInstruction::Play { waveform: Waveform::constant(10, 0.1), channel: d0 },
        );
        assert!(overlap.is_err());
        // Other channels are independent.
        sched
            .insert(
                0,
                PulseInstruction::Play {
                    waveform: Waveform::constant(30, 0.1),
                    channel: Channel::Drive(1),
                },
            )
            .unwrap();
        assert_eq!(sched.channels().len(), 2);
    }

    #[test]
    fn phase_shifts_are_instantaneous() {
        let mut sched = Schedule::new("vz");
        sched
            .append(PulseInstruction::ShiftPhase { phase: 1.0, channel: Channel::Drive(0) })
            .unwrap();
        assert_eq!(sched.duration(), 0);
        // They never conflict.
        sched
            .insert(0, PulseInstruction::ShiftPhase { phase: 2.0, channel: Channel::Drive(0) })
            .unwrap();
    }

    fn cal() -> Calibration {
        Calibration::with_edges(&[(0, 1), (1, 2)])
    }

    #[test]
    fn lowering_virtual_z_costs_no_time() {
        let mut circ = QuantumCircuit::new(1);
        circ.rz(0.7, 0).unwrap();
        circ.t(0).unwrap();
        let sched = lower_to_pulses(&circ, &cal()).unwrap();
        assert_eq!(sched.duration(), 0, "virtual Z gates are free");
        assert_eq!(sched.instructions().len(), 2);
    }

    #[test]
    fn lowering_drive_pulses_chain_in_time() {
        let mut circ = QuantumCircuit::new(1);
        circ.h(0).unwrap();
        circ.x(0).unwrap();
        let sched = lower_to_pulses(&circ, &cal()).unwrap();
        assert_eq!(sched.duration(), 320, "two 160 dt pulses back to back");
    }

    #[test]
    fn lowering_cx_uses_control_channel() {
        let mut circ = QuantumCircuit::new(2);
        circ.cx(0, 1).unwrap();
        let sched = lower_to_pulses(&circ, &cal()).unwrap();
        assert!(sched.channels().contains(&Channel::Control(0)));
        assert_eq!(sched.duration(), 560);
    }

    #[test]
    fn lowering_cx_missing_calibration_fails() {
        let mut circ = QuantumCircuit::new(4);
        circ.cx(0, 3).unwrap();
        let err = lower_to_pulses(&circ, &cal()).unwrap_err();
        assert!(err.to_string().contains("control channel"));
    }

    #[test]
    fn lowering_rejects_non_elementary_gates() {
        let mut circ = QuantumCircuit::new(3);
        circ.ccx(0, 1, 2).unwrap();
        let err = lower_to_pulses(&circ, &cal()).unwrap_err();
        assert!(err.to_string().contains("elementary"));
    }

    #[test]
    fn lowering_measurement_produces_acquire() {
        let mut circ = QuantumCircuit::with_size(1, 1);
        circ.x(0).unwrap();
        circ.measure(0, 0).unwrap();
        let sched = lower_to_pulses(&circ, &cal()).unwrap();
        let has_acquire = sched
            .instructions()
            .iter()
            .any(|(_, i)| matches!(i, PulseInstruction::Acquire { memory_slot: 0, .. }));
        assert!(has_acquire);
        assert_eq!(sched.duration(), 160 + 1200);
    }

    #[test]
    fn barriers_synchronize_channels() {
        let mut circ = QuantumCircuit::new(2);
        circ.x(0).unwrap(); // q0 busy until 160
        circ.barrier_all();
        circ.x(1).unwrap(); // must start at 160, not 0
        let sched = lower_to_pulses(&circ, &cal()).unwrap();
        let x1_start = sched
            .instructions()
            .iter()
            .find(|(_, i)| matches!(i, PulseInstruction::Play { channel: Channel::Drive(1), .. }))
            .map(|(s, _)| *s)
            .unwrap();
        assert_eq!(x1_start, 160);
    }

    #[test]
    fn full_bell_schedule_shape() {
        let mut circ = QuantumCircuit::with_size(2, 2);
        circ.h(0).unwrap();
        circ.cx(0, 1).unwrap();
        circ.measure(0, 0).unwrap();
        circ.measure(1, 1).unwrap();
        let sched = lower_to_pulses(&circ, &cal()).unwrap();
        // H (160) then CX (560) then measure (1200).
        assert_eq!(sched.duration(), 160 + 560 + 1200);
        assert!(sched.channels().contains(&Channel::Measure(0)));
        assert!(sched.channels().contains(&Channel::Acquire(1)));
    }
}
