//! Dense complex matrices and vectors.
//!
//! These types back the gate-matrix definitions in [`crate::gate`], the
//! reference unitary/statevector simulators in `qukit-aer`, and the
//! equivalence checks used by the transpiler tests. They are deliberately
//! simple (row-major `Vec<Complex>` storage) — the performance-oriented
//! simulation paths in `qukit-aer` and `qukit-dd` do not go through general
//! matrix-matrix products.
//!
//! # Examples
//!
//! ```
//! use qukit_terra::matrix::Matrix;
//!
//! let h = Matrix::hadamard();
//! assert!(h.is_unitary());
//! assert!(h.matmul(&h).approx_eq(&Matrix::identity(2)));
//! ```

use crate::complex::{Complex, EPSILON};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major complex matrix.
///
/// Indexing is `(row, col)`. Most matrices in the toolchain are square with
/// power-of-two dimension (gate unitaries), but the type supports arbitrary
/// rectangular shapes for tomography and fitting code.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![Complex::ZERO; rows * cols] }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Creates a matrix from a flat row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from nested row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[Complex]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in matrix literal");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// The 2x2 Hadamard matrix — used pervasively in tests and docs.
    pub fn hadamard() -> Self {
        let h = Complex::FRAC_1_SQRT_2;
        Self::from_vec(2, 2, vec![h, h, h, -h])
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` for a square matrix.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[Complex] {
        &self.data
    }

    /// Mutably borrows the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major data vector.
    #[inline]
    pub fn into_vec(self) -> Vec<Complex> {
        self.data
    }

    /// Element access returning `None` when out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> Option<Complex> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not agree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a.is_approx_zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    out.data[i * rhs.cols + j] += a * rhs.data[k * rhs.cols + j];
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[Complex]) -> Vec<Complex> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![Complex::ZERO; self.rows];
        #[allow(clippy::needless_range_loop)] // i/j index into the flat data buffer
        for i in 0..self.rows {
            let mut acc = Complex::ZERO;
            for j in 0..self.cols {
                acc += self.data[i * self.cols + j] * v[j];
            }
            out[i] = acc;
        }
        out
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    ///
    /// With the toolchain's little-endian qubit convention, the operator on
    /// qubit 1 goes on the *left* of `⊗` and the operator on qubit 0 on the
    /// right.
    pub fn kron(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self.data[i * self.cols + j];
                if a.is_approx_zero() {
                    continue;
                }
                for k in 0..rhs.rows {
                    for l in 0..rhs.cols {
                        out[(i * rhs.rows + k, j * rhs.cols + l)] = a * rhs[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Conjugate transpose (Hermitian adjoint, "dagger").
    pub fn dagger(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Entry-wise complex conjugate.
    pub fn conj(&self) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Multiplies every entry by a scalar.
    pub fn scale(&self, k: Complex) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * k).collect(),
        }
    }

    /// Entry-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "matrix add shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(&a, &b)| a + b).collect(),
        }
    }

    /// Entry-wise difference.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "matrix sub shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(&a, &b)| a - b).collect(),
        }
    }

    /// Trace of a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> Complex {
        assert!(self.is_square(), "trace of a non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Checks unitarity: `U† U ≈ I` within [`EPSILON`].
    pub fn is_unitary(&self) -> bool {
        self.is_unitary_eps(EPSILON * self.rows as f64)
    }

    /// Checks unitarity with a caller-supplied tolerance.
    pub fn is_unitary_eps(&self, eps: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let prod = self.dagger().matmul(self);
        prod.approx_eq_eps(&Matrix::identity(self.rows), eps)
    }

    /// Checks Hermiticity: `M ≈ M†`.
    pub fn is_hermitian(&self) -> bool {
        self.is_square() && self.approx_eq(&self.dagger())
    }

    /// Approximate entry-wise equality within [`EPSILON`].
    pub fn approx_eq(&self, other: &Matrix) -> bool {
        self.approx_eq_eps(other, EPSILON)
    }

    /// Approximate entry-wise equality with a caller-supplied tolerance.
    pub fn approx_eq_eps(&self, other: &Matrix, eps: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.data.iter().zip(&other.data).all(|(a, b)| a.approx_eq_eps(*b, eps))
    }

    /// Tests equality up to a global phase: returns `Some(phase)` such that
    /// `self ≈ e^{i·phase} · other`, or `None` if no such phase exists.
    ///
    /// Two unitaries that agree up to global phase implement the same
    /// quantum operation, so this is the right notion of equivalence for
    /// transpiler correctness checks.
    pub fn phase_equal_to(&self, other: &Matrix) -> Option<f64> {
        if self.rows != other.rows || self.cols != other.cols {
            return None;
        }
        // Find the entry of largest modulus in `other` to anchor the phase.
        let (mut best, mut best_idx) = (0.0f64, 0usize);
        for (idx, z) in other.data.iter().enumerate() {
            let n = z.norm_sqr();
            if n > best {
                best = n;
                best_idx = idx;
            }
        }
        if best < EPSILON {
            // `other` is the zero matrix; equal only if self is too.
            return if self.data.iter().all(|z| z.is_approx_zero()) { Some(0.0) } else { None };
        }
        let ratio = self.data[best_idx] / other.data[best_idx];
        if (ratio.norm() - 1.0).abs() > 1e-8 {
            return None;
        }
        let phase = ratio.arg();
        let rotated = other.scale(Complex::cis(phase));
        if self.approx_eq_eps(&rotated, 1e-8 * self.rows as f64) {
            Some(phase)
        } else {
            None
        }
    }

    /// Solves `self * x = b` by Gaussian elimination with partial pivoting.
    ///
    /// Used by tomography (linear inversion) and measurement-error
    /// mitigation. Returns `None` when the matrix is singular to working
    /// precision.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b.len() != rows`.
    pub fn solve(&self, b: &[Complex]) -> Option<Vec<Complex>> {
        assert!(self.is_square(), "solve requires a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivot.
            let mut pivot = col;
            let mut best = a[col * n + col].norm_sqr();
            for row in (col + 1)..n {
                let v = a[row * n + col].norm_sqr();
                if v > best {
                    best = v;
                    pivot = row;
                }
            }
            if best < 1e-24 {
                return None;
            }
            if pivot != col {
                for k in 0..n {
                    a.swap(col * n + k, pivot * n + k);
                }
                x.swap(col, pivot);
            }
            let inv = a[col * n + col].recip();
            for row in (col + 1)..n {
                let factor = a[row * n + col] * inv;
                if factor.is_approx_zero() {
                    continue;
                }
                for k in col..n {
                    let v = a[col * n + k];
                    a[row * n + k] -= factor * v;
                }
                let xc = x[col];
                x[row] -= factor * xc;
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = x[col];
            for k in (col + 1)..n {
                acc -= a[col * n + k] * x[k];
            }
            x[col] = acc / a[col * n + col];
        }
        Some(x)
    }

    /// Counts entries whose modulus exceeds [`EPSILON`] — the "size" of the
    /// explicit representation compared against decision-diagram node counts
    /// in the Fig. 3 reproduction.
    pub fn nonzero_count(&self) -> usize {
        self.data.iter().filter(|z| !z.is_approx_zero()).count()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = Complex;
    #[inline]
    fn index(&self, (row, col): (usize, usize)) -> &Complex {
        &self.data[row * self.cols + col]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut Complex {
        &mut self.data[row * self.cols + col]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                let z = self[(i, j)];
                write!(f, "{:.3}{}{:.3}i", z.re, if z.im >= 0.0 { "+" } else { "-" }, z.im.abs())?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

/// Normalizes a statevector in place and returns its original norm.
///
/// # Examples
///
/// ```
/// use qukit_terra::complex::c64;
/// use qukit_terra::matrix::normalize;
///
/// let mut v = vec![c64(3.0, 0.0), c64(4.0, 0.0)];
/// let n = normalize(&mut v);
/// assert!((n - 5.0).abs() < 1e-12);
/// assert!((v[0].re - 0.6).abs() < 1e-12);
/// ```
pub fn normalize(v: &mut [Complex]) -> f64 {
    let norm = v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
    if norm > 0.0 {
        let inv = 1.0 / norm;
        for z in v.iter_mut() {
            *z = z.scale(inv);
        }
    }
    norm
}

/// Inner product `⟨a|b⟩` of two complex vectors.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn inner_product(a: &[Complex], b: &[Complex]) -> Complex {
    assert_eq!(a.len(), b.len(), "inner product length mismatch");
    a.iter().zip(b).map(|(x, y)| x.conj() * *y).sum()
}

/// Fidelity `|⟨a|b⟩|^2` between two pure states.
pub fn state_fidelity(a: &[Complex], b: &[Complex]) -> f64 {
    inner_product(a, b).norm_sqr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn x_matrix() -> Matrix {
        Matrix::from_vec(2, 2, vec![Complex::ZERO, Complex::ONE, Complex::ONE, Complex::ZERO])
    }

    #[test]
    fn identity_and_zeros() {
        let i3 = Matrix::identity(3);
        assert_eq!(i3[(0, 0)], Complex::ONE);
        assert_eq!(i3[(0, 1)], Complex::ZERO);
        assert_eq!(Matrix::zeros(2, 3).rows(), 2);
        assert_eq!(Matrix::zeros(2, 3).cols(), 3);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_validates_length() {
        let _ = Matrix::from_vec(2, 2, vec![Complex::ZERO; 3]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let h = Matrix::hadamard();
        assert!(h.matmul(&Matrix::identity(2)).approx_eq(&h));
        assert!(Matrix::identity(2).matmul(&h).approx_eq(&h));
    }

    #[test]
    fn hadamard_squares_to_identity() {
        let h = Matrix::hadamard();
        assert!(h.matmul(&h).approx_eq(&Matrix::identity(2)));
    }

    #[test]
    fn matvec_applies_x() {
        let x = x_matrix();
        let v = x.matvec(&[Complex::ONE, Complex::ZERO]);
        assert!(v[0].is_approx_zero());
        assert!(v[1].is_approx_one());
    }

    #[test]
    fn kron_dimensions_and_values() {
        let i2 = Matrix::identity(2);
        let x = x_matrix();
        let big = i2.kron(&x);
        assert_eq!(big.rows(), 4);
        // I ⊗ X = block-diag(X, X)
        assert!(big[(0, 1)].is_approx_one());
        assert!(big[(2, 3)].is_approx_one());
        assert!(big[(0, 2)].is_approx_zero());
    }

    #[test]
    fn dagger_and_transpose() {
        let m = Matrix::from_vec(
            2,
            2,
            vec![c64(1.0, 1.0), c64(2.0, 0.0), c64(0.0, 3.0), c64(4.0, -4.0)],
        );
        let d = m.dagger();
        assert_eq!(d[(0, 0)], c64(1.0, -1.0));
        assert_eq!(d[(1, 0)], c64(2.0, 0.0));
        assert_eq!(m.transpose()[(0, 1)], c64(0.0, 3.0));
        assert_eq!(m.conj()[(1, 0)], c64(0.0, -3.0));
    }

    #[test]
    fn unitarity_checks() {
        assert!(Matrix::hadamard().is_unitary());
        assert!(Matrix::identity(4).is_unitary());
        let not_unitary = Matrix::from_vec(2, 2, vec![Complex::ONE; 4]);
        assert!(!not_unitary.is_unitary());
        assert!(!Matrix::zeros(2, 3).is_unitary());
    }

    #[test]
    fn hermitian_check() {
        let x = x_matrix();
        assert!(x.is_hermitian());
        let m = Matrix::from_vec(2, 2, vec![Complex::ZERO, Complex::I, Complex::I, Complex::ZERO]);
        assert!(!m.is_hermitian());
    }

    #[test]
    fn trace_sums_diagonal() {
        let m = Matrix::from_vec(
            2,
            2,
            vec![c64(1.0, 0.0), c64(9.0, 0.0), c64(9.0, 0.0), c64(2.0, 5.0)],
        );
        assert!(m.trace().approx_eq(c64(3.0, 5.0)));
    }

    #[test]
    fn phase_equivalence_detects_global_phase() {
        let h = Matrix::hadamard();
        let rotated = h.scale(Complex::cis(0.7));
        let phase = rotated.phase_equal_to(&h).expect("should be phase equal");
        assert!((phase - 0.7).abs() < 1e-9);
        assert!(h.phase_equal_to(&x_matrix()).is_none());
    }

    #[test]
    fn solve_recovers_solution() {
        // A = [[2, 1], [1, 3]], x = [1, -1] => b = [1, -2]
        let a = Matrix::from_vec(
            2,
            2,
            vec![c64(2.0, 0.0), c64(1.0, 0.0), c64(1.0, 0.0), c64(3.0, 0.0)],
        );
        let b = [c64(1.0, 0.0), c64(-2.0, 0.0)];
        let x = a.solve(&b).expect("solvable");
        assert!(x[0].approx_eq(c64(1.0, 0.0)));
        assert!(x[1].approx_eq(c64(-1.0, 0.0)));
    }

    #[test]
    fn solve_detects_singular() {
        let a =
            Matrix::from_vec(2, 2, vec![Complex::ONE, Complex::ONE, Complex::ONE, Complex::ONE]);
        assert!(a.solve(&[Complex::ONE, Complex::ZERO]).is_none());
    }

    #[test]
    fn normalize_and_fidelity() {
        let mut v = vec![c64(1.0, 0.0), c64(1.0, 0.0)];
        normalize(&mut v);
        assert!((v.iter().map(|z| z.norm_sqr()).sum::<f64>() - 1.0).abs() < 1e-12);
        let w = vec![c64(1.0, 0.0), Complex::ZERO];
        assert!((state_fidelity(&v, &w) - 0.5).abs() < 1e-12);
        assert!((state_fidelity(&w, &w) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nonzero_count_counts() {
        let mut m = Matrix::zeros(2, 2);
        m[(0, 1)] = Complex::I;
        assert_eq!(m.nonzero_count(), 1);
        assert_eq!(Matrix::identity(8).nonzero_count(), 8);
    }
}
