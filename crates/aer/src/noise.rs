//! Noise modelling.
//!
//! The paper's Aer description: *"It will also allow the exploration of the
//! behavior of quantum hardware under controlled conditions e.g. by
//! injecting specific noise processes into the circuits and observing their
//! effect on the results."* This module provides exactly that: CPTP error
//! channels in Kraus form, a per-gate [`NoiseModel`], and classical readout
//! errors.
//!
//! Statevector-based simulation applies channels stochastically (quantum
//! trajectories): Kraus operator `K_i` is selected with probability
//! `‖K_i|ψ⟩‖²` and the state renormalized — which reproduces the density
//! operator `Σ_i K_i ρ K_i†` in expectation. The density-matrix simulator
//! in [`crate::density`] applies the same channels exactly.

use qukit_terra::complex::{c64, Complex};
use qukit_terra::matrix::Matrix;
use rand::Rng;
use std::collections::HashMap;

/// A CPTP error channel given by its Kraus operators.
///
/// # Examples
///
/// ```
/// use qukit_aer::noise::QuantumError;
///
/// let depol = QuantumError::depolarizing(0.01, 1);
/// assert!(depol.is_cptp());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantumError {
    kraus: Vec<Matrix>,
    num_qubits: usize,
    /// When every Kraus operator is a scaled unitary, the channel is a
    /// probabilistic mixture of unitaries: `(probability, unitary)` pairs.
    /// Trajectory simulation then samples the branch without touching the
    /// state (probabilities are state-independent).
    mixed_unitary: Option<Vec<(f64, Matrix)>>,
}

impl QuantumError {
    /// Builds a channel from explicit Kraus operators.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty, dimensions are inconsistent, or the
    /// operators do not satisfy the completeness relation
    /// `Σ K†K = I` (within tolerance).
    pub fn from_kraus(kraus: Vec<Matrix>) -> Self {
        assert!(!kraus.is_empty(), "a channel needs at least one Kraus operator");
        let dim = kraus[0].rows();
        assert!(dim.is_power_of_two(), "Kraus dimension must be a power of two");
        let num_qubits = dim.trailing_zeros() as usize;
        for k in &kraus {
            assert_eq!(k.rows(), dim, "inconsistent Kraus dimensions");
            assert_eq!(k.cols(), dim, "Kraus operators must be square");
        }
        let mixed_unitary = detect_mixed_unitary(&kraus);
        let channel = Self { kraus, num_qubits, mixed_unitary };
        assert!(channel.is_cptp(), "Kraus operators do not sum to identity");
        channel
    }

    /// The identity (no-error) channel on `num_qubits`.
    pub fn identity(num_qubits: usize) -> Self {
        Self::from_kraus(vec![Matrix::identity(1 << num_qubits)])
    }

    /// Depolarizing channel: with probability `p` the state is replaced by
    /// the maximally mixed state, implemented by uniform Pauli errors.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1` and `num_qubits ∈ {1, 2}`.
    pub fn depolarizing(p: f64, num_qubits: usize) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        assert!(num_qubits == 1 || num_qubits == 2, "depolarizing supported on 1 or 2 qubits");
        let paulis_1q = [Matrix::identity(2), pauli_x(), pauli_y(), pauli_z()];
        let mut kraus = Vec::new();
        if num_qubits == 1 {
            let p_each = p / 4.0;
            for (i, m) in paulis_1q.iter().enumerate() {
                let weight = if i == 0 { 1.0 - p + p_each } else { p_each };
                kraus.push(m.scale(c64(weight.sqrt(), 0.0)));
            }
        } else {
            let p_each = p / 16.0;
            for (i, a) in paulis_1q.iter().enumerate() {
                for (j, b) in paulis_1q.iter().enumerate() {
                    let weight = if i == 0 && j == 0 { 1.0 - p + p_each } else { p_each };
                    kraus.push(b.kron(a).scale(c64(weight.sqrt(), 0.0)));
                }
            }
        }
        Self::from_kraus(kraus)
    }

    /// Bit-flip channel: X with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn bit_flip(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        Self::from_kraus(vec![
            Matrix::identity(2).scale(c64((1.0 - p).sqrt(), 0.0)),
            pauli_x().scale(c64(p.sqrt(), 0.0)),
        ])
    }

    /// Phase-flip channel: Z with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn phase_flip(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        Self::from_kraus(vec![
            Matrix::identity(2).scale(c64((1.0 - p).sqrt(), 0.0)),
            pauli_z().scale(c64(p.sqrt(), 0.0)),
        ])
    }

    /// Amplitude damping with decay probability `gamma` (energy relaxation
    /// towards `|0⟩`, the T1 process of transmon qubits).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ gamma ≤ 1`.
    pub fn amplitude_damping(gamma: f64) -> Self {
        assert!((0.0..=1.0).contains(&gamma), "gamma must be in [0, 1]");
        let k0 = Matrix::from_vec(
            2,
            2,
            vec![Complex::ONE, Complex::ZERO, Complex::ZERO, c64((1.0 - gamma).sqrt(), 0.0)],
        );
        let k1 = Matrix::from_vec(
            2,
            2,
            vec![Complex::ZERO, c64(gamma.sqrt(), 0.0), Complex::ZERO, Complex::ZERO],
        );
        Self::from_kraus(vec![k0, k1])
    }

    /// Phase damping (pure dephasing, the T2 process) with parameter
    /// `lambda`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ lambda ≤ 1`.
    pub fn phase_damping(lambda: f64) -> Self {
        assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0, 1]");
        let k0 = Matrix::from_vec(
            2,
            2,
            vec![Complex::ONE, Complex::ZERO, Complex::ZERO, c64((1.0 - lambda).sqrt(), 0.0)],
        );
        let k1 = Matrix::from_vec(
            2,
            2,
            vec![Complex::ZERO, Complex::ZERO, Complex::ZERO, c64(lambda.sqrt(), 0.0)],
        );
        Self::from_kraus(vec![k0, k1])
    }

    /// Thermal relaxation over a gate of the given duration: energy decay
    /// towards `|0⟩` with time constant `t1` and coherence decay with `t2`
    /// — the T1/T2 model of the paper's transmon hardware. Requires
    /// `t2 <= 2·t1` (physicality) and models the common `t2 <= t1` regime
    /// exactly as amplitude damping composed with pure dephasing.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < t1`, `0 < t2 <= 2·t1` and `time >= 0`.
    pub fn thermal_relaxation(t1: f64, t2: f64, time: f64) -> Self {
        assert!(t1 > 0.0 && t2 > 0.0, "relaxation times must be positive");
        assert!(t2 <= 2.0 * t1 + 1e-12, "t2 must not exceed 2*t1");
        assert!(time >= 0.0, "gate time must be non-negative");
        let gamma = 1.0 - (-time / t1).exp();
        // e^{-t/T2} = e^{-t/(2 T1)} * sqrt(1 - lambda)
        let lambda = (1.0 - (-2.0 * time / t2 + time / t1).exp()).clamp(0.0, 1.0);
        Self::amplitude_damping(gamma).compose(&Self::phase_damping(lambda))
    }

    /// Sequential composition `other ∘ self` (apply `self` first): the
    /// Kraus set is all pairwise products, with negligible-weight products
    /// dropped.
    ///
    /// # Panics
    ///
    /// Panics if the channels act on different qubit counts.
    pub fn compose(&self, other: &QuantumError) -> QuantumError {
        assert_eq!(self.num_qubits, other.num_qubits, "channel width mismatch");
        let mut kraus = Vec::with_capacity(self.kraus.len() * other.kraus.len());
        for b in &other.kraus {
            for a in &self.kraus {
                let product = b.matmul(a);
                // Keep only operators with non-negligible weight.
                if product.dagger().matmul(&product).trace().re > 1e-14 {
                    kraus.push(product);
                }
            }
        }
        QuantumError::from_kraus(kraus)
    }

    /// The Kraus operators.
    pub fn kraus_operators(&self) -> &[Matrix] {
        &self.kraus
    }

    /// Number of qubits the channel acts on.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Verifies the completeness relation `Σ K†K = I`.
    pub fn is_cptp(&self) -> bool {
        let dim = 1usize << self.num_qubits;
        let mut sum = Matrix::zeros(dim, dim);
        for k in &self.kraus {
            sum = sum.add(&k.dagger().matmul(k));
        }
        sum.approx_eq_eps(&Matrix::identity(dim), 1e-8)
    }

    /// Applies the channel stochastically to a statevector (quantum
    /// trajectory step): selects Kraus operator `i` with probability
    /// `‖K_i|ψ⟩‖²` and renormalizes.
    ///
    /// Mixed-unitary channels (depolarizing, Pauli errors) take a fast
    /// path: branch probabilities are state-independent, so the branch is
    /// sampled directly and one unitary applied. General channels compute
    /// each branch probability as `⟨ψ|K_i†K_i|ψ⟩` via a local reduction —
    /// no copy of the state is made either way.
    ///
    /// # Panics
    ///
    /// Panics if `qubits.len() != self.num_qubits()`.
    pub fn apply_stochastic(
        &self,
        state: &mut crate::statevector::Statevector,
        qubits: &[usize],
        rng: &mut impl Rng,
    ) {
        assert_eq!(qubits.len(), self.num_qubits, "channel arity mismatch");
        if self.kraus.len() == 1 {
            state.apply_matrix(&self.kraus[0], qubits);
            return;
        }
        if let Some(branches) = &self.mixed_unitary {
            let mut r = rng.gen::<f64>();
            let mut chosen = branches.len() - 1;
            for (i, (p, _)) in branches.iter().enumerate() {
                if r < *p {
                    chosen = i;
                    break;
                }
                r -= p;
            }
            state.apply_matrix(&branches[chosen].1, qubits);
            return;
        }
        // General channel: p_i = <psi| K_i† K_i |psi> computed locally.
        let mut r = rng.gen::<f64>();
        let mut chosen = self.kraus.len() - 1;
        for (i, k) in self.kraus.iter().enumerate() {
            let mu = k.dagger().matmul(k);
            let p = state.local_expectation(&mu, qubits);
            if r < p {
                chosen = i;
                break;
            }
            r -= p;
        }
        state.apply_matrix(&self.kraus[chosen], qubits);
        state.renormalize();
    }
}

/// Detects whether every Kraus operator is a scaled unitary; if so returns
/// the `(probability, unitary)` mixture.
fn detect_mixed_unitary(kraus: &[Matrix]) -> Option<Vec<(f64, Matrix)>> {
    let dim = kraus[0].rows();
    let mut branches = Vec::with_capacity(kraus.len());
    for k in kraus {
        let mu = k.dagger().matmul(k);
        let lambda = mu.trace().re / dim as f64;
        if lambda < 0.0 {
            return None;
        }
        let scaled_identity = Matrix::identity(dim).scale(c64(lambda, 0.0));
        if !mu.approx_eq_eps(&scaled_identity, 1e-9) {
            return None;
        }
        if lambda > 1e-15 {
            branches.push((lambda, k.scale(c64(1.0 / lambda.sqrt(), 0.0))));
        }
    }
    Some(branches)
}

/// Classical readout error: the recorded bit differs from the measured one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadoutError {
    /// Probability of recording 1 when the qubit measured 0.
    pub prob_1_given_0: f64,
    /// Probability of recording 0 when the qubit measured 1.
    pub prob_0_given_1: f64,
}

impl ReadoutError {
    /// A symmetric readout error with flip probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn symmetric(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        Self { prob_1_given_0: p, prob_0_given_1: p }
    }

    /// Applies the error to a measured bit.
    pub fn apply(&self, measured: bool, rng: &mut impl Rng) -> bool {
        let flip_prob = if measured { self.prob_0_given_1 } else { self.prob_1_given_0 };
        if rng.gen::<f64>() < flip_prob {
            !measured
        } else {
            measured
        }
    }

    /// The 2x2 column-stochastic assignment matrix
    /// `A[recorded][actual] = P(recorded | actual)`.
    pub fn assignment_matrix(&self) -> [[f64; 2]; 2] {
        [
            [1.0 - self.prob_1_given_0, self.prob_0_given_1],
            [self.prob_1_given_0, 1.0 - self.prob_0_given_1],
        ]
    }
}

/// A device noise model: error channels attached to gate names, optionally
/// restricted to specific qubit tuples, plus per-qubit readout errors.
///
/// # Examples
///
/// ```
/// use qukit_aer::noise::{NoiseModel, QuantumError, ReadoutError};
///
/// let mut noise = NoiseModel::new();
/// noise.add_all_qubit_error("cx", QuantumError::depolarizing(0.02, 2));
/// noise.add_all_qubit_error("u", QuantumError::depolarizing(0.001, 1));
/// noise.set_readout_error(ReadoutError::symmetric(0.03));
/// assert!(!noise.is_ideal());
/// ```
#[derive(Debug, Clone, Default)]
pub struct NoiseModel {
    gate_errors: HashMap<String, QuantumError>,
    local_errors: HashMap<(String, Vec<usize>), QuantumError>,
    readout: Option<ReadoutError>,
}

impl NoiseModel {
    /// An empty (ideal) noise model.
    pub fn new() -> Self {
        Self::default()
    }

    /// A uniform depolarizing model: `p1` on every 1-qubit gate, `p2` on
    /// every CX, symmetric readout error `p_meas` — the standard synthetic
    /// stand-in for an IBM QX device.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn depolarizing(p1: f64, p2: f64, p_meas: f64) -> Self {
        let mut model = Self::new();
        let e1 = QuantumError::depolarizing(p1, 1);
        for name in [
            "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg", "rx", "ry", "rz", "p",
            "u",
        ] {
            model.add_all_qubit_error(name, e1.clone());
        }
        model.add_all_qubit_error("cx", QuantumError::depolarizing(p2, 2));
        if p_meas > 0.0 {
            model.set_readout_error(ReadoutError::symmetric(p_meas));
        }
        model
    }

    /// Attaches `error` to every occurrence of the gate named `name`.
    pub fn add_all_qubit_error(&mut self, name: impl Into<String>, error: QuantumError) {
        self.gate_errors.insert(name.into(), error);
    }

    /// Attaches `error` to the gate named `name` only on the exact qubit
    /// tuple `qubits` (overrides the all-qubit entry).
    pub fn add_local_error(
        &mut self,
        name: impl Into<String>,
        qubits: Vec<usize>,
        error: QuantumError,
    ) {
        self.local_errors.insert((name.into(), qubits), error);
    }

    /// Sets the readout error applied to every measurement.
    pub fn set_readout_error(&mut self, error: ReadoutError) {
        self.readout = Some(error);
    }

    /// The readout error, if any.
    pub fn readout_error(&self) -> Option<ReadoutError> {
        self.readout
    }

    /// Looks up the error channel for a gate application.
    pub fn error_for(&self, name: &str, qubits: &[usize]) -> Option<&QuantumError> {
        self.local_errors
            .get(&(name.to_owned(), qubits.to_vec()))
            .or_else(|| self.gate_errors.get(name))
    }

    /// Returns `true` when the model contains no errors at all.
    pub fn is_ideal(&self) -> bool {
        self.gate_errors.is_empty() && self.local_errors.is_empty() && self.readout.is_none()
    }

    /// Rewrites the model for a relabeled qubit space: every local error's
    /// qubit tuple is passed through `mapping`; entries whose qubits have
    /// no image are dropped. Gate-wide errors and the readout error are
    /// unchanged.
    pub fn remapped(&self, mapping: impl Fn(usize) -> Option<usize>) -> NoiseModel {
        let mut out = NoiseModel {
            gate_errors: self.gate_errors.clone(),
            local_errors: HashMap::new(),
            readout: self.readout,
        };
        for ((name, qubits), error) in &self.local_errors {
            let remapped: Option<Vec<usize>> = qubits.iter().map(|&q| mapping(q)).collect();
            if let Some(remapped) = remapped {
                out.local_errors.insert((name.clone(), remapped), error.clone());
            }
        }
        out
    }
}

fn pauli_x() -> Matrix {
    Matrix::from_vec(2, 2, vec![Complex::ZERO, Complex::ONE, Complex::ONE, Complex::ZERO])
}

fn pauli_y() -> Matrix {
    Matrix::from_vec(2, 2, vec![Complex::ZERO, -Complex::I, Complex::I, Complex::ZERO])
}

fn pauli_z() -> Matrix {
    Matrix::from_vec(2, 2, vec![Complex::ONE, Complex::ZERO, Complex::ZERO, -Complex::ONE])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::Statevector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builtin_channels_are_cptp() {
        for channel in [
            QuantumError::identity(1),
            QuantumError::depolarizing(0.1, 1),
            QuantumError::depolarizing(0.3, 2),
            QuantumError::bit_flip(0.2),
            QuantumError::phase_flip(0.5),
            QuantumError::amplitude_damping(0.15),
            QuantumError::phase_damping(0.25),
        ] {
            assert!(channel.is_cptp(), "{channel:?} not CPTP");
        }
    }

    #[test]
    fn from_kraus_rejects_incomplete_sets() {
        let half = Matrix::identity(2).scale(c64(0.5, 0.0));
        let result = std::panic::catch_unwind(|| QuantumError::from_kraus(vec![half]));
        assert!(result.is_err());
    }

    #[test]
    fn depolarizing_zero_probability_is_identity_channel() {
        let channel = QuantumError::depolarizing(0.0, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let mut sv = Statevector::new(1);
        sv.apply_gate(qukit_terra::gate::Gate::H, &[0]);
        let before = sv.clone();
        channel.apply_stochastic(&mut sv, &[0], &mut rng);
        assert!(sv.fidelity(&before) > 1.0 - 1e-12);
    }

    #[test]
    fn bit_flip_statistics() {
        let channel = QuantumError::bit_flip(0.3);
        let mut rng = StdRng::seed_from_u64(21);
        let mut flips = 0;
        let trials = 2000;
        for _ in 0..trials {
            let mut sv = Statevector::new(1);
            channel.apply_stochastic(&mut sv, &[0], &mut rng);
            if sv.probability_one(0) > 0.5 {
                flips += 1;
            }
        }
        let rate = flips as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.04, "flip rate {rate}");
    }

    #[test]
    fn amplitude_damping_decays_excited_state() {
        let gamma = 0.4;
        let channel = QuantumError::amplitude_damping(gamma);
        let mut rng = StdRng::seed_from_u64(8);
        let trials = 3000;
        let mut stayed = 0;
        for _ in 0..trials {
            let mut sv = Statevector::new(1);
            sv.apply_gate(qukit_terra::gate::Gate::X, &[0]);
            channel.apply_stochastic(&mut sv, &[0], &mut rng);
            if sv.probability_one(0) > 0.5 {
                stayed += 1;
            }
        }
        let survival = stayed as f64 / trials as f64;
        assert!((survival - (1.0 - gamma)).abs() < 0.04, "survival {survival}");
    }

    #[test]
    fn thermal_relaxation_population_decay() {
        // Excited-state population after time t is e^{-t/T1}, exactly, on
        // the density-matrix simulator.
        let (t1, t2, time) = (50.0, 30.0, 10.0);
        let channel = QuantumError::thermal_relaxation(t1, t2, time);
        assert!(channel.is_cptp());
        let mut rho = crate::density::DensityMatrix::new(1);
        rho.apply_unitary(&qukit_terra::gate::Gate::X.matrix(), &[0]);
        rho.apply_kraus(channel.kraus_operators(), &[0]);
        let expected = (-time / t1).exp();
        assert!((rho.probability_one(0) - expected).abs() < 1e-9);
    }

    #[test]
    fn thermal_relaxation_coherence_decay() {
        // Off-diagonal of |+><+| decays as e^{-t/T2}.
        let (t1, t2, time) = (80.0, 40.0, 12.0);
        let channel = QuantumError::thermal_relaxation(t1, t2, time);
        let mut rho = crate::density::DensityMatrix::new(1);
        rho.apply_unitary(&qukit_terra::gate::Gate::H.matrix(), &[0]);
        rho.apply_kraus(channel.kraus_operators(), &[0]);
        let coherence = 2.0 * rho.matrix().get(0, 1).unwrap().norm();
        let expected = (-time / t2).exp();
        assert!((coherence - expected).abs() < 1e-9, "coherence {coherence} vs {expected}");
    }

    #[test]
    fn thermal_relaxation_zero_time_is_identity() {
        let channel = QuantumError::thermal_relaxation(50.0, 70.0, 0.0);
        let mut rho = crate::density::DensityMatrix::new(1);
        rho.apply_unitary(&qukit_terra::gate::Gate::H.matrix(), &[0]);
        let before = rho.clone();
        rho.apply_kraus(channel.kraus_operators(), &[0]);
        assert!(rho.matrix().approx_eq_eps(before.matrix(), 1e-10));
    }

    #[test]
    fn compose_matches_sequential_application() {
        let a = QuantumError::amplitude_damping(0.2);
        let b = QuantumError::phase_flip(0.1);
        let composed = a.compose(&b);
        assert!(composed.is_cptp());
        let mut rho1 = crate::density::DensityMatrix::new(1);
        rho1.apply_unitary(&qukit_terra::gate::Gate::H.matrix(), &[0]);
        let mut rho2 = rho1.clone();
        rho1.apply_kraus(a.kraus_operators(), &[0]);
        rho1.apply_kraus(b.kraus_operators(), &[0]);
        rho2.apply_kraus(composed.kraus_operators(), &[0]);
        assert!(rho1.matrix().approx_eq_eps(rho2.matrix(), 1e-10));
    }

    #[test]
    fn unphysical_relaxation_rejected() {
        let result = std::panic::catch_unwind(|| QuantumError::thermal_relaxation(10.0, 25.0, 1.0));
        assert!(result.is_err(), "t2 > 2*t1 must panic");
    }

    #[test]
    fn readout_error_statistics() {
        let err = ReadoutError::symmetric(0.1);
        let mut rng = StdRng::seed_from_u64(77);
        let trials = 5000;
        let flipped = (0..trials).filter(|_| err.apply(false, &mut rng)).count();
        let rate = flipped as f64 / trials as f64;
        assert!((rate - 0.1).abs() < 0.02, "rate {rate}");
        let a = err.assignment_matrix();
        assert!((a[0][0] - 0.9).abs() < 1e-12);
        assert!((a[1][0] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn asymmetric_readout() {
        let err = ReadoutError { prob_1_given_0: 0.0, prob_0_given_1: 1.0 };
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!err.apply(false, &mut rng));
        assert!(!err.apply(true, &mut rng), "1 always misread as 0");
    }

    #[test]
    fn noise_model_lookup_precedence() {
        let mut model = NoiseModel::new();
        model.add_all_qubit_error("cx", QuantumError::depolarizing(0.1, 2));
        model.add_local_error("cx", vec![0, 1], QuantumError::depolarizing(0.5, 2));
        let global = model.error_for("cx", &[2, 3]).unwrap();
        let local = model.error_for("cx", &[0, 1]).unwrap();
        assert_ne!(global, local, "local error must override");
        assert!(model.error_for("h", &[0]).is_none());
    }

    #[test]
    fn ideal_model_detection() {
        assert!(NoiseModel::new().is_ideal());
        assert!(!NoiseModel::depolarizing(0.001, 0.01, 0.02).is_ideal());
    }

    #[test]
    fn depolarizing_model_covers_u_and_cx() {
        let model = NoiseModel::depolarizing(0.001, 0.01, 0.0);
        assert!(model.error_for("u", &[0]).is_some());
        assert!(model.error_for("cx", &[0, 1]).is_some());
        assert!(model.readout_error().is_none());
    }
}
