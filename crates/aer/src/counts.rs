//! Measurement outcome histograms.
//!
//! [`Counts`] is the result type of shot-based execution — the analogue of
//! the `job.result().get_counts()` dictionary the paper's user walkthrough
//! plots as a histogram.

use std::collections::BTreeMap;
use std::fmt;

/// A histogram of classical measurement outcomes.
///
/// Keys are classical-register values; bit `c` of a key is classical bit
/// `c` (so the rendered bitstring has clbit 0 rightmost, matching Qiskit's
/// convention).
///
/// # Examples
///
/// ```
/// use qukit_aer::counts::Counts;
///
/// let mut counts = Counts::new(2);
/// counts.record(0b00);
/// counts.record(0b11);
/// counts.record(0b11);
/// assert_eq!(counts.get("11"), 2);
/// assert_eq!(counts.total(), 3);
/// assert!((counts.probability(0b11) - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Counts {
    num_clbits: usize,
    histogram: BTreeMap<u64, usize>,
}

impl Counts {
    /// Creates an empty histogram over `num_clbits` classical bits.
    ///
    /// # Panics
    ///
    /// Panics if `num_clbits > 64`.
    pub fn new(num_clbits: usize) -> Self {
        assert!(num_clbits <= 64, "at most 64 classical bits supported");
        Self { num_clbits, histogram: BTreeMap::new() }
    }

    /// Number of classical bits per outcome.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// Records one observation of `outcome`.
    pub fn record(&mut self, outcome: u64) {
        *self.histogram.entry(outcome).or_insert(0) += 1;
    }

    /// Records `n` observations of `outcome`.
    pub fn record_n(&mut self, outcome: u64, n: usize) {
        if n > 0 {
            *self.histogram.entry(outcome).or_insert(0) += n;
        }
    }

    /// Total number of recorded shots.
    pub fn total(&self) -> usize {
        self.histogram.values().sum()
    }

    /// Count for a numeric outcome.
    pub fn get_value(&self, outcome: u64) -> usize {
        self.histogram.get(&outcome).copied().unwrap_or(0)
    }

    /// Count for a bitstring outcome such as `"0110"` (clbit 0 rightmost).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not a valid binary string.
    pub fn get(&self, bits: &str) -> usize {
        let value = u64::from_str_radix(bits, 2).expect("binary outcome string");
        self.get_value(value)
    }

    /// Empirical probability of an outcome (0 when no shots recorded).
    pub fn probability(&self, outcome: u64) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get_value(outcome) as f64 / total as f64
        }
    }

    /// The most frequent outcome, or `None` when empty. Ties break toward
    /// the smaller value.
    pub fn most_frequent(&self) -> Option<u64> {
        self.histogram.iter().max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0))).map(|(&k, _)| k)
    }

    /// Renders an outcome as a bitstring of the histogram's width.
    pub fn to_bitstring(&self, outcome: u64) -> String {
        format!("{:0width$b}", outcome, width = self.num_clbits.max(1))
    }

    /// Iterates over `(outcome, count)` pairs in ascending outcome order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, usize)> + '_ {
        self.histogram.iter().map(|(&k, &v)| (k, v))
    }

    /// Number of distinct outcomes observed.
    pub fn len(&self) -> usize {
        self.histogram.len()
    }

    /// Returns `true` when no shots have been recorded.
    pub fn is_empty(&self) -> bool {
        self.histogram.is_empty()
    }

    /// Marginalizes onto a subset of classical bits (`keep[i]` becomes bit
    /// `i` of the new outcomes).
    pub fn marginal(&self, keep: &[usize]) -> Counts {
        let mut out = Counts::new(keep.len());
        for (&outcome, &count) in &self.histogram {
            let mut reduced = 0u64;
            for (i, &c) in keep.iter().enumerate() {
                if (outcome >> c) & 1 == 1 {
                    reduced |= 1 << i;
                }
            }
            out.record_n(reduced, count);
        }
        out
    }

    /// Expectation of a ±1 observable that is the parity of the given
    /// classical bits — the standard estimator for Pauli-Z strings.
    pub fn parity_expectation(&self, bits: &[usize]) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let mut acc = 0i64;
        for (&outcome, &count) in &self.histogram {
            let parity = bits.iter().map(|&b| (outcome >> b) & 1).sum::<u64>() % 2;
            acc += if parity == 0 { count as i64 } else { -(count as i64) };
        }
        acc as f64 / total as f64
    }

    /// Hellinger fidelity against another histogram — used by the noise
    /// benchmarks to quantify how much noise degrades results.
    pub fn hellinger_fidelity(&self, other: &Counts) -> f64 {
        let (ta, tb) = (self.total() as f64, other.total() as f64);
        if ta == 0.0 || tb == 0.0 {
            return 0.0;
        }
        let mut bc = 0.0; // Bhattacharyya coefficient
        for (&outcome, &count) in &self.histogram {
            let pa = count as f64 / ta;
            let pb = other.get_value(outcome) as f64 / tb;
            bc += (pa * pb).sqrt();
        }
        bc * bc
    }
}

impl fmt::Display for Counts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (outcome, count)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "\"{}\": {}", self.to_bitstring(outcome), count)?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<u64> for Counts {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut max_bits = 1;
        let items: Vec<u64> = iter.into_iter().collect();
        for &v in &items {
            max_bits = max_bits.max(64 - v.leading_zeros() as usize);
        }
        let mut counts = Counts::new(max_bits);
        for v in items {
            counts.record(v);
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Counts {
        let mut c = Counts::new(3);
        c.record_n(0b000, 10);
        c.record_n(0b101, 30);
        c.record_n(0b111, 20);
        c
    }

    #[test]
    fn recording_and_totals() {
        let c = sample();
        assert_eq!(c.total(), 60);
        assert_eq!(c.get_value(0b101), 30);
        assert_eq!(c.get("101"), 30);
        assert_eq!(c.get_value(0b010), 0);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
    }

    #[test]
    fn probabilities_and_mode() {
        let c = sample();
        assert!((c.probability(0b101) - 0.5).abs() < 1e-12);
        assert_eq!(c.most_frequent(), Some(0b101));
        assert_eq!(Counts::new(1).most_frequent(), None);
    }

    #[test]
    fn bitstring_rendering() {
        let c = sample();
        assert_eq!(c.to_bitstring(0b101), "101");
        assert_eq!(c.to_bitstring(0), "000");
        assert_eq!(c.to_string(), "{\"000\": 10, \"101\": 30, \"111\": 20}");
    }

    #[test]
    fn marginalization() {
        let c = sample();
        // Keep bit 2 and bit 0 (new bit order: [2 -> 0, 0 -> 1]).
        let m = c.marginal(&[2, 0]);
        assert_eq!(m.num_clbits(), 2);
        // 000 -> 00 (10), 101 -> bit2=1->bit0, bit0=1->bit1: 11 (30),
        // 111 -> 11 (20)
        assert_eq!(m.get_value(0b00), 10);
        assert_eq!(m.get_value(0b11), 50);
    }

    #[test]
    fn parity_expectation_of_z() {
        let mut c = Counts::new(1);
        c.record_n(0, 75);
        c.record_n(1, 25);
        assert!((c.parity_expectation(&[0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parity_expectation_multi_bit() {
        let c = sample();
        // Bits 0 and 2: 000 parity 0 (+10), 101 parity 0 (+30), 111 parity 0
        // (+20) -> expectation 1.
        assert!((c.parity_expectation(&[0, 2]) - 1.0).abs() < 1e-12);
        // Bits 1: 000 -> +, 101 -> +, 111 -> -: (10+30-20)/60 = 1/3
        assert!((c.parity_expectation(&[1]) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn hellinger_fidelity_bounds() {
        let c = sample();
        assert!((c.hellinger_fidelity(&c) - 1.0).abs() < 1e-12);
        let mut other = Counts::new(3);
        other.record_n(0b010, 5);
        assert_eq!(c.hellinger_fidelity(&other), 0.0);
        assert_eq!(c.hellinger_fidelity(&Counts::new(3)), 0.0);
    }

    #[test]
    fn from_iterator_collects() {
        let c: Counts = vec![0b1u64, 0b1, 0b0].into_iter().collect();
        assert_eq!(c.get_value(1), 2);
        assert_eq!(c.get_value(0), 1);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn too_many_clbits_panics() {
        let _ = Counts::new(65);
    }
}
