//! Error types for the aer crate.

use std::fmt;

/// Errors produced by the simulators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AerError {
    /// Circuit is too wide for dense simulation.
    TooManyQubits {
        /// Requested width.
        requested: usize,
        /// Maximum supported width.
        max: usize,
    },
    /// The circuit contains an instruction this simulator cannot execute.
    UnsupportedInstruction {
        /// Instruction name.
        name: String,
        /// Which simulator rejected it.
        simulator: &'static str,
    },
    /// More classical bits than the counts representation supports.
    TooManyClbits {
        /// Requested classical width.
        requested: usize,
    },
    /// An error bubbled up from circuit handling in terra.
    Terra(qukit_terra::error::TerraError),
}

impl fmt::Display for AerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AerError::TooManyQubits { requested, max } => {
                write!(f, "circuit with {requested} qubits exceeds the {max}-qubit dense limit")
            }
            AerError::UnsupportedInstruction { name, simulator } => {
                write!(f, "instruction '{name}' is not supported by the {simulator}")
            }
            AerError::TooManyClbits { requested } => {
                write!(f, "{requested} classical bits exceed the 64-bit counts limit")
            }
            AerError::Terra(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AerError::Terra(e) => Some(e),
            _ => None,
        }
    }
}

impl From<qukit_terra::error::TerraError> for AerError {
    fn from(e: qukit_terra::error::TerraError) -> Self {
        AerError::Terra(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, AerError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = AerError::TooManyQubits { requested: 40, max: 30 };
        assert!(e.to_string().contains("40"));
        let terra = qukit_terra::error::TerraError::Transpile { msg: "x".into() };
        let wrapped = AerError::from(terra);
        assert!(std::error::Error::source(&wrapped).is_some());
    }
}
