//! # qukit-aer
//!
//! Simulators and noise models for the **qukit** toolchain — the analogue
//! of Qiskit's Aer element as described in the DATE 2019 paper: "a set of
//! simulators and emulators for running quantum circuits and applications
//! on conventional machines", supporting both "clean" (noiseless)
//! execution and execution under injected noise processes.
//!
//! * [`simulator::QasmSimulator`] — shot-based execution with measurement,
//!   reset, conditionals and stochastic (trajectory) noise;
//! * [`simulator::StatevectorSimulator`] — exact final states;
//! * [`simulator::UnitarySimulator`] — full-unitary extraction;
//! * [`density::DensityMatrixSimulator`] — exact mixed-state evolution;
//! * [`noise`] — Kraus channels, per-gate noise models, readout errors;
//! * [`counts::Counts`] — outcome histograms with fidelity metrics.
//!
//! # Examples
//!
//! ```
//! use qukit_aer::simulator::QasmSimulator;
//! use qukit_terra::circuit::QuantumCircuit;
//!
//! # fn main() -> Result<(), qukit_aer::error::AerError> {
//! let mut circ = QuantumCircuit::with_size(2, 2);
//! circ.h(0).unwrap();
//! circ.cx(0, 1).unwrap();
//! circ.measure(0, 0).unwrap();
//! circ.measure(1, 1).unwrap();
//! let counts = QasmSimulator::new().with_seed(42).run(&circ, 1024)?;
//! assert_eq!(counts.get("01") + counts.get("10"), 0);
//! # Ok(())
//! # }
//! ```

pub mod counts;
pub mod density;
pub mod error;
pub mod noise;
pub mod parallel;
pub mod simd;
pub mod simulator;
pub mod stabilizer;
pub mod statevector;

pub use counts::Counts;
pub use density::{DensityMatrix, DensityMatrixSimulator};
pub use error::AerError;
pub use noise::{NoiseModel, QuantumError, ReadoutError};
pub use parallel::{ParallelConfig, ParallelStatevectorSimulator};
pub use simulator::{QasmSimulator, StatevectorSimulator, UnitarySimulator};
pub use stabilizer::{StabilizerSimulator, StabilizerState};
pub use statevector::Statevector;
