//! The circuit simulators.
//!
//! * [`QasmSimulator`] — shot-based execution with measurement, reset,
//!   classical conditionals and (optionally) a [`NoiseModel`]; the
//!   workhorse corresponding to Qiskit Aer's `qasm_simulator` used in the
//!   paper's walkthrough (`Aer.get_backend('qasm_simulator')`).
//! * [`StatevectorSimulator`] — exact final-state computation for unitary
//!   circuits.
//! * [`UnitarySimulator`] — full-unitary extraction for verification.

use crate::counts::Counts;
use crate::error::{AerError, Result};
use crate::noise::NoiseModel;
use crate::parallel::{self, ParallelConfig};
use crate::statevector::Statevector;
use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::complex::Complex;
use qukit_terra::instruction::{Instruction, Operation};
use qukit_terra::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MAX_QUBITS: usize = 30;

/// Local accumulator for apply-gate counts, flushed to the global
/// [`qukit_obs`] registry once per run so the per-gate hot path stays free
/// of locks and atomics.
#[derive(Debug, Default)]
pub(crate) struct GateTally {
    gates: u64,
    amplitudes: u64,
}

impl GateTally {
    /// Records one gate application that touched `amplitudes` entries.
    #[inline]
    pub(crate) fn record(&mut self, amplitudes: u64) {
        self.gates += 1;
        self.amplitudes += amplitudes;
    }

    /// Records `gates` source gates folded into one pass over `amplitudes`
    /// entries (used by the fused kernels).
    #[inline]
    pub(crate) fn record_n(&mut self, gates: u64, amplitudes: u64) {
        self.gates += gates;
        self.amplitudes += amplitudes;
    }

    /// Flushes into the named gate counter plus the shared
    /// amplitudes-touched counter (no-op while recording is disabled).
    pub(crate) fn flush(self, gate_counter: &str) {
        qukit_obs::counter_add(gate_counter, self.gates);
        qukit_obs::counter_add("qukit_aer_amplitudes_touched_total", self.amplitudes);
    }
}

/// Shot-based simulator with optional noise injection.
///
/// # Examples
///
/// ```
/// use qukit_aer::simulator::QasmSimulator;
/// use qukit_terra::circuit::QuantumCircuit;
///
/// # fn main() -> Result<(), qukit_aer::error::AerError> {
/// let mut bell = QuantumCircuit::with_size(2, 2);
/// bell.h(0).unwrap();
/// bell.cx(0, 1).unwrap();
/// bell.measure(0, 0).unwrap();
/// bell.measure(1, 1).unwrap();
///
/// let counts = QasmSimulator::new().with_seed(7).run(&bell, 1000)?;
/// assert_eq!(counts.total(), 1000);
/// assert_eq!(counts.get("01") + counts.get("10"), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct QasmSimulator {
    noise: Option<NoiseModel>,
    seed: Option<u64>,
    parallel: ParallelConfig,
}

impl QasmSimulator {
    /// Creates an ideal (noiseless) simulator. The parallel configuration
    /// defaults to [`ParallelConfig::from_env`], so `QUKIT_THREADS` /
    /// `QUKIT_FUSION` steer every default-constructed instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a noise model (builder style).
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = Some(noise);
        self
    }

    /// Fixes the RNG seed for reproducible sampling (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the parallel/fusion configuration (builder style).
    pub fn with_parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// The attached noise model, if any.
    pub fn noise(&self) -> Option<&NoiseModel> {
        self.noise.as_ref()
    }

    /// The active parallel configuration.
    pub fn parallel(&self) -> &ParallelConfig {
        &self.parallel
    }

    /// Executes `shots` repetitions of `circuit` and histograms the
    /// classical outcomes.
    ///
    /// When the circuit is measurement-terminal (no reset, no conditional,
    /// all measurements after the last gate) and the simulator is
    /// noiseless, the state is evolved once and sampled `shots` times;
    /// otherwise each shot is an independent trajectory.
    ///
    /// # Errors
    ///
    /// Returns an error when the circuit is too wide or uses more than 64
    /// classical bits.
    pub fn run(&self, circuit: &QuantumCircuit, shots: usize) -> Result<Counts> {
        if circuit.num_qubits() > MAX_QUBITS {
            return Err(AerError::TooManyQubits {
                requested: circuit.num_qubits(),
                max: MAX_QUBITS,
            });
        }
        if circuit.num_clbits() > 64 {
            return Err(AerError::TooManyClbits { requested: circuit.num_clbits() });
        }
        let mut rng = match self.seed {
            Some(seed) => StdRng::seed_from_u64(seed),
            None => StdRng::from_entropy(),
        };
        let ideal = self.noise.as_ref().is_none_or(NoiseModel::is_ideal);
        let sampled = ideal && is_measurement_terminal(circuit);
        let _span = qukit_obs::span!(
            "aer.qasm_run",
            qubits = circuit.num_qubits(),
            shots = shots,
            mode = if sampled { "sampled" } else { "trajectory" },
        );
        qukit_obs::counter_inc("qukit_aer_qasm_runs_total");
        qukit_obs::counter_add("qukit_aer_shots_total", shots as u64);
        if sampled {
            if self.parallel.is_active() {
                let base_seed = self.seed.unwrap_or_else(|| rng.gen());
                self.run_sampled_parallel(circuit, shots, base_seed)
            } else {
                self.run_sampled(circuit, shots, &mut rng)
            }
        } else if self.parallel.threads > 1 && shots > 1 {
            let base_seed = self.seed.unwrap_or_else(|| rng.gen());
            self.run_trajectories_batched(circuit, shots, base_seed)
        } else {
            let mut tally = GateTally::default();
            let mut counts = Counts::new(circuit.num_clbits());
            for _ in 0..shots {
                let outcome = self.run_trajectory(circuit, &mut rng, &mut tally)?;
                counts.record(outcome);
            }
            tally.flush("qukit_aer_statevector_gates_total");
            Ok(counts)
        }
    }

    /// Executes a batch of circuits — typically the bindings of one
    /// parameter sweep — with `shots` repetitions each, reusing the
    /// amplitude buffer across bindings so a 64-point sweep allocates one
    /// state instead of 64.
    ///
    /// For a seeded simulator the returned histograms are bit-identical
    /// to calling [`QasmSimulator::run`] once per circuit: each binding
    /// runs the exact same evolution and sampling code with the same
    /// seed derivation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`QasmSimulator::run`], for any circuit.
    pub fn run_batch(&self, circuits: &[QuantumCircuit], shots: usize) -> Result<Vec<Counts>> {
        let _span =
            qukit_obs::span!("aer.qasm_run_batch", circuits = circuits.len(), shots = shots,);
        qukit_obs::counter_inc("qukit_aer_batch_runs_total");
        let mut amps: Vec<Complex> = Vec::new();
        let mut results = Vec::with_capacity(circuits.len());
        for circuit in circuits {
            if circuit.num_qubits() > MAX_QUBITS {
                return Err(AerError::TooManyQubits {
                    requested: circuit.num_qubits(),
                    max: MAX_QUBITS,
                });
            }
            if circuit.num_clbits() > 64 {
                return Err(AerError::TooManyClbits { requested: circuit.num_clbits() });
            }
            let ideal = self.noise.as_ref().is_none_or(NoiseModel::is_ideal);
            if ideal && is_measurement_terminal(circuit) && self.parallel.is_active() {
                qukit_obs::counter_inc("qukit_aer_qasm_runs_total");
                qukit_obs::counter_add("qukit_aer_shots_total", shots as u64);
                let base_seed = match self.seed {
                    Some(seed) => seed,
                    None => rand::thread_rng().gen(),
                };
                results.push(self.run_sampled_parallel_into(circuit, shots, base_seed, &mut amps)?);
            } else {
                results.push(self.run(circuit, shots)?);
            }
        }
        Ok(results)
    }

    /// Parallel fast path: fused chunked evolution, then batched CDF
    /// sampling with per-batch RNG streams. For a fixed seed the counts
    /// are identical at every thread count and chunk size.
    fn run_sampled_parallel(
        &self,
        circuit: &QuantumCircuit,
        shots: usize,
        base_seed: u64,
    ) -> Result<Counts> {
        self.run_sampled_parallel_into(circuit, shots, base_seed, &mut Vec::new())
    }

    /// [`QasmSimulator::run_sampled_parallel`] with a caller-provided
    /// amplitude buffer (reused across the bindings of a batch).
    fn run_sampled_parallel_into(
        &self,
        circuit: &QuantumCircuit,
        shots: usize,
        base_seed: u64,
        amps: &mut Vec<Complex>,
    ) -> Result<Counts> {
        let mut gates: Vec<Instruction> = Vec::new();
        let mut measures: Vec<(usize, usize)> = Vec::new();
        for inst in circuit.instructions() {
            match &inst.op {
                Operation::Gate(_) => gates.push(inst.clone()),
                Operation::Measure => measures.push((inst.qubits[0], inst.clbits[0])),
                Operation::Barrier => {}
                Operation::Reset => unreachable!("terminal circuits have no reset"),
            }
        }
        amps.clear();
        amps.resize(1usize << circuit.num_qubits(), Complex::ZERO);
        amps[0] = Complex::ONE;
        let mut tally = GateTally::default();
        parallel::evolve_fused(amps, &gates, &self.parallel, &mut tally)?;
        tally.flush("qukit_aer_statevector_gates_total");
        let _sample_span = qukit_obs::span!("aer.sample", shots = shots, mode = "parallel")
            .with_metric("qukit_aer_sample_seconds");
        let cdf = parallel::probability_cdf(amps);
        let samples = parallel::sample_indices(&cdf, shots, base_seed, self.parallel.threads);
        let mut counts = Counts::new(circuit.num_clbits());
        for basis in samples {
            let mut outcome = 0u64;
            for &(q, c) in &measures {
                if (basis >> q) & 1 == 1 {
                    outcome |= 1 << c;
                }
            }
            counts.record(outcome);
        }
        Ok(counts)
    }

    /// Shot-parallel trajectories: shots are split into fixed-size batches
    /// with per-batch seeded RNG streams (thread-count-invariant for a
    /// fixed seed); workers claim batches in a fixed stride.
    fn run_trajectories_batched(
        &self,
        circuit: &QuantumCircuit,
        shots: usize,
        base_seed: u64,
    ) -> Result<Counts> {
        let batch_size = parallel::TRAJECTORY_BATCH;
        let batches = shots.div_ceil(batch_size);
        let threads = self.parallel.threads.clamp(1, parallel::MAX_THREADS).min(batches);
        let run_batch = |batch: usize| -> Result<(Counts, GateTally)> {
            let lo = batch * batch_size;
            let hi = ((batch + 1) * batch_size).min(shots);
            let mut rng = StdRng::seed_from_u64(parallel::batch_seed(base_seed, batch as u64));
            let mut counts = Counts::new(circuit.num_clbits());
            let mut tally = GateTally::default();
            for _ in lo..hi {
                let outcome = self.run_trajectory(circuit, &mut rng, &mut tally)?;
                counts.record(outcome);
            }
            Ok((counts, tally))
        };
        let results: Vec<Result<(Counts, GateTally)>> = if threads <= 1 {
            (0..batches).map(run_batch).collect()
        } else {
            std::thread::scope(|scope| {
                let run_batch = &run_batch;
                let handles: Vec<_> = (0..threads)
                    .map(|w| {
                        scope.spawn(move || {
                            let mut local = Vec::new();
                            let mut batch = w;
                            while batch < batches {
                                local.push(run_batch(batch));
                                batch += threads;
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("trajectory worker panicked"))
                    .collect()
            })
        };
        let mut counts = Counts::new(circuit.num_clbits());
        let mut tally = GateTally::default();
        for result in results {
            let (batch_counts, batch_tally) = result?;
            for (outcome, n) in batch_counts.iter() {
                counts.record_n(outcome, n);
            }
            tally.record_n(batch_tally.gates, batch_tally.amplitudes);
        }
        tally.flush("qukit_aer_statevector_gates_total");
        Ok(counts)
    }

    /// Fast path: evolve once, sample the terminal distribution.
    fn run_sampled(
        &self,
        circuit: &QuantumCircuit,
        shots: usize,
        rng: &mut StdRng,
    ) -> Result<Counts> {
        let mut state = Statevector::new(circuit.num_qubits());
        let dim = 1u64 << circuit.num_qubits();
        let mut tally = GateTally::default();
        let mut measures: Vec<(usize, usize)> = Vec::new();
        for inst in circuit.instructions() {
            match &inst.op {
                Operation::Gate(g) => {
                    state.apply_gate(*g, &inst.qubits);
                    tally.record(dim);
                }
                Operation::Measure => measures.push((inst.qubits[0], inst.clbits[0])),
                Operation::Barrier => {}
                Operation::Reset => unreachable!("terminal circuits have no reset"),
            }
        }
        tally.flush("qukit_aer_statevector_gates_total");
        let _sample_span = qukit_obs::span!("aer.sample", shots = shots, mode = "sequential")
            .with_metric("qukit_aer_sample_seconds");
        let mut counts = Counts::new(circuit.num_clbits());
        for _ in 0..shots {
            let basis = state.sample(rng);
            let mut outcome = 0u64;
            for &(q, c) in &measures {
                if (basis >> q) & 1 == 1 {
                    outcome |= 1 << c;
                }
            }
            counts.record(outcome);
        }
        Ok(counts)
    }

    /// Full trajectory: one shot with mid-circuit measurement, reset,
    /// conditionals and stochastic noise.
    fn run_trajectory(
        &self,
        circuit: &QuantumCircuit,
        rng: &mut StdRng,
        tally: &mut GateTally,
    ) -> Result<u64> {
        let mut state = Statevector::new(circuit.num_qubits());
        let dim = 1u64 << circuit.num_qubits();
        let mut creg = 0u64;
        let readout = self.noise.as_ref().and_then(|n| n.readout_error());
        for inst in circuit.instructions() {
            if let Some(cond) = &inst.condition {
                let mut value = 0u64;
                for (i, &c) in cond.clbits.iter().enumerate() {
                    if (creg >> c) & 1 == 1 {
                        value |= 1 << i;
                    }
                }
                if value != cond.value {
                    continue;
                }
            }
            match &inst.op {
                Operation::Gate(g) => {
                    state.apply_gate(*g, &inst.qubits);
                    tally.record(dim);
                    if let Some(noise) = &self.noise {
                        if let Some(error) = noise.error_for(g.name(), &inst.qubits) {
                            if error.num_qubits() == inst.qubits.len() {
                                error.apply_stochastic(&mut state, &inst.qubits, rng);
                            }
                        }
                    }
                }
                Operation::Measure => {
                    let mut bit = state.measure(inst.qubits[0], rng);
                    if let Some(readout) = readout {
                        bit = readout.apply(bit, rng);
                    }
                    if bit {
                        creg |= 1 << inst.clbits[0];
                    } else {
                        creg &= !(1 << inst.clbits[0]);
                    }
                }
                Operation::Reset => state.reset(inst.qubits[0], rng),
                Operation::Barrier => {}
            }
        }
        Ok(creg)
    }
}

/// Returns `true` when measurement is effectively terminal: no
/// conditional or reset instructions, each measured qubit is never
/// touched again after its measure, and no classical bit is written
/// twice. Gates on *other* qubits may follow a measure — a measurement
/// commutes with operations on disjoint qubits, so sampling the terminal
/// distribution once is exact. Schedulers and device transpilers
/// routinely interleave measures with tail gates this way; recognising
/// the pattern keeps transpiled circuits on the evolve-once fast path
/// instead of paying one full statevector evolution per shot.
fn is_measurement_terminal(circuit: &QuantumCircuit) -> bool {
    // Qubit and clbit counts are bounded well below 64 at every call
    // site (MAX_QUBITS and the 64-clbit admission check), so bitmasks
    // suffice.
    let mut measured_qubits = 0u64;
    let mut written_clbits = 0u64;
    for inst in circuit.instructions() {
        if inst.condition.is_some() {
            return false;
        }
        match inst.op {
            Operation::Measure => {
                let qubit = 1u64 << inst.qubits[0];
                let clbit = 1u64 << inst.clbits[0];
                if measured_qubits & qubit != 0 || written_clbits & clbit != 0 {
                    return false;
                }
                measured_qubits |= qubit;
                written_clbits |= clbit;
            }
            Operation::Reset => return false,
            Operation::Gate(_) => {
                if inst.qubits.iter().any(|&q| measured_qubits & (1u64 << q) != 0) {
                    return false;
                }
            }
            Operation::Barrier => {}
        }
    }
    true
}

/// Exact statevector simulator for unitary circuits.
///
/// # Examples
///
/// ```
/// use qukit_aer::simulator::StatevectorSimulator;
/// use qukit_terra::circuit::QuantumCircuit;
///
/// # fn main() -> Result<(), qukit_aer::error::AerError> {
/// let mut ghz = QuantumCircuit::new(3);
/// ghz.h(0).unwrap();
/// ghz.cx(0, 1).unwrap();
/// ghz.cx(1, 2).unwrap();
/// let state = StatevectorSimulator::new().run(&ghz)?;
/// assert!((state.amplitude(0).norm_sqr() - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct StatevectorSimulator;

impl StatevectorSimulator {
    /// Creates the simulator.
    pub fn new() -> Self {
        Self
    }

    /// Computes the exact final state of a unitary circuit.
    ///
    /// # Errors
    ///
    /// Returns [`AerError::UnsupportedInstruction`] for measurement, reset
    /// or conditioned gates, and [`AerError::TooManyQubits`] for circuits
    /// beyond the dense limit.
    pub fn run(&self, circuit: &QuantumCircuit) -> Result<Statevector> {
        if circuit.num_qubits() > MAX_QUBITS {
            return Err(AerError::TooManyQubits {
                requested: circuit.num_qubits(),
                max: MAX_QUBITS,
            });
        }
        let _span = qukit_obs::span!("aer.statevector_run", qubits = circuit.num_qubits());
        qukit_obs::counter_inc("qukit_aer_statevector_runs_total");
        let mut state = Statevector::new(circuit.num_qubits());
        let dim = 1u64 << circuit.num_qubits();
        let mut tally = GateTally::default();
        for inst in circuit.instructions() {
            match &inst.op {
                Operation::Gate(g) if inst.condition.is_none() => {
                    state.apply_gate(*g, &inst.qubits);
                    tally.record(dim);
                }
                Operation::Barrier => {}
                other => {
                    return Err(AerError::UnsupportedInstruction {
                        name: other.name().to_owned(),
                        simulator: "statevector simulator",
                    })
                }
            }
        }
        tally.flush("qukit_aer_statevector_gates_total");
        state.apply_global_phase(circuit.global_phase());
        Ok(state)
    }
}

/// Full-unitary simulator (exponentially expensive; for verification).
#[derive(Debug, Clone, Copy, Default)]
pub struct UnitarySimulator;

impl UnitarySimulator {
    /// Creates the simulator.
    pub fn new() -> Self {
        Self
    }

    /// Computes the circuit's unitary matrix.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StatevectorSimulator::run`], with a tighter
    /// width limit (the matrix is `4^n` entries).
    pub fn run(&self, circuit: &QuantumCircuit) -> Result<Matrix> {
        if circuit.num_qubits() > 13 {
            return Err(AerError::TooManyQubits { requested: circuit.num_qubits(), max: 13 });
        }
        for inst in circuit.instructions() {
            let supported = matches!(inst.op, Operation::Gate(_) | Operation::Barrier)
                && inst.condition.is_none();
            if !supported {
                return Err(AerError::UnsupportedInstruction {
                    name: inst.op.name().to_owned(),
                    simulator: "unitary simulator",
                });
            }
        }
        qukit_terra::reference::unitary(circuit).map_err(AerError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::{NoiseModel, QuantumError, ReadoutError};
    use qukit_terra::gate::Gate;

    fn bell_measured() -> QuantumCircuit {
        let mut circ = QuantumCircuit::with_size(2, 2);
        circ.h(0).unwrap();
        circ.cx(0, 1).unwrap();
        circ.measure(0, 0).unwrap();
        circ.measure(1, 1).unwrap();
        circ
    }

    #[test]
    fn bell_counts_are_correlated_and_balanced() {
        let counts = QasmSimulator::new().with_seed(1).run(&bell_measured(), 4000).unwrap();
        assert_eq!(counts.total(), 4000);
        assert_eq!(counts.get("01"), 0);
        assert_eq!(counts.get("10"), 0);
        let p00 = counts.probability(0b00);
        assert!((p00 - 0.5).abs() < 0.05, "p00 = {p00}");
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let a = QasmSimulator::new().with_seed(9).run(&bell_measured(), 100).unwrap();
        let b = QasmSimulator::new().with_seed(9).run(&bell_measured(), 100).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn run_batch_is_bit_identical_to_per_circuit_runs() {
        let circuits: Vec<QuantumCircuit> = (0..8)
            .map(|i| {
                let mut circ = QuantumCircuit::with_size(3, 3);
                circ.ry(0.1 + 0.2 * i as f64, 0).unwrap();
                circ.cx(0, 1).unwrap();
                circ.ry(0.3 + 0.1 * i as f64, 2).unwrap();
                circ.cx(1, 2).unwrap();
                circ.measure_all();
                circ
            })
            .collect();
        let sim = QasmSimulator::new().with_seed(13).with_parallel(ParallelConfig::with_threads(2));
        let batch = sim.run_batch(&circuits, 512).unwrap();
        assert_eq!(batch.len(), circuits.len());
        for (circ, counts) in circuits.iter().zip(&batch) {
            assert_eq!(&sim.run(circ, 512).unwrap(), counts);
        }
        // The serial front-end also accepts batches (per-run fallback).
        let serial = QasmSimulator::new().with_seed(13);
        let batch = serial.run_batch(&circuits, 64).unwrap();
        for (circ, counts) in circuits.iter().zip(&batch) {
            assert_eq!(&serial.run(circ, 64).unwrap(), counts);
        }
    }

    #[test]
    fn unmeasured_qubits_report_zero() {
        let mut circ = QuantumCircuit::with_size(2, 1);
        circ.x(0).unwrap();
        circ.x(1).unwrap();
        circ.measure(1, 0).unwrap();
        let counts = QasmSimulator::new().with_seed(2).run(&circ, 50).unwrap();
        assert_eq!(counts.get_value(1), 50);
    }

    #[test]
    fn mid_circuit_measurement_forces_trajectories() {
        // Measure then apply a conditional X: deterministic teleport-like
        // correction.
        let mut circ = QuantumCircuit::with_size(2, 2);
        circ.x(0).unwrap();
        circ.measure(0, 0).unwrap();
        circ.append_conditional(Gate::X, &[1], "c", 1).unwrap();
        circ.measure(1, 1).unwrap();
        let counts = QasmSimulator::new().with_seed(3).run(&circ, 200).unwrap();
        assert_eq!(counts.get_value(0b11), 200);
    }

    #[test]
    fn conditional_not_taken_when_register_differs() {
        let mut circ = QuantumCircuit::with_size(2, 2);
        circ.measure(0, 0).unwrap(); // always 0
        circ.append_conditional(Gate::X, &[1], "c", 1).unwrap();
        circ.measure(1, 1).unwrap();
        let counts = QasmSimulator::new().with_seed(4).run(&circ, 100).unwrap();
        assert_eq!(counts.get_value(0b00), 100);
    }

    #[test]
    fn reset_clears_qubit_state() {
        let mut circ = QuantumCircuit::with_size(1, 1);
        circ.h(0).unwrap();
        circ.reset(0).unwrap();
        circ.measure(0, 0).unwrap();
        let counts = QasmSimulator::new().with_seed(5).run(&circ, 300).unwrap();
        assert_eq!(counts.get_value(0), 300);
    }

    #[test]
    fn depolarizing_noise_degrades_ghz() {
        let mut ghz = QuantumCircuit::with_size(3, 3);
        ghz.h(0).unwrap();
        ghz.cx(0, 1).unwrap();
        ghz.cx(1, 2).unwrap();
        ghz.measure(0, 0).unwrap();
        ghz.measure(1, 1).unwrap();
        ghz.measure(2, 2).unwrap();

        let ideal = QasmSimulator::new().with_seed(6).run(&ghz, 2000).unwrap();
        let noisy = QasmSimulator::new()
            .with_seed(6)
            .with_noise(NoiseModel::depolarizing(0.01, 0.05, 0.0))
            .run(&ghz, 2000)
            .unwrap();
        let ideal_success = ideal.probability(0b000) + ideal.probability(0b111);
        let noisy_success = noisy.probability(0b000) + noisy.probability(0b111);
        assert!(ideal_success > 0.99);
        assert!(noisy_success < ideal_success - 0.02, "noise must visibly degrade results");
        assert!(noisy_success > 0.5, "but not destroy them at these rates");
    }

    #[test]
    fn readout_error_flips_deterministic_outcome() {
        let mut circ = QuantumCircuit::with_size(1, 1);
        circ.measure(0, 0).unwrap();
        let mut noise = NoiseModel::new();
        noise.set_readout_error(ReadoutError::symmetric(0.2));
        let counts = QasmSimulator::new().with_seed(7).with_noise(noise).run(&circ, 3000).unwrap();
        let flip_rate = counts.probability(1);
        assert!((flip_rate - 0.2).abs() < 0.03, "flip rate {flip_rate}");
    }

    #[test]
    fn local_noise_only_affects_its_qubits() {
        let mut circ = QuantumCircuit::with_size(2, 2);
        circ.id(0).unwrap();
        circ.id(1).unwrap();
        circ.measure(0, 0).unwrap();
        circ.measure(1, 1).unwrap();
        let mut noise = NoiseModel::new();
        // 100% bit flip attached to id on qubit 1 only.
        noise.add_local_error("id", vec![1], QuantumError::bit_flip(1.0));
        let counts = QasmSimulator::new().with_seed(8).with_noise(noise).run(&circ, 100).unwrap();
        assert_eq!(counts.get_value(0b10), 100);
    }

    #[test]
    fn statevector_simulator_matches_reference() {
        let circ = qukit_terra::circuit::fig1_circuit();
        let state = StatevectorSimulator::new().run(&circ).unwrap();
        let reference = qukit_terra::reference::statevector(&circ).unwrap();
        for (a, b) in state.amplitudes().iter().zip(&reference) {
            assert!(a.approx_eq(*b));
        }
    }

    #[test]
    fn statevector_simulator_rejects_measurement() {
        let err = StatevectorSimulator::new().run(&bell_measured()).unwrap_err();
        assert!(matches!(err, AerError::UnsupportedInstruction { .. }));
        assert!(err.to_string().contains("measure"));
    }

    #[test]
    fn unitary_simulator_produces_unitary() {
        let mut circ = QuantumCircuit::new(2);
        circ.h(0).unwrap();
        circ.cx(0, 1).unwrap();
        let u = UnitarySimulator::new().run(&circ).unwrap();
        assert!(u.is_unitary());
        assert_eq!(u.rows(), 4);
    }

    #[test]
    fn terminal_detection() {
        assert!(is_measurement_terminal(&bell_measured()));
        let mut mid = QuantumCircuit::with_size(1, 1);
        mid.measure(0, 0).unwrap();
        mid.h(0).unwrap();
        assert!(!is_measurement_terminal(&mid));
        let mut with_reset = QuantumCircuit::with_size(1, 1);
        with_reset.reset(0).unwrap();
        assert!(!is_measurement_terminal(&with_reset));
    }

    #[test]
    fn terminal_detection_commutes_measures_past_disjoint_gates() {
        // Scheduler-style interleaving: q0 is measured while tail gates
        // still run on q1/q2. No measured qubit is touched again, so the
        // sampled fast path applies.
        let mut interleaved = QuantumCircuit::with_size(3, 3);
        interleaved.h(0).unwrap();
        interleaved.measure(0, 0).unwrap();
        interleaved.h(1).unwrap();
        interleaved.measure(1, 1).unwrap();
        interleaved.h(2).unwrap();
        interleaved.measure(2, 2).unwrap();
        assert!(is_measurement_terminal(&interleaved));

        // A two-qubit gate touching an already-measured qubit disqualifies.
        let mut reuse = QuantumCircuit::with_size(2, 2);
        reuse.measure(0, 0).unwrap();
        reuse.cx(0, 1).unwrap();
        assert!(!is_measurement_terminal(&reuse));

        // Writing the same clbit twice disqualifies (order matters).
        let mut overwrite = QuantumCircuit::with_size(2, 1);
        overwrite.measure(0, 0).unwrap();
        overwrite.measure(1, 0).unwrap();
        assert!(!is_measurement_terminal(&overwrite));
    }

    #[test]
    fn width_limits_are_enforced() {
        let circ = QuantumCircuit::new(31);
        assert!(matches!(QasmSimulator::new().run(&circ, 1), Err(AerError::TooManyQubits { .. })));
        let circ14 = QuantumCircuit::new(14);
        assert!(matches!(
            UnitarySimulator::new().run(&circ14),
            Err(AerError::TooManyQubits { .. })
        ));
    }
}
