//! Statevector representation and manipulation.
//!
//! [`Statevector`] is the mutable quantum-state object the simulators in
//! this crate are built on: gate application via bit-sliced updates,
//! projective measurement with collapse, reset, sampling, expectation
//! values and fidelities.

use crate::simd::{complex_mul2, neg_im_vec, simd_default, F64x4};
use qukit_terra::complex::Complex;
use qukit_terra::matrix::Matrix;
use rand::Rng;
use std::fmt;

/// The state of an `n`-qubit register as `2^n` complex amplitudes
/// (little-endian: bit `q` of the index is qubit `q`).
#[derive(Debug, Clone, PartialEq)]
pub struct Statevector {
    num_qubits: usize,
    amplitudes: Vec<Complex>,
}

impl Statevector {
    /// The all-zeros state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` exceeds 30 (the dense representation would
    /// not fit in memory).
    pub fn new(num_qubits: usize) -> Self {
        assert!(num_qubits <= 30, "dense statevector limited to 30 qubits");
        let mut amplitudes = vec![Complex::ZERO; 1usize << num_qubits];
        amplitudes[0] = Complex::ONE;
        Self { num_qubits, amplitudes }
    }

    /// Builds a statevector from raw amplitudes.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two.
    pub fn from_amplitudes(amplitudes: Vec<Complex>) -> Self {
        assert!(amplitudes.len().is_power_of_two(), "length must be a power of two");
        let num_qubits = amplitudes.len().trailing_zeros() as usize;
        Self { num_qubits, amplitudes }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Borrows the amplitude vector.
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amplitudes
    }

    /// Consumes the state, returning the amplitude vector.
    pub fn into_amplitudes(self) -> Vec<Complex> {
        self.amplitudes
    }

    /// The amplitude of basis state `index`.
    pub fn amplitude(&self, index: usize) -> Complex {
        self.amplitudes[index]
    }

    /// Applies a k-qubit gate matrix to the given qubits.
    ///
    /// Optimized single-qubit and controlled-NOT paths avoid the general
    /// gather/scatter; everything else routes through the generic kernel.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or out-of-range qubits.
    pub fn apply_matrix(&mut self, matrix: &Matrix, qubits: &[usize]) {
        match qubits.len() {
            1 => self.apply_1q(matrix, qubits[0]),
            _ => qukit_terra::reference::apply_gate(&mut self.amplitudes, matrix, qubits),
        }
    }

    /// Applies a standard gate.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range qubits.
    pub fn apply_gate(&mut self, gate: qukit_terra::gate::Gate, qubits: &[usize]) {
        use qukit_terra::gate::Gate;
        match gate {
            Gate::CX => self.apply_cx(qubits[0], qubits[1]),
            Gate::X => self.apply_x(qubits[0]),
            _ => self.apply_matrix(&gate.matrix(), qubits),
        }
    }

    fn apply_1q(&mut self, m: &Matrix, q: usize) {
        assert!(q < self.num_qubits, "qubit {q} out of range");
        let (m00, m01, m10, m11) = (m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]);
        let stride = 1usize << q;
        let dim = self.amplitudes.len();
        if simd_default() && stride >= 2 && dim >= 256 {
            // Two amplitude pairs per lane op. Runs are stride-long and
            // stride is a power of two ≥ 2, so there is never a tail. The
            // lane formulas perform exactly the scalar ops below per
            // element, keeping this path bit-identical to the fallback.
            // States under 256 amplitudes stay on the scalar loop: they
            // are L1-resident either way and the lane marshalling
            // overhead outweighs any vector win at that size.
            let (n00, n01) = (neg_im_vec(m00.im), neg_im_vec(m01.im));
            let (n10, n11) = (neg_im_vec(m10.im), neg_im_vec(m11.im));
            let mut base = 0usize;
            while base < dim {
                let (lo, hi) = self.amplitudes[base..base + (stride << 1)].split_at_mut(stride);
                let mut i = 0usize;
                while i + 2 <= stride {
                    let a = F64x4([lo[i].re, lo[i].im, lo[i + 1].re, lo[i + 1].im]);
                    let b = F64x4([hi[i].re, hi[i].im, hi[i + 1].re, hi[i + 1].im]);
                    let ra = complex_mul2(a, m00.re, n00).add(complex_mul2(b, m01.re, n01));
                    let rb = complex_mul2(a, m10.re, n10).add(complex_mul2(b, m11.re, n11));
                    lo[i] = Complex::new(ra.0[0], ra.0[1]);
                    lo[i + 1] = Complex::new(ra.0[2], ra.0[3]);
                    hi[i] = Complex::new(rb.0[0], rb.0[1]);
                    hi[i + 1] = Complex::new(rb.0[2], rb.0[3]);
                    i += 2;
                }
                base += stride << 1;
            }
            return;
        }
        let mut base = 0usize;
        while base < dim {
            for offset in base..base + stride {
                let a = self.amplitudes[offset];
                let b = self.amplitudes[offset + stride];
                self.amplitudes[offset] = m00 * a + m01 * b;
                self.amplitudes[offset + stride] = m10 * a + m11 * b;
            }
            base += stride << 1;
        }
    }

    fn apply_x(&mut self, q: usize) {
        assert!(q < self.num_qubits, "qubit {q} out of range");
        let stride = 1usize << q;
        let dim = self.amplitudes.len();
        let mut base = 0usize;
        while base < dim {
            for offset in base..base + stride {
                self.amplitudes.swap(offset, offset + stride);
            }
            base += stride << 1;
        }
    }

    fn apply_cx(&mut self, control: usize, target: usize) {
        assert!(control < self.num_qubits && target < self.num_qubits, "qubit out of range");
        assert_ne!(control, target, "control equals target");
        let cmask = 1usize << control;
        let tmask = 1usize << target;
        for idx in 0..self.amplitudes.len() {
            // Visit each swapped pair once: require control set, target 0.
            if idx & cmask != 0 && idx & tmask == 0 {
                self.amplitudes.swap(idx, idx | tmask);
            }
        }
    }

    /// Multiplies the whole state by `e^{iφ}`.
    pub fn apply_global_phase(&mut self, phase: f64) {
        if phase != 0.0 {
            let factor = Complex::cis(phase);
            for amp in &mut self.amplitudes {
                *amp *= factor;
            }
        }
    }

    /// Probability of measuring qubit `q` as `1`.
    pub fn probability_one(&self, q: usize) -> f64 {
        let mask = 1usize << q;
        self.amplitudes
            .iter()
            .enumerate()
            .filter(|(idx, _)| idx & mask != 0)
            .map(|(_, amp)| amp.norm_sqr())
            .sum()
    }

    /// All basis-state probabilities.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amplitudes.iter().map(|amp| amp.norm_sqr()).collect()
    }

    /// Projectively measures qubit `q`, collapsing the state. Returns the
    /// observed bit.
    pub fn measure(&mut self, q: usize, rng: &mut impl Rng) -> bool {
        let p1 = self.probability_one(q);
        let outcome = rng.gen::<f64>() < p1;
        self.collapse(q, outcome, if outcome { p1 } else { 1.0 - p1 });
        outcome
    }

    /// Forces qubit `q` into the given classical value, renormalizing.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when the requested outcome has ~zero
    /// probability.
    fn collapse(&mut self, q: usize, outcome: bool, prob: f64) {
        debug_assert!(prob > 1e-15, "collapsing onto a zero-probability branch");
        let mask = 1usize << q;
        let scale = 1.0 / prob.sqrt();
        for (idx, amp) in self.amplitudes.iter_mut().enumerate() {
            if ((idx & mask != 0) == outcome) && prob > 0.0 {
                *amp = amp.scale(scale);
            } else {
                *amp = Complex::ZERO;
            }
        }
    }

    /// Resets qubit `q` to `|0⟩` (measure + conditional flip).
    pub fn reset(&mut self, q: usize, rng: &mut impl Rng) {
        if self.measure(q, rng) {
            self.apply_x(q);
        }
    }

    /// Samples a full computational-basis outcome *without* collapsing the
    /// state (used for repeated sampling of a terminal state).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let mut r = rng.gen::<f64>();
        for (idx, amp) in self.amplitudes.iter().enumerate() {
            let p = amp.norm_sqr();
            if r < p {
                return idx;
            }
            r -= p;
        }
        self.amplitudes.len() - 1
    }

    /// Expectation value `⟨ψ|P|ψ⟩` of a Pauli string given as one
    /// character per qubit (`pauli[q] ∈ {I, X, Y, Z}` for qubit `q`).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or invalid characters.
    pub fn expectation_pauli(&self, pauli: &str) -> f64 {
        assert_eq!(pauli.len(), self.num_qubits, "pauli string length mismatch");
        let ops: Vec<char> = pauli.chars().collect();
        let mut acc = Complex::ZERO;
        // ⟨ψ|P|ψ⟩ = Σ_j conj(ψ_j) · (P ψ)_j, computed without materializing
        // the full operator: each Pauli string maps basis j to a single
        // basis state with a phase.
        let mut flip_mask = 0usize;
        for (q, &op) in ops.iter().enumerate() {
            match op {
                'X' | 'Y' => flip_mask |= 1 << q,
                'Z' | 'I' => {}
                other => panic!("invalid Pauli character '{other}'"),
            }
        }
        for (j, amp) in self.amplitudes.iter().enumerate() {
            if amp.is_approx_zero() {
                continue;
            }
            let target = j ^ flip_mask;
            let mut phase = Complex::ONE;
            for (q, &op) in ops.iter().enumerate() {
                let bit = (j >> q) & 1;
                match op {
                    'Y' => {
                        // Y|0> = i|1>, Y|1> = -i|0>
                        phase *= if bit == 0 { Complex::I } else { -Complex::I };
                    }
                    'Z' if bit == 1 => {
                        phase = -phase;
                    }
                    _ => {}
                }
            }
            acc += self.amplitudes[target].conj() * phase * *amp;
        }
        acc.re
    }

    /// Local expectation `⟨ψ|M|ψ⟩` of a Hermitian k-qubit operator acting
    /// on `qubits` (no state copy; used by trajectory noise sampling).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or out-of-range qubits.
    pub fn local_expectation(&self, matrix: &Matrix, qubits: &[usize]) -> f64 {
        let n = self.num_qubits;
        let k = qubits.len();
        assert_eq!(matrix.rows(), 1 << k, "operator dimension mismatch");
        for &q in qubits {
            assert!(q < n, "qubit {q} out of range");
        }
        let dim = 1usize << k;
        let mut sorted = qubits.to_vec();
        sorted.sort_unstable();
        let mut acc = 0.0f64;
        let mut gathered = vec![Complex::ZERO; dim];
        for b in 0..(1usize << (n - k)) {
            let mut base = b;
            for &q in &sorted {
                let low = base & ((1 << q) - 1);
                let high = (base >> q) << (q + 1);
                base = high | low;
            }
            for (j, slot) in gathered.iter_mut().enumerate() {
                let mut idx = base;
                for (t, &q) in qubits.iter().enumerate() {
                    if (j >> t) & 1 == 1 {
                        idx |= 1 << q;
                    }
                }
                *slot = self.amplitudes[idx];
            }
            for j in 0..dim {
                let mut mv = Complex::ZERO;
                for (jp, &amp) in gathered.iter().enumerate() {
                    mv += matrix[(j, jp)] * amp;
                }
                acc += (gathered[j].conj() * mv).re;
            }
        }
        acc
    }

    /// Rescales the state to unit norm in place (no-op on a zero state).
    pub fn renormalize(&mut self) {
        let norm = self.norm_sqr().sqrt();
        if norm > 0.0 {
            let inv = 1.0 / norm;
            for amp in &mut self.amplitudes {
                *amp = amp.scale(inv);
            }
        }
    }

    /// Fidelity `|⟨self|other⟩|²` with another state.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn fidelity(&self, other: &Statevector) -> f64 {
        qukit_terra::matrix::state_fidelity(&self.amplitudes, &other.amplitudes)
    }

    /// Total probability (should be 1 for a normalized state).
    pub fn norm_sqr(&self) -> f64 {
        self.amplitudes.iter().map(|amp| amp.norm_sqr()).sum()
    }
}

impl fmt::Display for Statevector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (idx, amp) in self.amplitudes.iter().enumerate() {
            if amp.is_approx_zero() {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "({amp})|{:0width$b}⟩", idx, width = self.num_qubits.max(1))?;
            first = false;
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qukit_terra::complex::c64;
    use qukit_terra::gate::Gate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_state_and_accessors() {
        let sv = Statevector::new(3);
        assert_eq!(sv.num_qubits(), 3);
        assert_eq!(sv.amplitudes().len(), 8);
        assert!(sv.amplitude(0).is_approx_one());
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn optimized_1q_matches_generic() {
        let mut fast = Statevector::new(3);
        let mut slow = Statevector::new(3);
        for q in 0..3 {
            fast.apply_gate(Gate::H, &[q]);
            qukit_terra::reference::apply_gate(&mut slow.amplitudes, &Gate::H.matrix(), &[q]);
            fast.apply_gate(Gate::T, &[q]);
            qukit_terra::reference::apply_gate(&mut slow.amplitudes, &Gate::T.matrix(), &[q]);
        }
        for (a, b) in fast.amplitudes().iter().zip(slow.amplitudes()) {
            assert!(a.approx_eq(*b));
        }
    }

    #[test]
    fn optimized_cx_matches_generic() {
        let mut fast = Statevector::new(3);
        let mut slow = Statevector::new(3);
        fast.apply_gate(Gate::H, &[0]);
        qukit_terra::reference::apply_gate(&mut slow.amplitudes, &Gate::H.matrix(), &[0]);
        for (c, t) in [(0, 2), (2, 1), (1, 0)] {
            fast.apply_gate(Gate::CX, &[c, t]);
            qukit_terra::reference::apply_gate(&mut slow.amplitudes, &Gate::CX.matrix(), &[c, t]);
        }
        for (a, b) in fast.amplitudes().iter().zip(slow.amplitudes()) {
            assert!(a.approx_eq(*b));
        }
    }

    #[test]
    fn apply_1q_is_bit_identical_to_scalar_formula() {
        // Whichever path apply_1q takes (SIMD lanes or the scalar loop),
        // the result must equal the scalar butterfly formula bit for bit.
        // 9 qubits keeps the state above the 256-amplitude floor below
        // which apply_1q always takes the scalar loop.
        let mut sv = Statevector::new(9);
        for q in 0..9 {
            sv.apply_gate(Gate::H, &[q]);
            sv.apply_gate(Gate::T, &[q]);
        }
        for q in [1usize, 4, 8] {
            let m = Gate::Rx(0.7).matrix();
            let (m00, m01, m10, m11) = (m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]);
            let mut expect = sv.amplitudes().to_vec();
            let stride = 1usize << q;
            let mut base = 0usize;
            while base < expect.len() {
                for offset in base..base + stride {
                    let a = expect[offset];
                    let b = expect[offset + stride];
                    expect[offset] = m00 * a + m01 * b;
                    expect[offset + stride] = m10 * a + m11 * b;
                }
                base += stride << 1;
            }
            sv.apply_matrix(&m, &[q]);
            assert_eq!(sv.amplitudes(), &expect[..], "qubit {q}");
        }
    }

    #[test]
    fn probability_one_of_plus_state() {
        let mut sv = Statevector::new(2);
        sv.apply_gate(Gate::H, &[1]);
        assert!((sv.probability_one(1) - 0.5).abs() < 1e-12);
        assert!(sv.probability_one(0) < 1e-12);
    }

    #[test]
    fn measurement_collapses() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sv = Statevector::new(1);
        sv.apply_gate(Gate::H, &[0]);
        let outcome = sv.measure(0, &mut rng);
        // After collapse, the state is a basis state.
        let idx = usize::from(outcome);
        assert!(sv.amplitude(idx).norm_sqr() > 1.0 - 1e-12);
        // Repeated measurement is deterministic.
        assert_eq!(sv.measure(0, &mut rng), outcome);
    }

    #[test]
    fn bell_measurements_are_correlated() {
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..20 {
            let mut sv = Statevector::new(2);
            sv.apply_gate(Gate::H, &[0]);
            sv.apply_gate(Gate::CX, &[0, 1]);
            let a = sv.measure(0, &mut rng);
            let b = sv.measure(1, &mut rng);
            assert_eq!(a, b, "Bell pair must be perfectly correlated");
        }
    }

    #[test]
    fn reset_sends_to_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sv = Statevector::new(1);
        sv.apply_gate(Gate::H, &[0]);
        sv.reset(0, &mut rng);
        assert!(sv.amplitude(0).norm_sqr() > 1.0 - 1e-12);
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut sv = Statevector::new(2);
        sv.apply_gate(Gate::H, &[0]);
        sv.apply_gate(Gate::CX, &[0, 1]);
        let mut zeros = 0;
        let mut threes = 0;
        for _ in 0..2000 {
            match sv.sample(&mut rng) {
                0 => zeros += 1,
                3 => threes += 1,
                other => panic!("impossible outcome {other}"),
            }
        }
        let ratio = zeros as f64 / (zeros + threes) as f64;
        assert!((ratio - 0.5).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn pauli_expectations_on_known_states() {
        // |0>: <Z>=1, <X>=0. |+>: <X>=1, <Z>=0.
        let sv = Statevector::new(1);
        assert!((sv.expectation_pauli("Z") - 1.0).abs() < 1e-12);
        assert!(sv.expectation_pauli("X").abs() < 1e-12);
        let mut plus = Statevector::new(1);
        plus.apply_gate(Gate::H, &[0]);
        assert!((plus.expectation_pauli("X") - 1.0).abs() < 1e-12);
        assert!(plus.expectation_pauli("Z").abs() < 1e-12);
        // |i> = S|+>: <Y> = 1.
        let mut eye = plus.clone();
        eye.apply_gate(Gate::S, &[0]);
        assert!((eye.expectation_pauli("Y") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pauli_expectation_on_bell_state() {
        let mut sv = Statevector::new(2);
        sv.apply_gate(Gate::H, &[0]);
        sv.apply_gate(Gate::CX, &[0, 1]);
        // String order: pauli[q] is qubit q.
        assert!((sv.expectation_pauli("ZZ") - 1.0).abs() < 1e-12);
        assert!((sv.expectation_pauli("XX") - 1.0).abs() < 1e-12);
        assert!((sv.expectation_pauli("YY") + 1.0).abs() < 1e-12);
        assert!(sv.expectation_pauli("ZI").abs() < 1e-12);
    }

    #[test]
    fn global_phase_does_not_change_probabilities() {
        let mut sv = Statevector::new(1);
        sv.apply_gate(Gate::H, &[0]);
        let before = sv.probabilities();
        sv.apply_global_phase(1.234);
        assert_eq!(sv.probabilities(), before);
    }

    #[test]
    fn fidelity_of_orthogonal_states() {
        let zero = Statevector::new(1);
        let one = Statevector::from_amplitudes(vec![Complex::ZERO, Complex::ONE]);
        assert!(zero.fidelity(&one) < 1e-12);
        assert!((zero.fidelity(&zero) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_shows_nonzero_terms() {
        let sv = Statevector::from_amplitudes(vec![
            c64(std::f64::consts::FRAC_1_SQRT_2, 0.0),
            Complex::ZERO,
            Complex::ZERO,
            c64(std::f64::consts::FRAC_1_SQRT_2, 0.0),
        ]);
        let text = sv.to_string();
        assert!(text.contains("|00⟩"));
        assert!(text.contains("|11⟩"));
        assert!(!text.contains("|01⟩"));
    }

    #[test]
    #[should_panic(expected = "length must be a power of two")]
    fn from_amplitudes_validates() {
        let _ = Statevector::from_amplitudes(vec![Complex::ONE; 3]);
    }
}
