//! Stabilizer (CHP) simulation.
//!
//! The third simulation engine of the Aer layer: Clifford circuits are
//! simulated in `O(n²)` per gate/measurement on the Aaronson-Gottesman
//! tableau (Phys. Rev. A 70, 052328), scaling to *thousands* of qubits
//! where the dense statevector stops at ~30 — the classic example of the
//! "set of simulators and emulators" the paper's Aer section describes,
//! each with its own sweet spot.
//!
//! The tableau stores the destabilizer and stabilizer generators of the
//! state as bit-packed Pauli strings with sign bits; measurement follows
//! the standard three-case update with `rowsum` phase arithmetic.

use crate::counts::Counts;
use crate::error::{AerError, Result};
use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::gate::Gate;
use qukit_terra::instruction::Operation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A stabilizer state over `n` qubits as an Aaronson-Gottesman tableau.
///
/// # Examples
///
/// ```
/// use qukit_aer::stabilizer::StabilizerState;
/// use qukit_terra::gate::Gate;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut state = StabilizerState::new(2);
/// state.apply_gate(Gate::H, &[0]).unwrap();
/// state.apply_gate(Gate::CX, &[0, 1]).unwrap();
/// let mut rng = StdRng::seed_from_u64(1);
/// let a = state.measure(0, &mut rng);
/// let b = state.measure(1, &mut rng);
/// assert_eq!(a, b, "Bell pair is perfectly correlated");
/// ```
#[derive(Debug, Clone)]
pub struct StabilizerState {
    num_qubits: usize,
    words: usize,
    /// `2n + 1` rows (destabilizers, stabilizers, scratch); each row is
    /// `x`-bits then `z`-bits, `words` u64 words each.
    x: Vec<u64>,
    z: Vec<u64>,
    /// Sign bit per row (0 → +1, 1 → −1).
    r: Vec<u8>,
}

impl StabilizerState {
    /// The all-zeros state `|0…0⟩` (stabilizers `Z_i`, destabilizers
    /// `X_i`).
    pub fn new(num_qubits: usize) -> Self {
        let words = num_qubits.div_ceil(64);
        let rows = 2 * num_qubits + 1;
        let mut state = Self {
            num_qubits,
            words,
            x: vec![0; rows * words],
            z: vec![0; rows * words],
            r: vec![0; rows],
        };
        for i in 0..num_qubits {
            state.set_x(i, i, true); // destabilizer i = X_i
            state.set_z(num_qubits + i, i, true); // stabilizer i = Z_i
        }
        state
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    #[inline]
    fn get_x(&self, row: usize, q: usize) -> bool {
        self.x[row * self.words + q / 64] >> (q % 64) & 1 == 1
    }

    #[inline]
    fn get_z(&self, row: usize, q: usize) -> bool {
        self.z[row * self.words + q / 64] >> (q % 64) & 1 == 1
    }

    #[inline]
    fn set_x(&mut self, row: usize, q: usize, value: bool) {
        let idx = row * self.words + q / 64;
        let mask = 1u64 << (q % 64);
        if value {
            self.x[idx] |= mask;
        } else {
            self.x[idx] &= !mask;
        }
    }

    #[inline]
    fn set_z(&mut self, row: usize, q: usize, value: bool) {
        let idx = row * self.words + q / 64;
        let mask = 1u64 << (q % 64);
        if value {
            self.z[idx] |= mask;
        } else {
            self.z[idx] &= !mask;
        }
    }

    /// Applies a Clifford gate.
    ///
    /// # Errors
    ///
    /// Returns [`AerError::UnsupportedInstruction`] for non-Clifford gates.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range operands.
    pub fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) -> Result<()> {
        for &q in qubits {
            assert!(q < self.num_qubits, "qubit {q} out of range");
        }
        match gate {
            Gate::I => {}
            Gate::H => self.h(qubits[0]),
            Gate::S => self.s(qubits[0]),
            Gate::Sdg => {
                self.s(qubits[0]);
                self.s(qubits[0]);
                self.s(qubits[0]);
            }
            Gate::X => {
                // X = H S S H, but direct sign flip is O(n): X flips rows
                // with Z on q.
                self.h(qubits[0]);
                self.s(qubits[0]);
                self.s(qubits[0]);
                self.h(qubits[0]);
            }
            Gate::Z => {
                self.s(qubits[0]);
                self.s(qubits[0]);
            }
            Gate::Y => {
                // Y ∝ S X S†.
                self.s(qubits[0]);
                self.s(qubits[0]);
                self.h(qubits[0]);
                self.s(qubits[0]);
                self.s(qubits[0]);
                self.h(qubits[0]);
            }
            Gate::Sx => {
                // √X = H S H.
                self.h(qubits[0]);
                self.s(qubits[0]);
                self.h(qubits[0]);
            }
            Gate::Sxdg => {
                self.h(qubits[0]);
                self.s(qubits[0]);
                self.s(qubits[0]);
                self.s(qubits[0]);
                self.h(qubits[0]);
            }
            Gate::CX => self.cx(qubits[0], qubits[1]),
            Gate::CZ => {
                self.h(qubits[1]);
                self.cx(qubits[0], qubits[1]);
                self.h(qubits[1]);
            }
            Gate::CY => {
                self.s(qubits[1]);
                self.s(qubits[1]);
                self.s(qubits[1]);
                self.cx(qubits[0], qubits[1]);
                self.s(qubits[1]);
            }
            Gate::Swap => {
                self.cx(qubits[0], qubits[1]);
                self.cx(qubits[1], qubits[0]);
                self.cx(qubits[0], qubits[1]);
            }
            other => {
                return Err(AerError::UnsupportedInstruction {
                    name: other.name().to_owned(),
                    simulator: "stabilizer simulator",
                })
            }
        }
        Ok(())
    }

    fn h(&mut self, q: usize) {
        let rows = 2 * self.num_qubits;
        for row in 0..rows {
            let xv = self.get_x(row, q);
            let zv = self.get_z(row, q);
            if xv && zv {
                self.r[row] ^= 1;
            }
            self.set_x(row, q, zv);
            self.set_z(row, q, xv);
        }
    }

    fn s(&mut self, q: usize) {
        let rows = 2 * self.num_qubits;
        for row in 0..rows {
            let xv = self.get_x(row, q);
            let zv = self.get_z(row, q);
            if xv && zv {
                self.r[row] ^= 1;
            }
            self.set_z(row, q, xv ^ zv);
        }
    }

    fn cx(&mut self, control: usize, target: usize) {
        assert_ne!(control, target, "control equals target");
        let rows = 2 * self.num_qubits;
        for row in 0..rows {
            let xc = self.get_x(row, control);
            let zc = self.get_z(row, control);
            let xt = self.get_x(row, target);
            let zt = self.get_z(row, target);
            if xc && zt && (xt == zc) {
                self.r[row] ^= 1;
            }
            self.set_x(row, target, xt ^ xc);
            self.set_z(row, control, zc ^ zt);
        }
    }

    /// `rowsum(h, i)`: row `h` ← row `h` · row `i` with exact phase
    /// tracking (the `g` function of Aaronson-Gottesman).
    fn rowsum(&mut self, h: usize, i: usize) {
        let mut phase: i32 = 2 * self.r[h] as i32 + 2 * self.r[i] as i32;
        for q in 0..self.num_qubits {
            let x1 = self.get_x(i, q) as i32;
            let z1 = self.get_z(i, q) as i32;
            let x2 = self.get_x(h, q) as i32;
            let z2 = self.get_z(h, q) as i32;
            // g(x1,z1,x2,z2): exponent of i when multiplying Paulis.
            let g = match (x1, z1) {
                (0, 0) => 0,
                (1, 1) => z2 - x2,
                (1, 0) => z2 * (2 * x2 - 1),
                (0, 1) => x2 * (1 - 2 * z2),
                _ => unreachable!(),
            };
            phase += g;
        }
        debug_assert_eq!(phase.rem_euclid(2), 0, "rowsum phase must be real");
        self.r[h] = if phase.rem_euclid(4) == 0 { 0 } else { 1 };
        for w in 0..self.words {
            self.x[h * self.words + w] ^= self.x[i * self.words + w];
            self.z[h * self.words + w] ^= self.z[i * self.words + w];
        }
    }

    fn clear_row(&mut self, row: usize) {
        for w in 0..self.words {
            self.x[row * self.words + w] = 0;
            self.z[row * self.words + w] = 0;
        }
        self.r[row] = 0;
    }

    fn copy_row(&mut self, dst: usize, src: usize) {
        for w in 0..self.words {
            self.x[dst * self.words + w] = self.x[src * self.words + w];
            self.z[dst * self.words + w] = self.z[src * self.words + w];
        }
        self.r[dst] = self.r[src];
    }

    /// Returns the deterministic Z-measurement outcome of qubit `q`, or
    /// `None` if the outcome is random.
    pub fn deterministic_outcome(&mut self, q: usize) -> Option<bool> {
        let n = self.num_qubits;
        if (n..2 * n).any(|row| self.get_x(row, q)) {
            return None;
        }
        // Deterministic: accumulate into the scratch row.
        let scratch = 2 * n;
        self.clear_row(scratch);
        for i in 0..n {
            if self.get_x(i, q) {
                self.rowsum(scratch, i + n);
            }
        }
        Some(self.r[scratch] == 1)
    }

    /// Projectively measures qubit `q` in the Z basis, collapsing the
    /// state.
    pub fn measure(&mut self, q: usize, rng: &mut impl Rng) -> bool {
        let n = self.num_qubits;
        // Find a stabilizer anti-commuting with Z_q.
        let pivot = (n..2 * n).find(|&row| self.get_x(row, q));
        match pivot {
            Some(p) => {
                // Random outcome. The destabilizer paired with the pivot
                // (row p−n) anticommutes with it and is overwritten below,
                // so it is skipped rather than multiplied.
                for row in 0..2 * n {
                    if row != p && row != p - n && self.get_x(row, q) {
                        self.rowsum(row, p);
                    }
                }
                self.copy_row(p - n, p);
                self.clear_row(p);
                let outcome = rng.gen::<bool>();
                self.set_z(p, q, true);
                self.r[p] = u8::from(outcome);
                outcome
            }
            None => self
                .deterministic_outcome(q)
                .expect("no anti-commuting stabilizer implies determinism"),
        }
    }

    /// The expectation of `Z_q`: ±1 when deterministic, 0 when random.
    pub fn expectation_z(&mut self, q: usize) -> f64 {
        match self.deterministic_outcome(q) {
            Some(true) => -1.0,
            Some(false) => 1.0,
            None => 0.0,
        }
    }
}

/// Shot-based Clifford-circuit simulator on the stabilizer tableau.
#[derive(Debug, Clone, Default)]
pub struct StabilizerSimulator {
    seed: Option<u64>,
}

impl StabilizerSimulator {
    /// Creates the simulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fixes the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Executes `shots` repetitions of a Clifford circuit (gates,
    /// measurements, resets, barriers, conditionals).
    ///
    /// # Errors
    ///
    /// Returns an error for non-Clifford gates or more than 64 classical
    /// bits.
    pub fn run(&self, circuit: &QuantumCircuit, shots: usize) -> Result<Counts> {
        if circuit.num_clbits() > 64 {
            return Err(AerError::TooManyClbits { requested: circuit.num_clbits() });
        }
        let mut rng = match self.seed {
            Some(seed) => StdRng::seed_from_u64(seed),
            None => StdRng::from_entropy(),
        };
        let _span =
            qukit_obs::span!("aer.stabilizer_run", qubits = circuit.num_qubits(), shots = shots,);
        qukit_obs::counter_inc("qukit_aer_stabilizer_runs_total");
        qukit_obs::counter_add("qukit_aer_shots_total", shots as u64);
        let mut gates = 0u64;
        let counts = {
            let _sample_span = qukit_obs::span!("aer.sample", shots = shots, mode = "stabilizer")
                .with_metric("qukit_aer_sample_seconds");
            let mut counts = Counts::new(circuit.num_clbits());
            for _ in 0..shots {
                counts.record(self.run_shot(circuit, &mut rng, &mut gates)?);
            }
            counts
        };
        qukit_obs::counter_add("qukit_aer_stabilizer_gates_total", gates);
        Ok(counts)
    }

    fn run_shot(&self, circuit: &QuantumCircuit, rng: &mut StdRng, gates: &mut u64) -> Result<u64> {
        let mut state = StabilizerState::new(circuit.num_qubits());
        let mut creg = 0u64;
        for inst in circuit.instructions() {
            if let Some(cond) = &inst.condition {
                let mut value = 0u64;
                for (i, &c) in cond.clbits.iter().enumerate() {
                    if (creg >> c) & 1 == 1 {
                        value |= 1 << i;
                    }
                }
                if value != cond.value {
                    continue;
                }
            }
            match &inst.op {
                Operation::Gate(g) => {
                    state.apply_gate(*g, &inst.qubits)?;
                    *gates += 1;
                }
                Operation::Measure => {
                    let bit = state.measure(inst.qubits[0], rng);
                    if bit {
                        creg |= 1 << inst.clbits[0];
                    } else {
                        creg &= !(1 << inst.clbits[0]);
                    }
                }
                Operation::Reset => {
                    if state.measure(inst.qubits[0], rng) {
                        state.apply_gate(Gate::X, &[inst.qubits[0]])?;
                    }
                }
                Operation::Barrier => {}
            }
        }
        Ok(creg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::QasmSimulator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn clifford_gates() -> Vec<Gate> {
        vec![Gate::H, Gate::S, Gate::Sdg, Gate::X, Gate::Y, Gate::Z, Gate::Sx]
    }

    #[test]
    fn zero_state_measures_zero() {
        let mut state = StabilizerState::new(3);
        let mut rng = StdRng::seed_from_u64(1);
        for q in 0..3 {
            assert!(!state.measure(q, &mut rng));
            assert_eq!(state.expectation_z(q), 1.0);
        }
    }

    #[test]
    fn x_flips_deterministically() {
        let mut state = StabilizerState::new(2);
        state.apply_gate(Gate::X, &[1]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!state.measure(0, &mut rng));
        assert!(state.measure(1, &mut rng));
        assert_eq!(state.expectation_z(1), -1.0);
    }

    #[test]
    fn plus_state_is_random_then_sticky() {
        let mut outcomes = [0usize; 2];
        for seed in 0..40u64 {
            let mut state = StabilizerState::new(1);
            state.apply_gate(Gate::H, &[0]).unwrap();
            assert_eq!(state.expectation_z(0), 0.0, "pre-measurement Z is random");
            let mut rng = StdRng::seed_from_u64(seed);
            let first = state.measure(0, &mut rng);
            outcomes[usize::from(first)] += 1;
            // Repeated measurement must repeat.
            assert_eq!(state.measure(0, &mut rng), first);
        }
        assert!(outcomes[0] > 5 && outcomes[1] > 5, "both outcomes occur: {outcomes:?}");
    }

    #[test]
    fn bell_and_ghz_correlations() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let mut state = StabilizerState::new(3);
            state.apply_gate(Gate::H, &[0]).unwrap();
            state.apply_gate(Gate::CX, &[0, 1]).unwrap();
            state.apply_gate(Gate::CX, &[1, 2]).unwrap();
            let a = state.measure(0, &mut rng);
            assert_eq!(state.measure(1, &mut rng), a);
            assert_eq!(state.measure(2, &mut rng), a);
        }
    }

    #[test]
    fn matches_statevector_simulator_on_random_clifford_circuits() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..6 {
            let n = 4;
            let mut circ = QuantumCircuit::with_size(n, n);
            for _ in 0..25 {
                if rng.gen_bool(0.3) {
                    let a = rng.gen_range(0..n);
                    let mut b = rng.gen_range(0..n);
                    while b == a {
                        b = rng.gen_range(0..n);
                    }
                    circ.cx(a, b).unwrap();
                } else {
                    let g = clifford_gates()[rng.gen_range(0..7usize)];
                    circ.append(g, &[rng.gen_range(0..n)]).unwrap();
                }
            }
            for q in 0..n {
                circ.measure(q, q).unwrap();
            }
            let shots = 4000;
            let dense = QasmSimulator::new().with_seed(trial).run(&circ, shots).unwrap();
            let tableau = StabilizerSimulator::new().with_seed(trial).run(&circ, shots).unwrap();
            let fidelity = dense.hellinger_fidelity(&tableau);
            assert!(fidelity > 0.99, "trial {trial}: fidelity {fidelity}");
        }
    }

    #[test]
    fn scales_to_hundreds_of_qubits() {
        // GHZ-200: far beyond any dense simulator.
        let n = 200;
        let mut circ = QuantumCircuit::with_size(n, n);
        circ.h(0).unwrap();
        for q in 1..n {
            circ.cx(q - 1, q).unwrap();
        }
        for q in 0..n {
            circ.measure(q, q).unwrap();
        }
        let err = StabilizerSimulator::new().with_seed(1).run(&circ, 10);
        // 200 clbits exceed the 64-bit Counts; measure only 3 spread-out
        // qubits instead.
        assert!(err.is_err(), "collapsing 200 clbits into u64 must be rejected");
        let mut circ = QuantumCircuit::with_size(n, 3);
        circ.h(0).unwrap();
        for q in 1..n {
            circ.cx(q - 1, q).unwrap();
        }
        circ.measure(0, 0).unwrap();
        circ.measure(n / 2, 1).unwrap();
        circ.measure(n - 1, 2).unwrap();
        let counts = StabilizerSimulator::new().with_seed(1).run(&circ, 200).unwrap();
        assert_eq!(counts.get_value(0) + counts.get_value(0b111), 200);
        assert!(counts.get_value(0) > 50 && counts.get_value(0b111) > 50);
    }

    #[test]
    fn non_clifford_gate_is_rejected() {
        let mut state = StabilizerState::new(1);
        let err = state.apply_gate(Gate::T, &[0]).unwrap_err();
        assert!(err.to_string().contains("stabilizer"));
    }

    #[test]
    fn conditionals_and_reset_work() {
        let mut circ = QuantumCircuit::with_size(2, 2);
        circ.x(0).unwrap();
        circ.measure(0, 0).unwrap();
        circ.append_conditional(Gate::X, &[1], "c", 1).unwrap();
        circ.reset(0).unwrap();
        circ.measure(0, 0).unwrap();
        circ.measure(1, 1).unwrap();
        let counts = StabilizerSimulator::new().with_seed(3).run(&circ, 100).unwrap();
        // q0 reset to 0, q1 flipped by the conditional.
        assert_eq!(counts.get_value(0b10), 100);
    }

    #[test]
    fn cz_and_swap_tableau_updates() {
        // CZ|++⟩ measured in X basis after H's: reproduces the CZ truth
        // table through H-conjugation into CX behaviour.
        let mut circ = QuantumCircuit::with_size(2, 2);
        circ.x(0).unwrap();
        circ.h(1).unwrap();
        circ.cz(0, 1).unwrap();
        circ.h(1).unwrap(); // net effect: CX(0,1)
        circ.measure(0, 0).unwrap();
        circ.measure(1, 1).unwrap();
        let counts = StabilizerSimulator::new().with_seed(4).run(&circ, 100).unwrap();
        assert_eq!(counts.get_value(0b11), 100);

        let mut circ = QuantumCircuit::with_size(2, 2);
        circ.x(0).unwrap();
        circ.swap(0, 1).unwrap();
        circ.measure(0, 0).unwrap();
        circ.measure(1, 1).unwrap();
        let counts = StabilizerSimulator::new().with_seed(5).run(&circ, 50).unwrap();
        assert_eq!(counts.get_value(0b10), 50);
    }
}
