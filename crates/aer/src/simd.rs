//! Portable SIMD lanes for the statevector kernels.
//!
//! Stable-Rust "array of lanes" vectors: [`F64x4`] is a plain `[f64; 4]`
//! whose elementwise operations are small `#[inline(always)]` loops, which
//! LLVM reliably autovectorizes to one 256-bit (or two 128-bit) vector
//! instruction per op on every mainstream target. One vector holds **two
//! packed complex amplitudes** `[re₀, im₀, re₁, im₁]`, so a single lane op
//! advances two amplitude pairs of a butterfly at once.
//!
//! Two invariants make this layer safe to enable unconditionally:
//!
//! * **Lane safety** — vectors are built from `Complex` *field reads* and
//!   written back through `Complex::new`; no pointer casts, so the layout
//!   of `Complex` (which is not `repr(C)`) is never assumed.
//! * **Bit-identity** — every vectorized kernel formula performs exactly
//!   the same IEEE-754 operations per element as its scalar counterpart:
//!   the same products (multiplication is commutative bit-for-bit), the
//!   same association, with `a - b` replaced only by the exactly-equal
//!   `a + (-b)`. The scalar fallback selected by `QUKIT_SIMD=off` must
//!   therefore produce bit-identical amplitudes — a property the
//!   `parallel_equivalence` suite checks on 200 random circuits.

use std::sync::OnceLock;

/// Four `f64` lanes; elementwise ops autovectorize on stable Rust.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F64x4(pub [f64; 4]);

impl F64x4 {
    /// All four lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: f64) -> Self {
        Self([v; 4])
    }

    /// Lanewise addition.
    #[allow(clippy::should_implement_trait)]
    #[inline(always)]
    pub fn add(self, rhs: Self) -> Self {
        let a = self.0;
        let b = rhs.0;
        Self([a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3]])
    }

    /// Lanewise multiplication.
    #[allow(clippy::should_implement_trait)]
    #[inline(always)]
    pub fn mul(self, rhs: Self) -> Self {
        let a = self.0;
        let b = rhs.0;
        Self([a[0] * b[0], a[1] * b[1], a[2] * b[2], a[3] * b[3]])
    }

    /// Swaps the lanes of each packed complex: `[a, b, c, d] → [b, a, d, c]`.
    ///
    /// With the `[re₀, im₀, re₁, im₁]` packing this exchanges real and
    /// imaginary parts, the shuffle every complex multiply needs.
    #[inline(always)]
    pub fn swap_pairs(self) -> Self {
        let [a, b, c, d] = self.0;
        Self([b, a, d, c])
    }
}

/// Multiplies two packed amplitudes by the complex constant `(re, im)`,
/// performing per element exactly the ops of `Complex::mul`:
/// `(a.re·re − a.im·im, a.re·im + a.im·re)`.
///
/// The `im` weights are passed pre-negated in the even lanes
/// (`[-im, im, -im, im]`) so the subtraction becomes an exactly-equal
/// addition of a negated product.
#[inline(always)]
pub fn complex_mul2(v: F64x4, re: f64, neg_im_im: F64x4) -> F64x4 {
    v.mul(F64x4::splat(re)).add(v.swap_pairs().mul(neg_im_im))
}

/// Builds the `[-im, im, -im, im]` weight vector for [`complex_mul2`].
#[inline(always)]
pub fn neg_im_vec(im: f64) -> F64x4 {
    F64x4([-im, im, -im, im])
}

/// Whether the SIMD kernels are enabled by default, from `QUKIT_SIMD`
/// (`on` unless the variable parses to false). Read once per process;
/// explicit [`crate::parallel::ParallelConfig`] values override it.
pub fn simd_default() -> bool {
    static SIMD: OnceLock<bool> = OnceLock::new();
    *SIMD.get_or_init(|| match std::env::var("QUKIT_SIMD") {
        Ok(value) => crate::parallel::parse_bool_flag(&value).unwrap_or(true),
        Err(_) => true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_ops_are_elementwise() {
        let a = F64x4([1.0, 2.0, 3.0, 4.0]);
        let b = F64x4([0.5, 0.25, -1.0, 2.0]);
        assert_eq!(a.add(b), F64x4([1.5, 2.25, 2.0, 6.0]));
        assert_eq!(a.mul(b), F64x4([0.5, 0.5, -3.0, 8.0]));
        assert_eq!(a.swap_pairs(), F64x4([2.0, 1.0, 4.0, 3.0]));
        assert_eq!(F64x4::splat(7.0), F64x4([7.0; 4]));
    }

    #[test]
    fn complex_mul2_matches_complex_mul_bitwise() {
        use qukit_terra::complex::Complex;
        let amps = [Complex::new(0.3, -0.7), Complex::new(-0.12345, 0.9999)];
        let f = Complex::new(0.6, -0.8);
        let v = F64x4([amps[0].re, amps[0].im, amps[1].re, amps[1].im]);
        let out = complex_mul2(v, f.re, neg_im_vec(f.im));
        for (k, amp) in amps.iter().enumerate() {
            let expect = *amp * f;
            assert_eq!(out.0[2 * k], expect.re);
            assert_eq!(out.0[2 * k + 1], expect.im);
        }
    }
}
