//! Parallel & fused statevector execution.
//!
//! This module is the chunked multi-threaded kernel layer behind
//! [`crate::simulator::QasmSimulator`] (sampled and trajectory paths),
//! [`ParallelStatevectorSimulator`] and the density-matrix engine:
//!
//! * **Chunking** — the `2^n` amplitude array is partitioned into
//!   cache-sized chunks of `2^chunk_qubits` entries; each gate pass is
//!   split into independent *work units* (whole chunks for diagonal ops,
//!   chunk-sized slices of the pair/base index space otherwise) that
//!   `std::thread::scope` workers claim in a fixed stride. Every amplitude
//!   is written at most once per pass — by exactly one work unit — from
//!   values read in that same pass, so the result is bit-identical for
//!   every thread count and chunk size.
//! * **Fusion** — instruction streams are pre-processed by
//!   [`qukit_terra::fusion::fuse`], which merges adjacent gates on ≤3
//!   shared qubits into one dense (or, when possible, diagonal) unitary so
//!   the state is swept once per group instead of once per gate.
//! * **SIMD lanes** — the butterfly, diagonal and dense kernels walk the
//!   state two packed amplitudes at a time through [`crate::simd::F64x4`]
//!   lane ops that LLVM autovectorizes; the lane formulas perform exactly
//!   the scalar IEEE-754 operations per element, so `QUKIT_SIMD=off`
//!   (the scalar fallback, also [`ParallelConfig::simd`] = false) is
//!   *bit-identical*, not merely close.
//! * **Cache-blocked phases** — consecutive kernels whose qubit-bit union
//!   fits in one chunk are applied tile-by-tile: each cache-resident tile
//!   (a contiguous slice, or a gathered strided block when high qubit
//!   bits are involved) receives every kernel of the phase before the
//!   next tile is touched. A target qubit above the chunk boundary thus
//!   becomes strided-within-tile instead of a full-state gather per gate,
//!   and a fusion group's gates apply back-to-back from the group's gate
//!   list without materializing a dense matrix. Tiles are disjoint, so
//!   blocking changes neither values nor determinism.
//! * **Batched sampling** — all shots are drawn from the terminal
//!   distribution via a prefix-sum CDF and binary search, in fixed-size
//!   batches with per-batch seeded RNG streams. Batch boundaries do not
//!   depend on the worker count, so counts are reproducible for a fixed
//!   seed regardless of `threads`.
//!
//! Observability: `qukit_aer_parallel_chunks_total` (work units
//! processed), `qukit_aer_parallel_worker_seconds` (per-worker busy time,
//! histogram), per-kernel-kind dispatch counters
//! (`qukit_aer_kernel_{oneq,controlled,diag,dense}_total`), blocking
//! counters (`qukit_aer_blocked_{phases,tiles}_total`), plus the fusion
//! counters emitted by `qukit_terra::fusion`.

use crate::error::{AerError, Result};
use crate::simd::{complex_mul2, neg_im_vec, simd_default, F64x4};
use crate::simulator::GateTally;
use crate::statevector::Statevector;
use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::complex::Complex;
use qukit_terra::fusion::{controlled_form, fuse, FusedOp, FusedProgram, FusionConfig};
use qukit_terra::instruction::{Instruction, Operation};
use qukit_terra::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;
use std::sync::Barrier;
use std::time::Instant;

/// Default chunk size: `2^13` amplitudes = 128 KiB of complex pairs,
/// sized to stay cache-resident per worker.
pub const DEFAULT_CHUNK_QUBITS: usize = 13;

/// Hard cap on worker threads.
pub const MAX_THREADS: usize = 16;

/// Shots per sampling batch; fixed (not derived from the thread count) so
/// a seeded run yields identical counts at any parallelism level.
pub(crate) const SHOT_BATCH: usize = 1024;

/// Trajectories per batch on the shot-parallel trajectory path.
pub(crate) const TRAJECTORY_BATCH: usize = 32;

/// Configuration for the parallel execution layer.
///
/// The [`Default`] implementation reads the process environment
/// (`QUKIT_THREADS`, `QUKIT_CHUNK_QUBITS`, `QUKIT_FUSION`), so exporting
/// `QUKIT_THREADS=4` routes every default-constructed simulator through
/// the parallel path — this is how CI exercises it across the whole test
/// suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads (1 = serial kernels; clamped to [`MAX_THREADS`]).
    pub threads: usize,
    /// log2 of the chunk size in amplitudes.
    pub chunk_qubits: usize,
    /// Whether the gate-fusion pre-pass runs before dispatch.
    pub fusion: bool,
    /// Whether the SIMD lane kernels and cache-blocked phase traversal
    /// are used (`QUKIT_SIMD`, default on). `false` selects the scalar
    /// per-kernel sweeps, which produce bit-identical amplitudes — the
    /// differential-testing fallback.
    pub simd: bool,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self::from_env()
    }
}

impl ParallelConfig {
    /// Plain serial execution: one thread, no fusion. This reproduces the
    /// legacy engine behavior exactly (same kernels, same RNG stream).
    pub fn serial() -> Self {
        Self { threads: 1, chunk_qubits: DEFAULT_CHUNK_QUBITS, fusion: false, simd: simd_default() }
    }

    /// Parallel execution with `threads` workers and fusion enabled.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            chunk_qubits: DEFAULT_CHUNK_QUBITS,
            fusion: true,
            simd: simd_default(),
        }
    }

    /// Reads `QUKIT_THREADS` / `QUKIT_CHUNK_QUBITS` / `QUKIT_FUSION` /
    /// `QUKIT_SIMD` from the environment; unset or unparsable variables
    /// fall back to serial defaults (fusion defaults to on when
    /// `QUKIT_THREADS` > 1; SIMD defaults to on).
    pub fn from_env() -> Self {
        let threads = env_usize("QUKIT_THREADS").unwrap_or(1).max(1);
        let chunk_qubits = env_usize("QUKIT_CHUNK_QUBITS").unwrap_or(DEFAULT_CHUNK_QUBITS);
        let fusion = match std::env::var("QUKIT_FUSION") {
            Ok(value) => parse_bool_flag(&value).unwrap_or(threads > 1),
            Err(_) => threads > 1,
        };
        Self { threads, chunk_qubits, fusion, simd: simd_default() }
    }

    /// `true` when this config differs from the legacy serial engine, i.e.
    /// the fused/parallel code paths should be used.
    pub fn is_active(&self) -> bool {
        self.threads > 1 || self.fusion
    }

    /// The worker count actually used for a state of `len` amplitudes:
    /// clamped, and 1 when the whole state fits in a single chunk (thread
    /// spawn would cost more than it buys).
    pub(crate) fn effective_threads(&self, len: usize) -> usize {
        let threads = self.threads.clamp(1, MAX_THREADS);
        if len <= self.chunk_len() {
            1
        } else {
            threads
        }
    }

    /// Chunk size in amplitudes.
    pub(crate) fn chunk_len(&self) -> usize {
        1usize << self.chunk_qubits.clamp(1, 24)
    }

    /// The fusion configuration for this run.
    pub(crate) fn fusion_config(&self) -> FusionConfig {
        FusionConfig { enabled: self.fusion, max_qubits: 3 }
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Parses a boolean environment flag (`1/0`, `true/false`, `on/off`).
pub(crate) fn parse_bool_flag(value: &str) -> Option<bool> {
    match value.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Some(true),
        "0" | "false" | "off" | "no" => Some(false),
        _ => None,
    }
}

/// Derives the RNG seed for one sampling/trajectory batch from the run
/// seed (SplitMix64-style mixing; batch boundaries are thread-independent).
pub(crate) fn batch_seed(seed: u64, batch: u64) -> u64 {
    let mut z = seed ^ batch.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Execution statistics from one kernel sweep.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct ExecStats {
    /// Work units (chunks) processed across all workers.
    pub chunks: u64,
    /// Sum of per-worker wall time inside the sweep.
    pub worker_seconds: f64,
}

/// A 2×2 pair update, pre-classified by entry structure so the hot loop
/// runs the cheapest arithmetic the standard gate set allows: X blocks are
/// pure swaps, real matrices (H, Ry, composed 1q runs) need half the real
/// multiplies of the general case, and Rx-type matrices (real diagonal,
/// purely imaginary off-diagonal) likewise. Classification uses *exact*
/// zero/one comparisons, so it never perturbs the computed amplitudes.
#[derive(Clone)]
enum Butterfly {
    /// X block: swap the pair, no arithmetic.
    Swap,
    /// All four entries real.
    Real([f64; 4]),
    /// Real diagonal, purely imaginary off-diagonal (`[[d0, i·o1], [i·o2, d3]]`).
    Cross { d0: f64, o1: f64, o2: f64, d3: f64 },
    /// Arbitrary complex entries.
    General([Complex; 4]),
}

impl Butterfly {
    fn classify(m: [Complex; 4]) -> Self {
        if m.iter().all(|c| c.im == 0.0) {
            if m[0].re == 0.0 && m[3].re == 0.0 && m[1].re == 1.0 && m[2].re == 1.0 {
                return Butterfly::Swap;
            }
            return Butterfly::Real([m[0].re, m[1].re, m[2].re, m[3].re]);
        }
        if m[0].im == 0.0 && m[3].im == 0.0 && m[1].re == 0.0 && m[2].re == 0.0 {
            return Butterfly::Cross { d0: m[0].re, o1: m[1].im, o2: m[2].im, d3: m[3].re };
        }
        Butterfly::General(m)
    }

    /// Applies the butterfly to every pair whose low index is
    /// `expand(p) | 0` for `p` in `start..end`, with the high index one
    /// `stride` above. Dispatches once, then runs a monomorphized loop.
    ///
    /// `run` is the guaranteed contiguity window of `expand`: within each
    /// aligned block of `run` consecutive `p` values, `expand(p + 1) ==
    /// expand(p) + 1` and bit `log2(stride)` of `expand(p)` stays clear.
    /// With `simd` set and `run ≥ 2`, pairs are processed two at a time
    /// through [`F64x4`] lanes; the lane formulas perform exactly the
    /// scalar ops per element (products commuted, `a - b` as `a + (-b)`),
    /// so the two paths are bit-identical.
    ///
    /// # Safety
    ///
    /// Same contract as [`Kernel::apply_unit`]: the `(lo, hi)` index sets
    /// produced for distinct `p` are disjoint and in-bounds.
    #[allow(clippy::too_many_arguments)]
    unsafe fn sweep(
        &self,
        amps: &RawAmps,
        start: usize,
        end: usize,
        stride: usize,
        run: usize,
        simd: bool,
        expand: impl Fn(usize) -> usize,
    ) {
        unsafe fn scalar(
            amps: &RawAmps,
            start: usize,
            end: usize,
            stride: usize,
            expand: impl Fn(usize) -> usize,
            f: impl Fn(Complex, Complex) -> (Complex, Complex),
        ) {
            for p in start..end {
                let lo = expand(p);
                let hi = lo | stride;
                let a = amps.read(lo);
                let b = amps.read(hi);
                let (na, nb) = f(a, b);
                amps.write(lo, na);
                amps.write(hi, nb);
            }
        }
        /// Two pairs per step over the contiguous runs of `expand`, with a
        /// scalar head/tail inside each run for odd lengths.
        #[allow(clippy::too_many_arguments)]
        unsafe fn pairs(
            amps: &RawAmps,
            start: usize,
            end: usize,
            stride: usize,
            run: usize,
            expand: impl Fn(usize) -> usize,
            fv: impl Fn(F64x4, F64x4) -> (F64x4, F64x4),
            fs: impl Fn(Complex, Complex) -> (Complex, Complex),
        ) {
            let mut p = start;
            while p < end {
                let run_end = ((p | (run - 1)) + 1).min(end);
                let lo0 = expand(p);
                let n = run_end - p;
                let mut i = 0;
                while i + 2 <= n {
                    let lo = lo0 + i;
                    let hi = lo | stride;
                    let (na, nb) = fv(amps.load2(lo), amps.load2(hi));
                    amps.store2(lo, na);
                    amps.store2(hi, nb);
                    i += 2;
                }
                while i < n {
                    let lo = lo0 + i;
                    let hi = lo | stride;
                    let (na, nb) = fs(amps.read(lo), amps.read(hi));
                    amps.write(lo, na);
                    amps.write(hi, nb);
                    i += 1;
                }
                p = run_end;
            }
        }
        if !simd || run < 2 {
            return match *self {
                Butterfly::Swap => scalar(amps, start, end, stride, expand, |a, b| (b, a)),
                Butterfly::Real([m0, m1, m2, m3]) => {
                    scalar(amps, start, end, stride, expand, |a, b| {
                        (
                            Complex::new(m0 * a.re + m1 * b.re, m0 * a.im + m1 * b.im),
                            Complex::new(m2 * a.re + m3 * b.re, m2 * a.im + m3 * b.im),
                        )
                    })
                }
                Butterfly::Cross { d0, o1, o2, d3 } => {
                    scalar(amps, start, end, stride, expand, |a, b| {
                        (
                            Complex::new(d0 * a.re - o1 * b.im, d0 * a.im + o1 * b.re),
                            Complex::new(d3 * b.re - o2 * a.im, d3 * b.im + o2 * a.re),
                        )
                    })
                }
                Butterfly::General([m00, m01, m10, m11]) => {
                    scalar(amps, start, end, stride, expand, |a, b| {
                        (m00 * a + m01 * b, m10 * a + m11 * b)
                    })
                }
            };
        }
        match *self {
            // Swap is pure data movement; the scalar loop already runs at
            // copy speed.
            Butterfly::Swap => scalar(amps, start, end, stride, expand, |a, b| (b, a)),
            Butterfly::Real([m0, m1, m2, m3]) => pairs(
                amps,
                start,
                end,
                stride,
                run,
                expand,
                |a, b| {
                    (
                        a.mul(F64x4::splat(m0)).add(b.mul(F64x4::splat(m1))),
                        a.mul(F64x4::splat(m2)).add(b.mul(F64x4::splat(m3))),
                    )
                },
                |a, b| {
                    (
                        Complex::new(m0 * a.re + m1 * b.re, m0 * a.im + m1 * b.im),
                        Complex::new(m2 * a.re + m3 * b.re, m2 * a.im + m3 * b.im),
                    )
                },
            ),
            Butterfly::Cross { d0, o1, o2, d3 } => {
                let (n1, n2) = (neg_im_vec(o1), neg_im_vec(o2));
                pairs(
                    amps,
                    start,
                    end,
                    stride,
                    run,
                    expand,
                    |a, b| {
                        (
                            a.mul(F64x4::splat(d0)).add(b.swap_pairs().mul(n1)),
                            b.mul(F64x4::splat(d3)).add(a.swap_pairs().mul(n2)),
                        )
                    },
                    |a, b| {
                        (
                            Complex::new(d0 * a.re - o1 * b.im, d0 * a.im + o1 * b.re),
                            Complex::new(d3 * b.re - o2 * a.im, d3 * b.im + o2 * a.re),
                        )
                    },
                )
            }
            Butterfly::General([m00, m01, m10, m11]) => {
                let (n00, n01) = (neg_im_vec(m00.im), neg_im_vec(m01.im));
                let (n10, n11) = (neg_im_vec(m10.im), neg_im_vec(m11.im));
                pairs(
                    amps,
                    start,
                    end,
                    stride,
                    run,
                    expand,
                    |a, b| {
                        (
                            complex_mul2(a, m00.re, n00).add(complex_mul2(b, m01.re, n01)),
                            complex_mul2(a, m10.re, n10).add(complex_mul2(b, m11.re, n11)),
                        )
                    },
                    |a, b| (m00 * a + m01 * b, m10 * a + m11 * b),
                )
            }
        }
    }
}

/// One dispatched operation, pre-lowered from a [`FusedOp`] for the hot
/// loop: matrices flattened, operand masks precomputed.
#[derive(Clone)]
enum Kernel {
    /// 2×2 on one qubit (pair update, no gather buffer).
    OneQ { b: Butterfly, q: usize },
    /// Controlled 2×2 block on target `q`: only amplitude pairs whose
    /// control bits are all 1 are touched. `inserts` holds `(bit, value)`
    /// pairs sorted ascending — the target bit with value 0 and every
    /// control bit with value 1 — used to expand a compact counter into
    /// the low index of each active pair.
    Controlled { b: Butterfly, inserts: Vec<(usize, usize)>, q: usize },
    /// Diagonal unitary: one multiply per amplitude.
    Diag { factors: Vec<Complex>, qubits: Vec<usize> },
    /// Dense k-qubit unitary via gather/scatter over base indices.
    /// `qubits` keeps the operand order matching the matrix's bit order
    /// (needed to re-derive `offsets` when the kernel is remapped into a
    /// cache tile); `sorted`/`offsets` are the precomputed traversal form.
    Dense { mat: Vec<Complex>, qubits: Vec<usize>, sorted: Vec<usize>, offsets: Vec<usize> },
}

impl Kernel {
    fn dim(&self) -> usize {
        match self {
            Kernel::OneQ { .. } | Kernel::Controlled { .. } => 2,
            Kernel::Diag { factors, .. } => factors.len(),
            Kernel::Dense { offsets, .. } => offsets.len(),
        }
    }

    /// Bit mask of every state-index bit this kernel touches or reads.
    fn bits(&self) -> usize {
        match self {
            Kernel::OneQ { q, .. } => 1usize << q,
            Kernel::Controlled { inserts, q, .. } => {
                inserts.iter().fold(1usize << q, |m, &(bit, _)| m | (1usize << bit))
            }
            Kernel::Diag { qubits, .. } | Kernel::Dense { qubits, .. } => {
                qubits.iter().fold(0usize, |m, &q| m | (1usize << q))
            }
        }
    }

    /// Rewrites every qubit-bit index through `pos` (global bit → position
    /// inside a cache tile). `pos` is strictly monotonic over the bits this
    /// kernel uses, so sorted invariants (`inserts`, `sorted`) survive.
    fn remap(&self, pos: &dyn Fn(usize) -> usize) -> Kernel {
        match self {
            Kernel::OneQ { b, q } => Kernel::OneQ { b: b.clone(), q: pos(*q) },
            Kernel::Controlled { b, inserts, q } => Kernel::Controlled {
                b: b.clone(),
                inserts: inserts.iter().map(|&(bit, value)| (pos(bit), value)).collect(),
                q: pos(*q),
            },
            Kernel::Diag { factors, qubits } => Kernel::Diag {
                factors: factors.clone(),
                qubits: qubits.iter().map(|&q| pos(q)).collect(),
            },
            Kernel::Dense { mat, qubits, .. } => {
                let local: Vec<usize> = qubits.iter().map(|&q| pos(q)).collect();
                let (sorted, offsets) = dense_layout(&local);
                Kernel::Dense { mat: mat.clone(), qubits: local, sorted, offsets }
            }
        }
    }

    /// Number of independent work units for a state of `len` amplitudes.
    fn unit_count(&self, len: usize, chunk_len: usize) -> usize {
        let (work, unit) = match self {
            Kernel::OneQ { .. } => (len >> 1, (chunk_len >> 1).max(1)),
            Kernel::Controlled { inserts, .. } => {
                let k = inserts.len();
                ((len >> k).max(1), (chunk_len >> k).max(1))
            }
            Kernel::Diag { .. } => (len, chunk_len),
            Kernel::Dense { offsets, .. } => {
                let k = offsets.len().trailing_zeros() as usize;
                (len >> k, (chunk_len >> k).max(1))
            }
        };
        work.div_ceil(unit).max(1)
    }

    /// Applies work unit `unit` of this kernel.
    ///
    /// # Safety
    ///
    /// Callers must guarantee that (a) `amps` points to a live allocation
    /// of `len` amplitudes, (b) no two concurrent calls pass the same
    /// `(kernel, unit)` pair, and (c) all calls for one kernel complete
    /// before any call for the next kernel starts (the barrier in
    /// [`apply_kernels`]). Distinct units of one kernel touch disjoint
    /// index sets: unit ranges partition the pair/base/index space, and the
    /// bit-insertion expansion of a base index is injective.
    unsafe fn apply_unit(
        &self,
        amps: &RawAmps,
        len: usize,
        chunk_len: usize,
        unit: usize,
        simd: bool,
        scratch: &mut [Complex],
    ) {
        match self {
            Kernel::OneQ { b, q } => {
                let stride = 1usize << q;
                let half = len >> 1;
                let unit_len = (chunk_len >> 1).max(1);
                let start = unit * unit_len;
                let end = (start + unit_len).min(half);
                // Insert a 0 bit at position q to get the low pair index;
                // the low `q` bits pass through, so `expand` is contiguous
                // over aligned runs of `stride` counter values.
                b.sweep(amps, start, end, stride, stride, simd, |p| {
                    ((p >> q) << (q + 1)) | (p & (stride - 1))
                });
            }
            Kernel::Controlled { b, inserts, q } => {
                let stride = 1usize << q;
                let count = (len >> inserts.len()).max(1);
                let unit_len = (chunk_len >> inserts.len()).max(1);
                let start = unit * unit_len;
                let end = (start + unit_len).min(count);
                // Bits below the lowest inserted bit pass through, so
                // `expand` is contiguous over runs of that length.
                let run = 1usize << inserts[0].0;
                // Expand the compact counter: insert the target bit as 0
                // and every control bit as 1, lowest position first.
                b.sweep(amps, start, end, stride, run, simd, |p| {
                    let mut lo = p;
                    for &(bit, value) in inserts {
                        lo = ((lo >> bit) << (bit + 1))
                            | (lo & ((1usize << bit) - 1))
                            | (value << bit);
                    }
                    lo
                });
            }
            Kernel::Diag { factors, qubits } => {
                let start = unit * chunk_len;
                let end = (start + chunk_len).min(len);
                if !simd {
                    for idx in start..end {
                        let mut f = 0usize;
                        for (t, &q) in qubits.iter().enumerate() {
                            f |= ((idx >> q) & 1) << t;
                        }
                        amps.write(idx, amps.read(idx) * factors[f]);
                    }
                    return;
                }
                // The factor index only depends on bits ≥ the lowest
                // operand qubit: hoist the factor over each aligned run
                // and stream the run through the lanes. `amp * f` is
                // reproduced exactly by `complex_mul2`.
                let run = qubits.iter().min().map_or(usize::MAX, |&q| 1usize << q);
                let mut idx = start;
                while idx < end {
                    let run_end =
                        if run == usize::MAX { end } else { ((idx | (run - 1)) + 1).min(end) };
                    let mut f = 0usize;
                    for (t, &q) in qubits.iter().enumerate() {
                        f |= ((idx >> q) & 1) << t;
                    }
                    let factor = factors[f];
                    let weights = neg_im_vec(factor.im);
                    let mut i = idx;
                    while i + 2 <= run_end {
                        amps.store2(i, complex_mul2(amps.load2(i), factor.re, weights));
                        i += 2;
                    }
                    while i < run_end {
                        amps.write(i, amps.read(i) * factor);
                        i += 1;
                    }
                    idx = run_end;
                }
            }
            Kernel::Dense { mat, sorted, offsets, .. } => {
                let dim = offsets.len();
                let k = dim.trailing_zeros() as usize;
                let bases = len >> k;
                let unit_len = (chunk_len >> k).max(1);
                let start = unit * unit_len;
                let end = (start + unit_len).min(bases);
                for b in start..end {
                    let mut base = b;
                    for &q in sorted {
                        let low = base & ((1usize << q) - 1);
                        base = ((base >> q) << (q + 1)) | low;
                    }
                    for (j, slot) in scratch[..dim].iter_mut().enumerate() {
                        *slot = amps.read(base | offsets[j]);
                    }
                    if simd {
                        // Two output rows share one pass over the gathered
                        // column; per-row accumulation order matches the
                        // scalar loop exactly (`dim` is even: k ≥ 2).
                        let mut j = 0;
                        while j + 2 <= dim {
                            let r0 = &mat[j * dim..(j + 1) * dim];
                            let r1 = &mat[(j + 1) * dim..(j + 2) * dim];
                            let mut acc = F64x4([0.0; 4]);
                            for (c, amp) in scratch[..dim].iter().enumerate() {
                                let (m0, m1) = (r0[c], r1[c]);
                                let s = F64x4([amp.re, amp.im, amp.re, amp.im]);
                                let re = F64x4([m0.re, m0.re, m1.re, m1.re]);
                                let im = F64x4([-m0.im, m0.im, -m1.im, m1.im]);
                                acc = acc.add(s.mul(re).add(s.swap_pairs().mul(im)));
                            }
                            amps.write(base | offsets[j], Complex::new(acc.0[0], acc.0[1]));
                            amps.write(base | offsets[j + 1], Complex::new(acc.0[2], acc.0[3]));
                            j += 2;
                        }
                    } else {
                        for (j, &offset) in offsets.iter().enumerate() {
                            let mut acc = Complex::ZERO;
                            let row = &mat[j * dim..(j + 1) * dim];
                            for (value, amp) in row.iter().zip(scratch[..dim].iter()) {
                                acc += *value * *amp;
                            }
                            amps.write(base | offset, acc);
                        }
                    }
                }
            }
        }
    }
}

/// Shared mutable view of the amplitude array for scoped workers.
///
/// Soundness rests on the disjointness contract documented on
/// [`Kernel::apply_unit`]; the scope join guarantees no worker outlives
/// the borrow.
struct RawAmps {
    ptr: *mut Complex,
}

unsafe impl Send for RawAmps {}
unsafe impl Sync for RawAmps {}

impl RawAmps {
    #[inline]
    unsafe fn read(&self, i: usize) -> Complex {
        *self.ptr.add(i)
    }

    #[inline]
    unsafe fn write(&self, i: usize, v: Complex) {
        *self.ptr.add(i) = v;
    }

    /// Loads amplitudes `i`, `i + 1` as `[re₀, im₀, re₁, im₁]` lanes.
    /// Built from field reads — no layout assumption on `Complex`.
    #[inline(always)]
    unsafe fn load2(&self, i: usize) -> F64x4 {
        let a = self.read(i);
        let b = self.read(i + 1);
        F64x4([a.re, a.im, b.re, b.im])
    }

    /// Stores `[re₀, im₀, re₁, im₁]` lanes back to amplitudes `i`, `i + 1`.
    #[inline(always)]
    unsafe fn store2(&self, i: usize, v: F64x4) {
        self.write(i, Complex::new(v.0[0], v.0[1]));
        self.write(i + 1, Complex::new(v.0[2], v.0[3]));
    }
}

/// Lowers a fused program into kernels over a state whose qubit `q` lives
/// at bit `q + shift` (`shift`/`conjugate` support the density-matrix
/// two-sided application). Errors on instructions a pure-state sweep
/// cannot execute.
fn lower_program(
    program: &FusedProgram,
    shift: usize,
    conjugate: bool,
    kernels: &mut Vec<Kernel>,
) -> Result<()> {
    let maybe_conj = |c: Complex| if conjugate { c.conj() } else { c };
    for op in &program.ops {
        match op {
            FusedOp::Diagonal { factors, qubits, .. } => {
                kernels.push(Kernel::Diag {
                    factors: factors.iter().map(|&f| maybe_conj(f)).collect(),
                    qubits: qubits.iter().map(|&q| q + shift).collect(),
                });
            }
            FusedOp::Unitary { matrix, qubits, .. } => {
                kernels.push(gate_kernel(matrix, qubits, shift, conjugate));
            }
            // A fusion group kept as its member gate list: lower each
            // member to its specialized kernel, in program order. The
            // cache-blocked executor then applies the whole run per tile —
            // one memory pass — without ever materializing the dense
            // merged matrix. (For the conjugated density-matrix column
            // side this order is still correct: applying conj(g₁), then
            // conj(g₂), … on the column bits computes ρ·g₁†·g₂†… = ρU†.)
            FusedOp::Group { insts, .. } => {
                for inst in insts {
                    let gate = inst.as_gate().expect("fusion groups hold plain gates");
                    kernels.push(gate_kernel(&gate.matrix(), &inst.qubits, shift, conjugate));
                }
            }
            FusedOp::Passthrough(inst) => match &inst.op {
                Operation::Gate(g) if inst.condition.is_none() => {
                    kernels.push(gate_kernel(&g.matrix(), &inst.qubits, shift, conjugate));
                }
                Operation::Barrier => {}
                other => {
                    return Err(AerError::UnsupportedInstruction {
                        name: other.name().to_owned(),
                        simulator: "parallel statevector kernels",
                    })
                }
            },
        }
    }
    Ok(())
}

/// Lowers one unitary into the best kernel shape for it: single-qubit
/// butterfly, controlled block (skips the amplitudes the gate provably
/// leaves fixed), or the general gather/scatter kernel.
fn gate_kernel(matrix: &Matrix, qubits: &[usize], shift: usize, conjugate: bool) -> Kernel {
    let maybe_conj = |c: Complex| if conjugate { c.conj() } else { c };
    if qubits.len() == 1 {
        return Kernel::OneQ {
            b: Butterfly::classify([
                maybe_conj(matrix[(0, 0)]),
                maybe_conj(matrix[(0, 1)]),
                maybe_conj(matrix[(1, 0)]),
                maybe_conj(matrix[(1, 1)]),
            ]),
            q: qubits[0] + shift,
        };
    }
    if let Some((t, block)) = controlled_form(matrix) {
        let mut inserts: Vec<(usize, usize)> =
            qubits.iter().enumerate().map(|(pos, &q)| (q + shift, usize::from(pos != t))).collect();
        inserts.sort_unstable();
        return Kernel::Controlled {
            b: Butterfly::classify([
                maybe_conj(block[0]),
                maybe_conj(block[1]),
                maybe_conj(block[2]),
                maybe_conj(block[3]),
            ]),
            inserts,
            q: qubits[t] + shift,
        };
    }
    dense_kernel(matrix, qubits, shift, conjugate)
}

fn dense_kernel(matrix: &Matrix, qubits: &[usize], shift: usize, conjugate: bool) -> Kernel {
    let shifted: Vec<usize> = qubits.iter().map(|&q| q + shift).collect();
    let (sorted, offsets) = dense_layout(&shifted);
    let mat = matrix.as_slice().iter().map(|&c| if conjugate { c.conj() } else { c }).collect();
    Kernel::Dense { mat, qubits: shifted, sorted, offsets }
}

/// Precomputes the traversal form of a dense kernel over `qubits` (operand
/// order = matrix bit order): the sorted bit list used to expand base
/// indices, and the `2^k` index offsets of the gathered block.
fn dense_layout(qubits: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let dim = 1usize << qubits.len();
    let mut offsets = vec![0usize; dim];
    for (j, offset) in offsets.iter_mut().enumerate() {
        for (t, &q) in qubits.iter().enumerate() {
            if (j >> t) & 1 == 1 {
                *offset |= 1 << q;
            }
        }
    }
    let mut sorted = qubits.to_vec();
    sorted.sort_unstable();
    (sorted, offsets)
}

/// One phase of a planned kernel pass. Consecutive kernels whose qubit-bit
/// union fits in a chunk-sized tile are applied *per tile* (every kernel of
/// the phase runs over one cache-resident tile before the next tile is
/// touched), turning k full-state sweeps into one. Kernels that cannot be
/// tiled keep the legacy one-kernel-per-pass schedule.
enum PhasePlan {
    /// Legacy schedule: kernel `i` with its own work-unit split.
    Direct(usize),
    /// All union bits below the chunk boundary: tiles are the contiguous
    /// `chunk_len` slices of the state, and the kernels' global bit
    /// indices are valid as slice-local indices unchanged.
    Slices { range: Range<usize> },
    /// Union includes bits at or above the chunk boundary: each tile is
    /// gathered into a scratch block (strided by `spread`), the bit-wise
    /// remapped `local` kernels run on it as a miniature state, and the
    /// block is scattered back.
    Tiles { bits: Vec<usize>, spread: Vec<usize>, local: Vec<Kernel> },
}

impl PhasePlan {
    /// Number of independent work units in this phase.
    fn unit_count(&self, kernels: &[Kernel], len: usize, chunk_len: usize) -> usize {
        match self {
            PhasePlan::Direct(i) => kernels[*i].unit_count(len, chunk_len),
            PhasePlan::Slices { .. } => len / chunk_len,
            PhasePlan::Tiles { bits, .. } => len >> bits.len(),
        }
    }

    /// Applies work unit `unit` of this phase.
    ///
    /// # Safety
    ///
    /// Same contract as [`Kernel::apply_unit`], lifted to phases: distinct
    /// units touch disjoint index sets (slices and tiles partition the
    /// state; every kernel of the phase only moves amplitude within one
    /// tile because its bit mask is a subset of the tile bits), and all
    /// units of one phase must complete before the next phase starts.
    #[allow(clippy::too_many_arguments)]
    unsafe fn apply_unit(
        &self,
        kernels: &[Kernel],
        amps: &RawAmps,
        len: usize,
        chunk_len: usize,
        unit: usize,
        simd: bool,
        scratch: &mut [Complex],
        tile: &mut [Complex],
    ) {
        match self {
            PhasePlan::Direct(i) => {
                kernels[*i].apply_unit(amps, len, chunk_len, unit, simd, scratch);
            }
            PhasePlan::Slices { range } => {
                let slice = RawAmps { ptr: amps.ptr.add(unit * chunk_len) };
                for kernel in &kernels[range.clone()] {
                    // One unit covers the whole slice for every kernel
                    // shape when `len == chunk_len`.
                    kernel.apply_unit(&slice, chunk_len, chunk_len, 0, simd, scratch);
                }
            }
            PhasePlan::Tiles { bits, spread, local } => {
                let tile_len = 1usize << bits.len();
                // Insert a 0 at each tile bit (ascending) to get the base
                // index of tile `unit` — the bit-insertion expansion used
                // by the controlled kernel.
                let mut base = unit;
                for &b in bits {
                    base = ((base >> b) << (b + 1)) | (base & ((1usize << b) - 1));
                }
                let block = &mut tile[..tile_len];
                for (j, slot) in block.iter_mut().enumerate() {
                    *slot = amps.read(base | spread[j]);
                }
                let raw = RawAmps { ptr: block.as_mut_ptr() };
                for kernel in local {
                    kernel.apply_unit(&raw, tile_len, tile_len, 0, simd, scratch);
                }
                for (j, slot) in block.iter().enumerate() {
                    amps.write(base | spread[j], *slot);
                }
            }
        }
    }
}

/// Greedily groups consecutive kernels into cache-blocked phases: a phase
/// grows while the union of kernel bit masks stays within `chunk_qubits`
/// bits. Only multi-kernel groups are blocked (a lone kernel gains nothing
/// from a tile pass), and blocking is skipped entirely for single-chunk
/// states or with SIMD/blocking disabled — reproducing the legacy
/// kernel-at-a-time schedule exactly.
fn plan_phases(kernels: &[Kernel], len: usize, chunk_len: usize, simd: bool) -> Vec<PhasePlan> {
    if !simd || len <= chunk_len {
        return (0..kernels.len()).map(PhasePlan::Direct).collect();
    }
    let chunk_qubits = chunk_len.trailing_zeros() as usize;
    let n_bits = len.trailing_zeros() as usize;
    let mut plans = Vec::new();
    let flush = |plans: &mut Vec<PhasePlan>, start: usize, end: usize, mask: usize| {
        match end.saturating_sub(start) {
            0 => {}
            1 => plans.push(PhasePlan::Direct(start)),
            _ if mask < chunk_len => plans.push(PhasePlan::Slices { range: start..end }),
            _ => {
                // Tile bits: the union mask, padded with the lowest free
                // bits up to a full chunk so gathers read long contiguous
                // runs and the tile amortizes its gather/scatter cost.
                let mut bits: Vec<usize> = (0..n_bits).filter(|&b| (mask >> b) & 1 == 1).collect();
                let mut pad = 0usize;
                while bits.len() < chunk_qubits && pad < n_bits {
                    if (mask >> pad) & 1 == 0 {
                        bits.push(pad);
                    }
                    pad += 1;
                }
                bits.sort_unstable();
                let pos =
                    |q: usize| bits.iter().position(|&b| b == q).expect("kernel bit inside tile");
                let local: Vec<Kernel> =
                    kernels[start..end].iter().map(|k| k.remap(&pos)).collect();
                let tile_len = 1usize << bits.len();
                let mut spread = vec![0usize; tile_len];
                for (j, s) in spread.iter_mut().enumerate() {
                    for (t, &b) in bits.iter().enumerate() {
                        if (j >> t) & 1 == 1 {
                            *s |= 1usize << b;
                        }
                    }
                }
                plans.push(PhasePlan::Tiles { bits, spread, local });
            }
        }
    };
    let mut start = 0usize;
    let mut mask = 0usize;
    for (i, kernel) in kernels.iter().enumerate() {
        let kmask = kernel.bits();
        if (kmask.count_ones() as usize) > chunk_qubits {
            // Wider than a tile (tiny test chunks): legacy schedule.
            flush(&mut plans, start, i, mask);
            plans.push(PhasePlan::Direct(i));
            start = i + 1;
            mask = 0;
            continue;
        }
        if start == i || ((mask | kmask).count_ones() as usize) <= chunk_qubits {
            mask |= kmask;
        } else {
            flush(&mut plans, start, i, mask);
            start = i;
            mask = kmask;
        }
    }
    flush(&mut plans, start, kernels.len(), mask);
    plans
}

/// Applies a kernel list to the amplitude array, serially or with a
/// scoped barrier-synchronized worker pool, after planning the kernels
/// into cache-blocked phases.
fn apply_kernels(state: &mut [Complex], kernels: &[Kernel], config: &ParallelConfig) -> ExecStats {
    let len = state.len();
    let chunk_len = config.chunk_len();
    let threads = config.effective_threads(len);
    let simd = config.simd;
    let scratch_dim = kernels.iter().map(Kernel::dim).max().unwrap_or(1);
    let mut stats = ExecStats::default();
    if kernels.is_empty() {
        return stats;
    }
    let plans = plan_phases(kernels, len, chunk_len, simd);
    let tile_len =
        if plans.iter().any(|p| matches!(p, PhasePlan::Tiles { .. })) { chunk_len } else { 0 };

    let amps = RawAmps { ptr: state.as_mut_ptr() };
    if threads <= 1 {
        let start = Instant::now();
        let mut scratch = vec![Complex::ZERO; scratch_dim];
        let mut tile = vec![Complex::ZERO; tile_len];
        for plan in &plans {
            for unit in 0..plan.unit_count(kernels, len, chunk_len) {
                // SAFETY: single-threaded — units run one at a time over
                // the exclusively borrowed `state`.
                unsafe {
                    plan.apply_unit(
                        kernels,
                        &amps,
                        len,
                        chunk_len,
                        unit,
                        simd,
                        &mut scratch,
                        &mut tile,
                    )
                };
                stats.chunks += 1;
            }
        }
        stats.worker_seconds = start.elapsed().as_secs_f64();
    } else {
        let barrier = Barrier::new(threads);
        let amps_ref = &amps;
        let barrier_ref = &barrier;
        let plans_ref = &plans;
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    scope.spawn(move || {
                        let start = Instant::now();
                        let mut scratch = vec![Complex::ZERO; scratch_dim];
                        let mut tile = vec![Complex::ZERO; tile_len];
                        let mut chunks = 0u64;
                        for plan in plans_ref {
                            let units = plan.unit_count(kernels, len, chunk_len);
                            let mut unit = w;
                            while unit < units {
                                // SAFETY: workers claim units in stride
                                // `threads` starting at distinct offsets,
                                // so no unit is processed twice; units of
                                // one phase touch disjoint index sets; the
                                // barrier below orders one phase's writes
                                // before the next phase's reads.
                                unsafe {
                                    plan.apply_unit(
                                        kernels,
                                        amps_ref,
                                        len,
                                        chunk_len,
                                        unit,
                                        simd,
                                        &mut scratch,
                                        &mut tile,
                                    )
                                };
                                chunks += 1;
                                unit += threads;
                            }
                            barrier_ref.wait();
                        }
                        (chunks, start.elapsed().as_secs_f64())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect::<Vec<_>>()
        });
        for (chunks, seconds) in results {
            stats.chunks += chunks;
            stats.worker_seconds += seconds;
            qukit_obs::observe_duration(
                "qukit_aer_parallel_worker_seconds",
                std::time::Duration::from_secs_f64(seconds),
            );
        }
    }
    let mut kinds = [0u64; 4];
    for kernel in kernels {
        match kernel {
            Kernel::OneQ { .. } => kinds[0] += 1,
            Kernel::Controlled { .. } => kinds[1] += 1,
            Kernel::Diag { .. } => kinds[2] += 1,
            Kernel::Dense { .. } => kinds[3] += 1,
        }
    }
    qukit_obs::counter_add("qukit_aer_kernel_oneq_total", kinds[0]);
    qukit_obs::counter_add("qukit_aer_kernel_controlled_total", kinds[1]);
    qukit_obs::counter_add("qukit_aer_kernel_diag_total", kinds[2]);
    qukit_obs::counter_add("qukit_aer_kernel_dense_total", kinds[3]);
    let blocked = plans.iter().filter(|plan| !matches!(plan, PhasePlan::Direct(_))).count() as u64;
    if blocked > 0 {
        let tiles: u64 = plans
            .iter()
            .filter(|plan| !matches!(plan, PhasePlan::Direct(_)))
            .map(|plan| plan.unit_count(kernels, len, chunk_len) as u64)
            .sum();
        qukit_obs::counter_add("qukit_aer_blocked_phases_total", blocked);
        qukit_obs::counter_add("qukit_aer_blocked_tiles_total", tiles);
    }
    qukit_obs::counter_add("qukit_aer_parallel_chunks_total", stats.chunks);
    stats
}

/// Fuses and applies a stream of plain gate instructions to the state,
/// recording per-gate tallies. Returns the lowered op count.
pub(crate) fn evolve_fused(
    amps: &mut [Complex],
    gates: &[Instruction],
    config: &ParallelConfig,
    tally: &mut GateTally,
) -> Result<usize> {
    let program = fuse(gates, &config.fusion_config());
    let mut kernels = Vec::with_capacity(program.ops.len());
    lower_program(&program, 0, false, &mut kernels)?;
    let dim = amps.len() as u64;
    for op in &program.ops {
        tally.record_n(op.gates_fused() as u64, dim);
    }
    apply_kernels(amps, &kernels, config);
    Ok(kernels.len())
}

/// Applies a fused program two-sidedly to a flat density matrix
/// (`ρ → UρU†`): `U` on the row-bit copy of each qubit and `conj(U)` on
/// the column bits, reusing the same chunked kernels on the `4^n` array.
pub(crate) fn evolve_fused_density(
    rho_flat: &mut [Complex],
    gates: &[Instruction],
    num_qubits: usize,
    config: &ParallelConfig,
    tally: &mut GateTally,
) -> Result<()> {
    let program = fuse(gates, &config.fusion_config());
    let mut kernels = Vec::with_capacity(program.ops.len() * 2);
    let entries = rho_flat.len() as u64;
    for op in &program.ops {
        tally.record_n(op.gates_fused() as u64, entries);
    }
    // Row side: qubit q lives at bit q + n of the flat index.
    lower_program(&program, num_qubits, false, &mut kernels)?;
    // Column side: conj(U) on bits 0..n.
    lower_program(&program, 0, true, &mut kernels)?;
    apply_kernels(rho_flat, &kernels, config);
    Ok(())
}

/// Builds the probability CDF of a terminal state (one prefix-sum pass).
pub(crate) fn probability_cdf(amps: &[Complex]) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(amps.len());
    let mut acc = 0.0f64;
    for amp in amps {
        acc += amp.norm_sqr();
        cdf.push(acc);
    }
    cdf
}

/// Draws `shots` basis-state indices from a terminal distribution in
/// fixed-size batches (binary search over the CDF). Batch `b` uses an RNG
/// stream seeded from `(seed, b)`, and batch boundaries are independent of
/// the worker count, so the returned indices are identical for any
/// `threads` value.
pub(crate) fn sample_indices(cdf: &[f64], shots: usize, seed: u64, threads: usize) -> Vec<usize> {
    let mut out = vec![0usize; shots];
    let fill = |batch: usize, slots: &mut [usize]| {
        let mut rng = StdRng::seed_from_u64(batch_seed(seed, batch as u64));
        for slot in slots {
            let r: f64 = rng.gen();
            *slot = cdf.partition_point(|&c| c <= r).min(cdf.len() - 1);
        }
    };
    let batches = shots.div_ceil(SHOT_BATCH).max(1);
    if threads <= 1 || batches <= 1 {
        for (batch, slots) in out.chunks_mut(SHOT_BATCH).enumerate() {
            fill(batch, slots);
        }
    } else {
        std::thread::scope(|scope| {
            for (batch, slots) in out.chunks_mut(SHOT_BATCH).enumerate() {
                scope.spawn(move || fill(batch, slots));
            }
        });
    }
    out
}

/// Exact final-state simulator for unitary circuits running the fused
/// chunked kernels — the parallel counterpart of
/// [`crate::simulator::StatevectorSimulator`], and the fifth engine in the
/// conformance differential set.
///
/// # Examples
///
/// ```
/// use qukit_aer::parallel::{ParallelConfig, ParallelStatevectorSimulator};
/// use qukit_terra::circuit::QuantumCircuit;
///
/// # fn main() -> Result<(), qukit_aer::error::AerError> {
/// let mut ghz = QuantumCircuit::new(3);
/// ghz.h(0).unwrap();
/// ghz.cx(0, 1).unwrap();
/// ghz.cx(1, 2).unwrap();
/// let sim = ParallelStatevectorSimulator::with_config(ParallelConfig::with_threads(2));
/// let state = sim.run(&ghz)?;
/// assert!((state.amplitude(0).norm_sqr() - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelStatevectorSimulator {
    config: ParallelConfig,
}

impl ParallelStatevectorSimulator {
    /// Creates the simulator with the environment-derived configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the simulator with an explicit configuration.
    pub fn with_config(config: ParallelConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ParallelConfig {
        &self.config
    }

    /// Computes the exact final state of a unitary circuit.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::simulator::StatevectorSimulator::run`].
    pub fn run(&self, circuit: &QuantumCircuit) -> Result<Statevector> {
        if circuit.num_qubits() > 30 {
            return Err(AerError::TooManyQubits { requested: circuit.num_qubits(), max: 30 });
        }
        let _span = qukit_obs::span!(
            "aer.parallel_statevector_run",
            qubits = circuit.num_qubits(),
            threads = self.config.threads,
            fusion = if self.config.fusion { "on" } else { "off" },
            simd = if self.config.simd { "on" } else { "off" },
        );
        qukit_obs::counter_inc("qukit_aer_parallel_runs_total");
        let mut gates: Vec<Instruction> = Vec::new();
        for inst in circuit.instructions() {
            match &inst.op {
                Operation::Gate(_) if inst.condition.is_none() => gates.push(inst.clone()),
                Operation::Barrier => {}
                other => {
                    return Err(AerError::UnsupportedInstruction {
                        name: other.name().to_owned(),
                        simulator: "parallel statevector simulator",
                    })
                }
            }
        }
        let mut amps = vec![Complex::ZERO; 1usize << circuit.num_qubits()];
        amps[0] = Complex::ONE;
        let mut tally = GateTally::default();
        evolve_fused(&mut amps, &gates, &self.config, &mut tally)?;
        tally.flush("qukit_aer_statevector_gates_total");
        let mut state = Statevector::from_amplitudes(amps);
        state.apply_global_phase(circuit.global_phase());
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qukit_terra::gate::Gate;

    fn random_gates(seed: u64, n: usize, count: usize) -> Vec<Instruction> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gates = Vec::new();
        for _ in 0..count {
            let q = rng.gen_range(0..n);
            let gate = match rng.gen_range(0..6u32) {
                0 => Instruction::gate(Gate::H, vec![q]),
                1 => Instruction::gate(Gate::T, vec![q]),
                2 => Instruction::gate(Gate::Rx(0.3), vec![q]),
                3 => Instruction::gate(Gate::Rz(1.1), vec![q]),
                4 => {
                    let p = (q + 1) % n;
                    Instruction::gate(Gate::CX, vec![q, p])
                }
                _ => {
                    let p = (q + 1) % n;
                    Instruction::gate(Gate::Cp(0.7), vec![q, p])
                }
            };
            gates.push(gate);
        }
        gates
    }

    fn reference_state(gates: &[Instruction], n: usize) -> Vec<Complex> {
        let mut state = vec![Complex::ZERO; 1 << n];
        state[0] = Complex::ONE;
        for inst in gates {
            qukit_terra::reference::apply_gate(
                &mut state,
                &inst.as_gate().unwrap().matrix(),
                &inst.qubits,
            );
        }
        state
    }

    #[test]
    fn fused_parallel_matches_reference_across_configs() {
        for n in [2usize, 3, 5] {
            let gates = random_gates(17 + n as u64, n, 40);
            let expect = reference_state(&gates, n);
            for threads in [1usize, 2, 4] {
                for fusion in [false, true] {
                    for simd in [false, true] {
                        // Tiny chunks force real multi-chunk scheduling even
                        // on small states.
                        let config = ParallelConfig { threads, chunk_qubits: 2, fusion, simd };
                        let mut amps = vec![Complex::ZERO; 1 << n];
                        amps[0] = Complex::ONE;
                        let mut tally = GateTally::default();
                        evolve_fused(&mut amps, &gates, &config, &mut tally).unwrap();
                        for (a, e) in amps.iter().zip(&expect) {
                            assert!(
                                (*a - *e).norm() < 1e-10,
                                "threads={threads} fusion={fusion} simd={simd}: {a:?} vs {e:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn controlled_kernel_matches_reference_for_multi_control_gates() {
        let n = 4;
        let mut gates =
            vec![Instruction::gate(Gate::H, vec![0]), Instruction::gate(Gate::H, vec![1])];
        gates.push(Instruction::gate(Gate::Ccx, vec![0, 1, 3]));
        gates.push(Instruction::gate(Gate::Crx(0.9), vec![3, 2]));
        gates.push(Instruction::gate(Gate::CX, vec![2, 0]));
        let expect = reference_state(&gates, n);
        for threads in [1usize, 3] {
            for fusion in [false, true] {
                let config = ParallelConfig { threads, chunk_qubits: 1, fusion, simd: true };
                let mut amps = vec![Complex::ZERO; 1 << n];
                amps[0] = Complex::ONE;
                let mut tally = GateTally::default();
                evolve_fused(&mut amps, &gates, &config, &mut tally).unwrap();
                for (a, e) in amps.iter().zip(&expect) {
                    assert!(
                        (*a - *e).norm() < 1e-12,
                        "threads={threads} fusion={fusion}: {a:?} vs {e:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_execution_is_bit_identical_across_thread_chunk_and_simd_configs() {
        let n = 6;
        let gates = random_gates(5, n, 60);
        let run = |threads, chunk_qubits, simd| {
            let config = ParallelConfig { threads, chunk_qubits, fusion: true, simd };
            let mut amps = vec![Complex::ZERO; 1 << n];
            amps[0] = Complex::ONE;
            let mut tally = GateTally::default();
            evolve_fused(&mut amps, &gates, &config, &mut tally).unwrap();
            amps
        };
        // SIMD, scalar, blocked and unblocked schedules all perform the
        // same IEEE operations per amplitude, so every configuration must
        // agree bit for bit — the contract QUKIT_SIMD=off relies on.
        let baseline = run(1, 2, false);
        for (threads, chunk) in [(2, 2), (4, 3), (8, 1), (3, 4), (1, 3)] {
            for simd in [false, true] {
                assert_eq!(
                    run(threads, chunk, simd),
                    baseline,
                    "threads={threads} chunk={chunk} simd={simd}"
                );
            }
        }
    }

    #[test]
    fn highest_index_target_matches_reference_at_every_chunk_size() {
        // Target qubit = highest index: the butterfly stride equals half
        // the state, the worst case for chunked scheduling and the case
        // the tile planner must remap correctly.
        for n in [1usize, 2, 4, 6] {
            let mut gates = Vec::new();
            for q in 0..n {
                gates.push(Instruction::gate(Gate::H, vec![q]));
            }
            gates.push(Instruction::gate(Gate::Rx(0.37), vec![n - 1]));
            gates.push(Instruction::gate(Gate::T, vec![n - 1]));
            if n >= 2 {
                gates.push(Instruction::gate(Gate::CX, vec![n - 1, 0]));
                gates.push(Instruction::gate(Gate::Cp(0.9), vec![0, n - 1]));
            }
            let expect = reference_state(&gates, n);
            for chunk_qubits in 1..=6usize {
                for simd in [false, true] {
                    let config = ParallelConfig { threads: 2, chunk_qubits, fusion: true, simd };
                    let mut amps = vec![Complex::ZERO; 1 << n];
                    amps[0] = Complex::ONE;
                    let mut tally = GateTally::default();
                    evolve_fused(&mut amps, &gates, &config, &mut tally).unwrap();
                    for (a, e) in amps.iter().zip(&expect) {
                        assert!(
                            (*a - *e).norm() < 1e-12,
                            "n={n} chunk={chunk_qubits} simd={simd}: {a:?} vs {e:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fusion_group_spanning_chunk_boundary_matches_reference() {
        // H(0)·CX(0,4)·H(4) straddles chunk_qubits=2: the group's bit mask
        // {0, 4} exceeds the chunk boundary, forcing the Tiles plan with
        // gather/scatter remapping.
        let n = 5;
        let gates = vec![
            Instruction::gate(Gate::H, vec![0]),
            Instruction::gate(Gate::CX, vec![0, 4]),
            Instruction::gate(Gate::H, vec![4]),
            Instruction::gate(Gate::Rz(0.25), vec![4]),
            Instruction::gate(Gate::Cp(1.3), vec![0, 4]),
        ];
        let expect = reference_state(&gates, n);
        for threads in [1usize, 2] {
            for simd in [false, true] {
                let config = ParallelConfig { threads, chunk_qubits: 2, fusion: true, simd };
                let mut amps = vec![Complex::ZERO; 1 << n];
                amps[0] = Complex::ONE;
                let mut tally = GateTally::default();
                evolve_fused(&mut amps, &gates, &config, &mut tally).unwrap();
                for (a, e) in amps.iter().zip(&expect) {
                    assert!(
                        (*a - *e).norm() < 1e-12,
                        "threads={threads} simd={simd}: {a:?} vs {e:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn one_qubit_state_runs_through_every_engine_config() {
        let gates = vec![
            Instruction::gate(Gate::H, vec![0]),
            Instruction::gate(Gate::T, vec![0]),
            Instruction::gate(Gate::Rx(0.8), vec![0]),
        ];
        let expect = reference_state(&gates, 1);
        for chunk_qubits in [1usize, 2, 4] {
            for simd in [false, true] {
                let config = ParallelConfig { threads: 4, chunk_qubits, fusion: true, simd };
                let mut amps = vec![Complex::ZERO; 2];
                amps[0] = Complex::ONE;
                let mut tally = GateTally::default();
                evolve_fused(&mut amps, &gates, &config, &mut tally).unwrap();
                for (a, e) in amps.iter().zip(&expect) {
                    assert!(
                        (*a - *e).norm() < 1e-12,
                        "chunk={chunk_qubits} simd={simd}: {a:?} vs {e:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_sampling_is_thread_count_invariant() {
        // A skewed 3-qubit distribution.
        let mut amps = vec![Complex::ZERO; 8];
        amps[0] = Complex::new(0.8, 0.0);
        amps[5] = Complex::new(0.6, 0.0);
        let cdf = probability_cdf(&amps);
        let one = sample_indices(&cdf, 3000, 42, 1);
        for threads in [2usize, 4, 8] {
            assert_eq!(sample_indices(&cdf, 3000, 42, threads), one);
        }
        let frac = one.iter().filter(|&&i| i == 0).count() as f64 / one.len() as f64;
        assert!((frac - 0.64).abs() < 0.05, "P(0)≈0.64, got {frac}");
        assert!(one.iter().all(|&i| i == 0 || i == 5));
    }

    #[test]
    fn sampling_matches_distribution_edges() {
        // All mass on the last state: every draw must clamp there.
        let mut amps = vec![Complex::ZERO; 4];
        amps[3] = Complex::ONE;
        let cdf = probability_cdf(&amps);
        assert!(sample_indices(&cdf, 100, 7, 2).iter().all(|&i| i == 3));
    }

    #[test]
    fn density_two_sided_application_matches_pure_state_outer_product() {
        let n = 3;
        let gates = random_gates(23, n, 25);
        // Independent oracle: for a pure initial state and unitary gates,
        // ρ = |ψ⟩⟨ψ| with ψ from the reference kernel.
        let psi = reference_state(&gates, n);
        // Fused two-sided flat path.
        let dim = 1usize << n;
        let mut flat = vec![Complex::ZERO; dim * dim];
        flat[0] = Complex::ONE;
        let config = ParallelConfig { threads: 2, chunk_qubits: 2, fusion: true, simd: true };
        let mut tally = GateTally::default();
        evolve_fused_density(&mut flat, &gates, n, &config, &mut tally).unwrap();
        for i in 0..dim {
            for j in 0..dim {
                let e = psi[i] * psi[j].conj();
                let g = flat[i * dim + j];
                assert!((g - e).norm() < 1e-9, "rho[{i},{j}]: {g:?} vs {e:?}");
            }
        }
    }

    #[test]
    fn simulator_rejects_measurement_and_width() {
        let mut circ = QuantumCircuit::with_size(1, 1);
        circ.measure(0, 0).unwrap();
        assert!(ParallelStatevectorSimulator::new().run(&circ).is_err());
    }

    #[test]
    fn config_parsing_helpers() {
        assert_eq!(parse_bool_flag("1"), Some(true));
        assert_eq!(parse_bool_flag(" ON "), Some(true));
        assert_eq!(parse_bool_flag("false"), Some(false));
        assert_eq!(parse_bool_flag("banana"), None);
        assert!(!ParallelConfig::serial().is_active());
        assert!(ParallelConfig::with_threads(4).is_active());
        assert!(
            ParallelConfig { threads: 1, chunk_qubits: 4, fusion: true, simd: true }.is_active()
        );
        // One chunk ⇒ serial execution regardless of requested threads.
        assert_eq!(ParallelConfig::with_threads(8).effective_threads(16), 1);
        assert_eq!(
            ParallelConfig { threads: 8, chunk_qubits: 2, fusion: true, simd: true }
                .effective_threads(64),
            8
        );
    }
}
