//! Density-matrix simulation.
//!
//! [`DensityMatrix`] evolves the full mixed state `ρ`, applying unitary
//! gates as `UρU†` and noise channels *exactly* as `Σ_i K_i ρ K_i†` — the
//! deterministic counterpart to the trajectory sampling in
//! [`crate::simulator::QasmSimulator`]. Exponentially more expensive
//! (`4^n` entries), it is the ground truth the stochastic noise tests are
//! validated against.

use crate::error::{AerError, Result};
use crate::noise::NoiseModel;
use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::complex::Complex;
use qukit_terra::instruction::Operation;
use qukit_terra::matrix::Matrix;

const MAX_QUBITS: usize = 12;

/// The density operator of an `n`-qubit register as a `2^n × 2^n` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    num_qubits: usize,
    rho: Matrix,
}

impl DensityMatrix {
    /// The pure state `|0…0⟩⟨0…0|`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` exceeds the dense limit (12).
    pub fn new(num_qubits: usize) -> Self {
        assert!(num_qubits <= MAX_QUBITS, "density matrix limited to {MAX_QUBITS} qubits");
        let dim = 1usize << num_qubits;
        let mut rho = Matrix::zeros(dim, dim);
        rho[(0, 0)] = Complex::ONE;
        Self { num_qubits, rho }
    }

    /// Builds `ρ = |ψ⟩⟨ψ|` from a statevector.
    ///
    /// # Panics
    ///
    /// Panics if the state length is not a power of two.
    pub fn from_statevector(state: &[Complex]) -> Self {
        assert!(state.len().is_power_of_two(), "state length must be a power of two");
        let num_qubits = state.len().trailing_zeros() as usize;
        let dim = state.len();
        let mut rho = Matrix::zeros(dim, dim);
        for i in 0..dim {
            for j in 0..dim {
                rho[(i, j)] = state[i] * state[j].conj();
            }
        }
        Self { num_qubits, rho }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Borrows the underlying matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.rho
    }

    /// The trace of `ρ` (1 for a normalized state).
    pub fn trace(&self) -> f64 {
        self.rho.trace().re
    }

    /// Purity `Tr(ρ²)`: 1 for pure states, `1/2^n` for maximally mixed.
    pub fn purity(&self) -> f64 {
        self.rho.matmul(&self.rho).trace().re
    }

    /// Applies a unitary on the given qubits: `ρ → UρU†`.
    ///
    /// Treats the row-major `4^n` array as a `2n`-qubit statevector
    /// (column index = bits `0..n`, row index = bits `n..2n`) and applies
    /// `U` to the row bits and `conj(U)` to the column bits — two
    /// `O(4^n · 2^k)` sweeps instead of the `O(8^n)` embed-and-matmul.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn apply_unitary(&mut self, matrix: &Matrix, qubits: &[usize]) {
        let n = self.num_qubits;
        assert_eq!(matrix.rows(), 1usize << qubits.len(), "operator dimension mismatch");
        let row_qubits: Vec<usize> = qubits.iter().map(|&q| q + n).collect();
        let flat = self.rho.as_mut_slice();
        qukit_terra::reference::apply_gate(flat, matrix, &row_qubits);
        qukit_terra::reference::apply_gate(flat, &matrix.conj(), qubits);
    }

    /// Applies a Kraus channel exactly: `ρ → Σ_i K_i ρ K_i†`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn apply_kraus(&mut self, kraus: &[Matrix], qubits: &[usize]) {
        let dim = 1usize << self.num_qubits;
        let mut next = Matrix::zeros(dim, dim);
        for k in kraus {
            let full = embed(k, qubits, self.num_qubits);
            next = next.add(&full.matmul(&self.rho).matmul(&full.dagger()));
        }
        self.rho = next;
    }

    /// Probability of measuring qubit `q` as 1 (from the diagonal).
    pub fn probability_one(&self, q: usize) -> f64 {
        let mask = 1usize << q;
        (0..self.rho.rows()).filter(|idx| idx & mask != 0).map(|idx| self.rho[(idx, idx)].re).sum()
    }

    /// The diagonal of `ρ`: computational-basis probabilities.
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.rho.rows()).map(|i| self.rho[(i, i)].re).collect()
    }

    /// Expectation value of a Hermitian observable: `Tr(Oρ)`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn expectation(&self, observable: &Matrix) -> f64 {
        observable.matmul(&self.rho).trace().re
    }
}

/// Embeds a k-qubit operator on `qubits` into the full `n`-qubit space.
fn embed(matrix: &Matrix, qubits: &[usize], num_qubits: usize) -> Matrix {
    let dim = 1usize << num_qubits;
    let k = qubits.len();
    let kdim = 1usize << k;
    assert_eq!(matrix.rows(), kdim, "operator dimension mismatch");
    let mut full = Matrix::zeros(dim, dim);
    let op_mask: usize = qubits.iter().map(|&q| 1usize << q).sum();
    for row in 0..dim {
        let rest = row & !op_mask;
        let mut sub_row = 0usize;
        for (t, &q) in qubits.iter().enumerate() {
            if (row >> q) & 1 == 1 {
                sub_row |= 1 << t;
            }
        }
        for sub_col in 0..kdim {
            let value = matrix[(sub_row, sub_col)];
            if value.is_approx_zero() {
                continue;
            }
            let mut col = rest;
            for (t, &q) in qubits.iter().enumerate() {
                if (sub_col >> t) & 1 == 1 {
                    col |= 1 << q;
                }
            }
            full[(row, col)] = value;
        }
    }
    full
}

/// Exact noisy simulator over density matrices.
///
/// # Examples
///
/// ```
/// use qukit_aer::density::DensityMatrixSimulator;
/// use qukit_aer::noise::NoiseModel;
/// use qukit_terra::circuit::QuantumCircuit;
///
/// # fn main() -> Result<(), qukit_aer::error::AerError> {
/// let mut bell = QuantumCircuit::new(2);
/// bell.h(0).unwrap();
/// bell.cx(0, 1).unwrap();
/// let rho = DensityMatrixSimulator::new()
///     .with_noise(NoiseModel::depolarizing(0.01, 0.02, 0.0))
///     .run(&bell)?;
/// assert!(rho.purity() < 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct DensityMatrixSimulator {
    noise: Option<NoiseModel>,
    parallel: crate::parallel::ParallelConfig,
}

impl DensityMatrixSimulator {
    /// Creates an ideal simulator (parallel configuration from the
    /// environment, like [`crate::simulator::QasmSimulator`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a noise model (builder style).
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = Some(noise);
        self
    }

    /// Sets the parallel/fusion configuration (builder style).
    pub fn with_parallel(mut self, parallel: crate::parallel::ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// Evolves the density matrix through the circuit (gates and barriers
    /// only).
    ///
    /// # Errors
    ///
    /// Returns an error for measurement/reset/conditional instructions or
    /// circuits beyond the dense limit.
    pub fn run(&self, circuit: &QuantumCircuit) -> Result<DensityMatrix> {
        if circuit.num_qubits() > MAX_QUBITS {
            return Err(AerError::TooManyQubits {
                requested: circuit.num_qubits(),
                max: MAX_QUBITS,
            });
        }
        let _span = qukit_obs::span!("aer.density_run", qubits = circuit.num_qubits());
        qukit_obs::counter_inc("qukit_aer_density_runs_total");
        let ideal = self.noise.as_ref().is_none_or(NoiseModel::is_ideal);
        if self.parallel.is_active() && ideal {
            return self.run_fused(circuit);
        }
        let mut rho = DensityMatrix::new(circuit.num_qubits());
        // Each gate rewrites the full `2^n × 2^n` operator.
        let entries = 1u64 << (2 * circuit.num_qubits());
        let mut tally = crate::simulator::GateTally::default();
        for inst in circuit.instructions() {
            match &inst.op {
                Operation::Gate(g) if inst.condition.is_none() => {
                    rho.apply_unitary(&g.matrix(), &inst.qubits);
                    tally.record(entries);
                    if let Some(noise) = &self.noise {
                        if let Some(error) = noise.error_for(g.name(), &inst.qubits) {
                            if error.num_qubits() == inst.qubits.len() {
                                rho.apply_kraus(error.kraus_operators(), &inst.qubits);
                            }
                        }
                    }
                }
                Operation::Barrier => {}
                other => {
                    return Err(AerError::UnsupportedInstruction {
                        name: other.name().to_owned(),
                        simulator: "density matrix simulator",
                    })
                }
            }
        }
        tally.flush("qukit_aer_density_gates_total");
        Ok(rho)
    }

    /// Noiseless fast path: fuse the gate stream once and run the chunked
    /// two-sided kernels over the flat `4^n` array.
    fn run_fused(&self, circuit: &QuantumCircuit) -> Result<DensityMatrix> {
        let mut gates = Vec::new();
        for inst in circuit.instructions() {
            match &inst.op {
                Operation::Gate(_) if inst.condition.is_none() => gates.push(inst.clone()),
                Operation::Barrier => {}
                other => {
                    return Err(AerError::UnsupportedInstruction {
                        name: other.name().to_owned(),
                        simulator: "density matrix simulator",
                    })
                }
            }
        }
        let n = circuit.num_qubits();
        let mut rho = DensityMatrix::new(n);
        let mut tally = crate::simulator::GateTally::default();
        crate::parallel::evolve_fused_density(
            rho.rho.as_mut_slice(),
            &gates,
            n,
            &self.parallel,
            &mut tally,
        )?;
        tally.flush("qukit_aer_density_gates_total");
        Ok(rho)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::QuantumError;
    use crate::statevector::Statevector;
    use qukit_terra::gate::Gate;

    #[test]
    fn pure_state_has_unit_purity() {
        let rho = DensityMatrix::new(2);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_statevector_matches_direct_evolution() {
        let mut sv = Statevector::new(2);
        sv.apply_gate(Gate::H, &[0]);
        sv.apply_gate(Gate::CX, &[0, 1]);
        let rho_sv = DensityMatrix::from_statevector(sv.amplitudes());

        let mut rho = DensityMatrix::new(2);
        rho.apply_unitary(&Gate::H.matrix(), &[0]);
        rho.apply_unitary(&Gate::CX.matrix(), &[0, 1]);
        assert!(rho.matrix().approx_eq(rho_sv.matrix()));
    }

    #[test]
    fn embedding_on_nonadjacent_qubits() {
        // X on qubit 2 of 3: |000> -> |100>.
        let mut rho = DensityMatrix::new(3);
        rho.apply_unitary(&Gate::X.matrix(), &[2]);
        let probs = rho.probabilities();
        assert!((probs[0b100] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn full_depolarizing_gives_maximally_mixed() {
        let mut rho = DensityMatrix::new(1);
        rho.apply_unitary(&Gate::H.matrix(), &[0]);
        let channel = QuantumError::depolarizing(1.0, 1);
        rho.apply_kraus(channel.kraus_operators(), &[0]);
        assert!((rho.purity() - 0.5).abs() < 1e-9, "purity {}", rho.purity());
        assert!((rho.probability_one(0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn amplitude_damping_exact_population() {
        let gamma = 0.3;
        let mut rho = DensityMatrix::new(1);
        rho.apply_unitary(&Gate::X.matrix(), &[0]);
        let channel = QuantumError::amplitude_damping(gamma);
        rho.apply_kraus(channel.kraus_operators(), &[0]);
        assert!((rho.probability_one(0) - (1.0 - gamma)).abs() < 1e-12);
        // Twice: population (1-γ)².
        rho.apply_kraus(channel.kraus_operators(), &[0]);
        assert!((rho.probability_one(0) - (1.0 - gamma) * (1.0 - gamma)).abs() < 1e-12);
    }

    #[test]
    fn channel_preserves_trace() {
        let mut rho = DensityMatrix::new(2);
        rho.apply_unitary(&Gate::H.matrix(), &[0]);
        rho.apply_unitary(&Gate::CX.matrix(), &[0, 1]);
        for channel in [
            QuantumError::depolarizing(0.2, 1),
            QuantumError::amplitude_damping(0.4),
            QuantumError::phase_damping(0.1),
        ] {
            rho.apply_kraus(channel.kraus_operators(), &[1]);
            assert!((rho.trace() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn simulator_matches_statevector_when_ideal() {
        let circ = qukit_terra::circuit::fig1_circuit();
        let rho = DensityMatrixSimulator::new().run(&circ).unwrap();
        let sv = qukit_terra::reference::statevector(&circ).unwrap();
        let expected = DensityMatrix::from_statevector(&sv);
        assert!(rho.matrix().approx_eq_eps(expected.matrix(), 1e-9));
        assert!((rho.purity() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_bell_purity_drops_and_matches_trajectories() {
        let mut bell = QuantumCircuit::new(2);
        bell.h(0).unwrap();
        bell.cx(0, 1).unwrap();
        let noise = NoiseModel::depolarizing(0.05, 0.1, 0.0);
        let rho = DensityMatrixSimulator::new().with_noise(noise.clone()).run(&bell).unwrap();
        assert!(rho.purity() < 0.999);

        // Trajectory average of |00| population should approach the exact
        // diagonal entry.
        let mut measured = bell.clone();
        let _ = measured.add_creg("c", 2);
        measured.measure(0, 0).unwrap();
        measured.measure(1, 1).unwrap();
        let counts = crate::simulator::QasmSimulator::new()
            .with_seed(10)
            .with_noise(noise)
            .run(&measured, 6000)
            .unwrap();
        let exact_p00 = rho.probabilities()[0];
        let sampled_p00 = counts.probability(0);
        assert!(
            (exact_p00 - sampled_p00).abs() < 0.03,
            "exact {exact_p00} vs sampled {sampled_p00}"
        );
    }

    #[test]
    fn expectation_of_z_observable() {
        let mut rho = DensityMatrix::new(1);
        let z = Gate::Z.matrix();
        assert!((rho.expectation(&z) - 1.0).abs() < 1e-12);
        rho.apply_unitary(&Gate::X.matrix(), &[0]);
        assert!((rho.expectation(&z) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn simulator_rejects_measurement_and_width() {
        let mut circ = QuantumCircuit::with_size(1, 1);
        circ.measure(0, 0).unwrap();
        assert!(DensityMatrixSimulator::new().run(&circ).is_err());
        let wide = QuantumCircuit::new(13);
        assert!(matches!(
            DensityMatrixSimulator::new().run(&wide),
            Err(AerError::TooManyQubits { .. })
        ));
    }
}
