//! # qukit
//!
//! A Rust reproduction of IBM's Qiskit tool chain as described in
//! *"IBM's Qiskit Tool Chain: Working with and Developing for Real Quantum
//! Computers"* (Wille, Van Meter, Naveh — DATE 2019). The stack mirrors
//! the paper's four elements:
//!
//! | paper element | crate | contents |
//! |---|---|---|
//! | Terra | [`qukit_terra`] | circuit IR, OpenQASM 2.0, coupling maps, transpiler |
//! | Aer | [`qukit_aer`] | statevector / unitary / density-matrix simulators, noise |
//! | Aqua | [`qukit_aqua`] | VQE, QAOA, Grover, QFT, QPE, teleportation, … |
//! | Ignis | [`qukit_ignis`] | randomized benchmarking, tomography, mitigation |
//!
//! plus [`qukit_dd`], the decision-diagram simulator the paper showcases
//! as the flagship community contribution (Section V-A / Fig. 3).
//!
//! This crate is the user-facing facade: [`backend`]s (simulators and
//! *fake devices* reproducing the IBM QX coupling constraints and noise),
//! the [`provider`] registry, and the one-call [`execute`] pipeline — the
//! same workflow as the paper's Section IV walkthrough.
//!
//! # Examples
//!
//! The paper's user-perspective flow, end to end:
//!
//! ```
//! use qukit::execute::execute;
//! use qukit::provider::Provider;
//! use qukit_terra::circuit::QuantumCircuit;
//!
//! # fn main() -> Result<(), qukit::error::QukitError> {
//! // Build a circuit (or qasm::parse an OpenQASM 2.0 listing).
//! let mut circ = QuantumCircuit::new(2);
//! circ.h(0).unwrap();
//! circ.cx(0, 1).unwrap();
//!
//! // Simulate first, then "run on the device".
//! let provider = Provider::with_defaults();
//! let sim_counts = execute(&circ, provider.get_backend("qasm_simulator")?, 1024)?;
//! let dev_counts = execute(&circ, provider.get_backend("ibmqx4")?, 1024)?;
//! assert_eq!(sim_counts.total(), dev_counts.total());
//! # Ok(())
//! # }
//! ```

pub mod backend;
pub mod cache;
pub mod error;
pub mod execute;
pub mod fault;
pub mod job;
pub mod journal;
pub mod provider;
pub mod retry;
pub mod scheduler;
pub mod sweep;

pub use backend::{
    Backend, DdSimulatorBackend, FakeDevice, QasmSimulatorBackend, StabilizerBackend,
};
pub use cache::{CacheConfig, CacheHit};
pub use error::{ErrorClass, QukitError};
pub use execute::execute;
pub use fault::{FallbackChain, FaultInjectingBackend, FaultMode};
pub use job::{
    ExecutorConfig, Job, JobEvent, JobExecutor, JobObserver, JobStatus, MetricsJobObserver,
    ObserverSet, RecoveryReport, Session, SubmitOptions, DEFAULT_TENANT,
};
pub use provider::Provider;
pub use retry::RetryPolicy;
pub use scheduler::{Priority, TenantConfig};
pub use sweep::{run_sweep, SweepReport};

// Re-export the component crates under their element names.
pub use qukit_aer as aer;
pub use qukit_aqua as aqua;
pub use qukit_dd as dd;
pub use qukit_ignis as ignis;
pub use qukit_terra as terra;

// Convenience re-exports of the most-used types.
pub use qukit_aer::counts::Counts;
pub use qukit_terra::circuit::QuantumCircuit;
pub use qukit_terra::coupling::CouplingMap;
pub use qukit_terra::gate::Gate;
