//! Fault injection and graceful degradation for backends.
//!
//! Real IBM Q devices fail in ways a local reproduction never would:
//! submissions bounce off a busy queue, devices hang mid-calibration,
//! results occasionally come back garbled. [`FaultInjectingBackend`]
//! reproduces those failure modes *deterministically* so every recovery
//! path of the [job service](crate::job) is testable, and
//! [`FallbackChain`] degrades gracefully across backends the way a user
//! falls back from a specialized simulator to a general one.

use crate::backend::Backend;
use crate::error::{QukitError, Result};
use qukit_aer::counts::Counts;
use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::coupling::CouplingMap;
use std::sync::Mutex;
use std::time::Duration;

/// What a [`FaultInjectingBackend`] does to each `run` call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultMode {
    /// The first `n` calls fail with [`QukitError::Transient`]; later
    /// calls pass through (models a queue that recovers).
    FailTimes(u32),
    /// Every call fails with [`QukitError::Transient`] (a dead device).
    AlwaysFail,
    /// Every call sleeps for the given duration before passing through
    /// (models a hung device; pair with a per-attempt timeout).
    Hang(Duration),
    /// Calls pass through, but the returned histogram is deterministically
    /// corrupted (outcome bits XOR-flipped by a seeded mask) — models
    /// garbled readout without changing the shot total.
    CorruptCounts,
}

/// A decorator that injects seeded, deterministic faults in front of any
/// backend. It keeps the inner backend's name so providers and jobs
/// address it transparently.
///
/// # Examples
///
/// ```
/// use qukit::backend::{Backend, QasmSimulatorBackend};
/// use qukit::fault::{FaultInjectingBackend, FaultMode};
/// use qukit_terra::circuit::QuantumCircuit;
///
/// let flaky = FaultInjectingBackend::new(
///     Box::new(QasmSimulatorBackend::new().with_seed(1)),
///     FaultMode::FailTimes(2),
/// );
/// let mut bell = QuantumCircuit::with_size(2, 2);
/// bell.h(0).unwrap();
/// bell.cx(0, 1).unwrap();
/// bell.measure(0, 0).unwrap();
/// bell.measure(1, 1).unwrap();
/// assert!(flaky.run(&bell, 100).is_err()); // injected
/// assert!(flaky.run(&bell, 100).is_err()); // injected
/// assert_eq!(flaky.run(&bell, 100).unwrap().total(), 100); // recovered
/// ```
pub struct FaultInjectingBackend {
    inner: Box<dyn Backend>,
    mode: FaultMode,
    seed: u64,
    calls: Mutex<u32>,
}

impl FaultInjectingBackend {
    /// Wraps `inner` with the given fault mode (corruption seed 0).
    pub fn new(inner: Box<dyn Backend>, mode: FaultMode) -> Self {
        Self { inner, mode, seed: 0, calls: Mutex::new(0) }
    }

    /// Sets the seed driving [`FaultMode::CorruptCounts`] (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// How many times `run` has been called (injected failures included).
    pub fn calls(&self) -> u32 {
        *self.calls.lock().expect("fault counter lock")
    }

    fn corrupt(&self, counts: Counts) -> Counts {
        let bits = counts.num_clbits().max(1) as u32;
        // A seeded nonzero mask: flips at least one readout bit of every
        // outcome while preserving the shot total.
        let mask = {
            let raw = splitmix64(self.seed) & ((1u64 << bits.min(63)) - 1).max(1);
            if raw == 0 {
                1
            } else {
                raw
            }
        };
        let mut corrupted = Counts::new(counts.num_clbits());
        for (outcome, n) in counts.iter() {
            corrupted.record_n(outcome ^ mask, n);
        }
        corrupted
    }
}

impl Backend for FaultInjectingBackend {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn num_qubits(&self) -> usize {
        self.inner.num_qubits()
    }

    fn coupling_map(&self) -> Option<&CouplingMap> {
        self.inner.coupling_map()
    }

    fn run(&self, circuit: &QuantumCircuit, shots: usize) -> Result<Counts> {
        let call = {
            let mut calls = self.calls.lock().expect("fault counter lock");
            *calls += 1;
            *calls
        };
        match self.mode {
            FaultMode::FailTimes(n) if call <= n => {
                qukit_obs::counter_inc("qukit_core_fault_injections_total");
                Err(QukitError::Transient {
                    msg: format!(
                        "injected fault: call {call} of {n} forced failures on '{}'",
                        self.name()
                    ),
                })
            }
            FaultMode::AlwaysFail => {
                qukit_obs::counter_inc("qukit_core_fault_injections_total");
                Err(QukitError::Transient {
                    msg: format!("injected fault: '{}' is configured to always fail", self.name()),
                })
            }
            FaultMode::Hang(delay) => {
                qukit_obs::counter_inc("qukit_core_fault_injections_total");
                std::thread::sleep(delay);
                self.inner.run(circuit, shots)
            }
            FaultMode::CorruptCounts => {
                qukit_obs::counter_inc("qukit_core_fault_injections_total");
                Ok(self.corrupt(self.inner.run(circuit, shots)?))
            }
            FaultMode::FailTimes(_) => self.inner.run(circuit, shots),
        }
    }

    fn executed_on(&self) -> Option<String> {
        self.inner.executed_on()
    }

    fn set_parallel(&mut self, config: qukit_aer::parallel::ParallelConfig) {
        self.inner.set_parallel(config);
    }

    /// Pass-through faults do not change the success distribution, so
    /// the inner fingerprint stands (the decorator keeps the inner
    /// name, making it the provider-visible identity anyway). Count
    /// corruption *does* change outcomes, so it salts the hash.
    fn fingerprint(&self) -> u64 {
        match self.mode {
            FaultMode::CorruptCounts => self
                .inner
                .fingerprint()
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(splitmix64(self.seed)),
            _ => self.inner.fingerprint(),
        }
    }
}

/// An ordered chain of backends tried left to right: the first success
/// wins, and the backend that served the request is reported through
/// [`Backend::executed_on`] so jobs can record it.
///
/// This models graceful degradation — e.g. `dd_simulator` (fast, but
/// unitary circuits only) falling back to `qasm_simulator` when it
/// rejects a non-unitary instruction.
///
/// # Examples
///
/// ```
/// use qukit::backend::{Backend, DdSimulatorBackend, QasmSimulatorBackend};
/// use qukit::fault::FallbackChain;
/// use qukit_terra::circuit::QuantumCircuit;
///
/// let chain = FallbackChain::new("dd_with_fallback")
///     .then(Box::new(DdSimulatorBackend::new().with_seed(1)))
///     .then(Box::new(QasmSimulatorBackend::new().with_seed(1)));
/// // Reset is non-unitary: the DD simulator rejects it, the chain
/// // transparently degrades to the dense simulator.
/// let mut circ = QuantumCircuit::with_size(1, 1);
/// circ.x(0).unwrap();
/// circ.reset(0).unwrap();
/// circ.measure(0, 0).unwrap();
/// let counts = chain.run(&circ, 50).unwrap();
/// assert_eq!(counts.get("0"), 50);
/// assert_eq!(chain.executed_on().as_deref(), Some("qasm_simulator"));
/// ```
pub struct FallbackChain {
    name: String,
    backends: Vec<Box<dyn Backend>>,
    last_used: Mutex<Option<String>>,
}

impl FallbackChain {
    /// An empty chain with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), backends: Vec::new(), last_used: Mutex::new(None) }
    }

    /// Appends a backend to the chain (builder style).
    pub fn then(mut self, backend: Box<dyn Backend>) -> Self {
        self.backends.push(backend);
        self
    }

    /// The names of the chained backends, in fallback order.
    pub fn members(&self) -> Vec<&str> {
        self.backends.iter().map(|b| b.name()).collect()
    }
}

impl Backend for FallbackChain {
    fn name(&self) -> &str {
        &self.name
    }

    /// The widest member: the chain admits a circuit if any member might.
    fn num_qubits(&self) -> usize {
        self.backends.iter().map(|b| b.num_qubits()).max().unwrap_or(0)
    }

    fn run(&self, circuit: &QuantumCircuit, shots: usize) -> Result<Counts> {
        let mut errors: Vec<String> = Vec::new();
        for backend in &self.backends {
            match backend.run(circuit, shots) {
                Ok(counts) => {
                    let served = backend.executed_on().unwrap_or_else(|| backend.name().to_owned());
                    *self.last_used.lock().expect("fallback lock") = Some(served);
                    return Ok(counts);
                }
                Err(e) => {
                    qukit_obs::counter_inc("qukit_core_fallback_switches_total");
                    errors.push(format!("{}: {e}", backend.name()));
                }
            }
        }
        *self.last_used.lock().expect("fallback lock") = None;
        if self.backends.is_empty() {
            return Err(QukitError::Backend {
                msg: format!("fallback chain '{}' has no backends", self.name),
            });
        }
        // Every member failed. If all failures were transient the whole
        // chain is worth retrying; report it as transient so the retry
        // layer composes with fallback.
        Err(QukitError::Transient {
            msg: format!("all backends in chain '{}' failed: [{}]", self.name, errors.join("; ")),
        })
    }

    fn executed_on(&self) -> Option<String> {
        self.last_used.lock().expect("fallback lock").clone()
    }

    fn set_parallel(&mut self, config: qukit_aer::parallel::ParallelConfig) {
        for backend in &mut self.backends {
            backend.set_parallel(config);
        }
    }
}

/// One step of the SplitMix64 sequence; drives count corruption.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{DdSimulatorBackend, QasmSimulatorBackend, StabilizerBackend};

    fn bell() -> QuantumCircuit {
        let mut circ = QuantumCircuit::with_size(2, 2);
        circ.h(0).unwrap();
        circ.cx(0, 1).unwrap();
        circ.measure(0, 0).unwrap();
        circ.measure(1, 1).unwrap();
        circ
    }

    #[test]
    fn fail_times_recovers_after_n_calls() {
        let flaky = FaultInjectingBackend::new(
            Box::new(QasmSimulatorBackend::new().with_seed(3)),
            FaultMode::FailTimes(2),
        );
        assert_eq!(flaky.name(), "qasm_simulator");
        for _ in 0..2 {
            let err = flaky.run(&bell(), 100).unwrap_err();
            assert!(err.is_retryable(), "injected failure must be transient");
            assert!(err.to_string().contains("injected fault"));
        }
        let counts = flaky.run(&bell(), 100).unwrap();
        assert_eq!(counts.total(), 100);
        assert_eq!(flaky.calls(), 3);
    }

    #[test]
    fn always_fail_never_recovers() {
        let dead = FaultInjectingBackend::new(
            Box::new(QasmSimulatorBackend::new().with_seed(3)),
            FaultMode::AlwaysFail,
        );
        for _ in 0..5 {
            assert!(dead.run(&bell(), 10).is_err());
        }
        assert_eq!(dead.calls(), 5);
    }

    #[test]
    fn corrupt_counts_is_deterministic_and_preserves_total() {
        let backend = || {
            FaultInjectingBackend::new(
                Box::new(QasmSimulatorBackend::new().with_seed(9)),
                FaultMode::CorruptCounts,
            )
            .with_seed(4)
        };
        let clean = QasmSimulatorBackend::new().with_seed(9).run(&bell(), 400).unwrap();
        let a = backend().run(&bell(), 400).unwrap();
        let b = backend().run(&bell(), 400).unwrap();
        assert_eq!(a.total(), 400, "corruption preserves shot totals");
        let outcomes = |c: &Counts| {
            let mut v: Vec<(u64, usize)> = c.iter().collect();
            v.sort_unstable();
            v
        };
        assert_eq!(outcomes(&a), outcomes(&b), "same seed, same corruption");
        assert_ne!(outcomes(&a), outcomes(&clean), "corruption changed the histogram");
    }

    #[test]
    fn hang_mode_delays_then_succeeds() {
        let slow = FaultInjectingBackend::new(
            Box::new(QasmSimulatorBackend::new().with_seed(1)),
            FaultMode::Hang(Duration::from_millis(30)),
        );
        let t0 = std::time::Instant::now();
        let counts = slow.run(&bell(), 50).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(30));
        assert_eq!(counts.total(), 50);
    }

    #[test]
    fn fallback_chain_degrades_to_capable_backend() {
        let chain = FallbackChain::new("sim_chain")
            .then(Box::new(DdSimulatorBackend::new().with_seed(5)))
            .then(Box::new(QasmSimulatorBackend::new().with_seed(5)));
        assert_eq!(chain.members(), vec!["dd_simulator", "qasm_simulator"]);
        // A unitary circuit is served by the first member.
        let counts = chain.run(&bell(), 200).unwrap();
        assert_eq!(counts.total(), 200);
        assert_eq!(chain.executed_on().as_deref(), Some("dd_simulator"));
        // Reset is non-unitary: the DD simulator rejects it, qasm serves it.
        let mut non_unitary = QuantumCircuit::with_size(1, 1);
        non_unitary.x(0).unwrap();
        non_unitary.reset(0).unwrap();
        non_unitary.measure(0, 0).unwrap();
        let counts = chain.run(&non_unitary, 80).unwrap();
        assert_eq!(counts.get("0"), 80);
        assert_eq!(chain.executed_on().as_deref(), Some("qasm_simulator"));
    }

    #[test]
    fn fallback_chain_reports_transient_when_all_members_fail() {
        // A T gate is non-Clifford and non-unitary-free for neither: the
        // stabilizer backend rejects it, and the injected dead backend
        // rejects everything — the chain exhausts and reports transient.
        let chain = FallbackChain::new("doomed")
            .then(Box::new(FaultInjectingBackend::new(
                Box::new(QasmSimulatorBackend::new()),
                FaultMode::AlwaysFail,
            )))
            .then(Box::new(StabilizerBackend::new()));
        let mut t_circ = QuantumCircuit::with_size(1, 1);
        t_circ.t(0).unwrap();
        t_circ.measure(0, 0).unwrap();
        let err = chain.run(&t_circ, 10).unwrap_err();
        assert!(err.is_retryable());
        assert!(err.to_string().contains("doomed"));
        assert!(chain.executed_on().is_none());
    }

    #[test]
    fn empty_chain_is_a_backend_error() {
        let chain = FallbackChain::new("empty");
        assert_eq!(chain.num_qubits(), 0);
        let err = chain.run(&bell(), 1).unwrap_err();
        assert!(!err.is_retryable());
        assert!(err.to_string().contains("no backends"));
    }
}
