//! The unified toolchain error type.

use std::fmt;

/// Any error produced by the end-to-end pipeline.
#[derive(Debug)]
pub enum QukitError {
    /// Circuit construction, OpenQASM or transpilation error.
    Terra(qukit_terra::error::TerraError),
    /// Simulator error.
    Aer(qukit_aer::error::AerError),
    /// Decision-diagram simulator error.
    Dd(qukit_dd::simulator::DdError),
    /// Backend-level error (unknown backend, capability mismatch).
    Backend {
        /// Human-readable description.
        msg: String,
    },
}

impl fmt::Display for QukitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QukitError::Terra(e) => write!(f, "{e}"),
            QukitError::Aer(e) => write!(f, "{e}"),
            QukitError::Dd(e) => write!(f, "{e}"),
            QukitError::Backend { msg } => write!(f, "backend error: {msg}"),
        }
    }
}

impl std::error::Error for QukitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QukitError::Terra(e) => Some(e),
            QukitError::Aer(e) => Some(e),
            QukitError::Dd(e) => Some(e),
            QukitError::Backend { .. } => None,
        }
    }
}

impl From<qukit_terra::error::TerraError> for QukitError {
    fn from(e: qukit_terra::error::TerraError) -> Self {
        QukitError::Terra(e)
    }
}

impl From<qukit_aer::error::AerError> for QukitError {
    fn from(e: qukit_aer::error::AerError) -> Self {
        QukitError::Aer(e)
    }
}

impl From<qukit_dd::simulator::DdError> for QukitError {
    fn from(e: qukit_dd::simulator::DdError) -> Self {
        QukitError::Dd(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, QukitError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let terra = qukit_terra::error::TerraError::Transpile { msg: "boom".into() };
        let e: QukitError = terra.into();
        assert!(e.to_string().contains("boom"));
        assert!(std::error::Error::source(&e).is_some());
        let b = QukitError::Backend { msg: "no such backend".into() };
        assert!(b.to_string().contains("no such backend"));
        assert!(std::error::Error::source(&b).is_none());
    }
}
