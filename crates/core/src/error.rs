//! The unified toolchain error type.

use std::fmt;

/// Any error produced by the end-to-end pipeline.
#[derive(Debug)]
pub enum QukitError {
    /// Circuit construction, OpenQASM or transpilation error.
    Terra(qukit_terra::error::TerraError),
    /// Simulator error.
    Aer(qukit_aer::error::AerError),
    /// Decision-diagram simulator error.
    Dd(qukit_dd::simulator::DdError),
    /// Backend-level error (unknown backend, capability mismatch).
    Backend {
        /// Human-readable description.
        msg: String,
    },
    /// A transient backend failure (queue hiccup, injected fault, device
    /// momentarily offline). The only [retryable](QukitError::is_retryable)
    /// kind: resubmitting the identical circuit may succeed.
    Transient {
        /// Human-readable description.
        msg: String,
    },
    /// Invalid submission rejected up front (zero shots, circuit wider
    /// than the backend) — failing before the backend runs keeps the
    /// error independent of backend-specific behavior.
    InvalidInput {
        /// Human-readable description.
        msg: String,
    },
    /// Job-service error (queue full, job cancelled or timed out,
    /// executor shut down).
    Job {
        /// Human-readable description.
        msg: String,
    },
    /// A [`Job::result`](crate::job::Job::result) wait deadline elapsed
    /// while the job was still `Queued`/`Running`. Distinct from
    /// [`QukitError::Job`] so callers can poll again instead of
    /// misclassifying a slow job as a failed one.
    WaitTimeout {
        /// The job still in flight.
        job_id: u64,
        /// The job's status when the deadline elapsed.
        status: String,
        /// How long the caller waited.
        waited: std::time::Duration,
    },
}

/// Whether an error is worth retrying with the same inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// The operation may succeed if repeated (transient backend failure).
    Retryable,
    /// Repeating the identical submission cannot succeed (circuit too
    /// wide, unsupported instruction, invalid input, …).
    Fatal,
}

impl QukitError {
    /// Classifies the error for retry purposes.
    ///
    /// Only [`QukitError::Transient`] is retryable: every other kind is
    /// a property of the submission itself (bad circuit, bad arguments,
    /// capability mismatch) and will fail identically on any retry.
    pub fn class(&self) -> ErrorClass {
        match self {
            QukitError::Transient { .. } => ErrorClass::Retryable,
            _ => ErrorClass::Fatal,
        }
    }

    /// `true` when a retry of the identical submission may succeed.
    pub fn is_retryable(&self) -> bool {
        self.class() == ErrorClass::Retryable
    }

    /// `true` for a [`QukitError::WaitTimeout`]: the *wait* gave up,
    /// not the job — poll again with a longer deadline.
    pub fn is_wait_timeout(&self) -> bool {
        matches!(self, QukitError::WaitTimeout { .. })
    }
}

impl fmt::Display for QukitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QukitError::Terra(e) => write!(f, "{e}"),
            QukitError::Aer(e) => write!(f, "{e}"),
            QukitError::Dd(e) => write!(f, "{e}"),
            QukitError::Backend { msg } => write!(f, "backend error: {msg}"),
            QukitError::Transient { msg } => write!(f, "transient backend error: {msg}"),
            QukitError::InvalidInput { msg } => write!(f, "invalid input: {msg}"),
            QukitError::Job { msg } => write!(f, "job error: {msg}"),
            QukitError::WaitTimeout { job_id, status, waited } => {
                write!(f, "job {job_id} still {status} after waiting {waited:?}")
            }
        }
    }
}

impl std::error::Error for QukitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QukitError::Terra(e) => Some(e),
            QukitError::Aer(e) => Some(e),
            QukitError::Dd(e) => Some(e),
            QukitError::Backend { .. }
            | QukitError::Transient { .. }
            | QukitError::InvalidInput { .. }
            | QukitError::Job { .. }
            | QukitError::WaitTimeout { .. } => None,
        }
    }
}

impl From<qukit_terra::error::TerraError> for QukitError {
    fn from(e: qukit_terra::error::TerraError) -> Self {
        QukitError::Terra(e)
    }
}

impl From<qukit_aer::error::AerError> for QukitError {
    fn from(e: qukit_aer::error::AerError) -> Self {
        QukitError::Aer(e)
    }
}

impl From<qukit_dd::simulator::DdError> for QukitError {
    fn from(e: qukit_dd::simulator::DdError) -> Self {
        QukitError::Dd(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, QukitError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let terra = qukit_terra::error::TerraError::Transpile { msg: "boom".into() };
        let e: QukitError = terra.into();
        assert!(e.to_string().contains("boom"));
        assert!(std::error::Error::source(&e).is_some());
        let b = QukitError::Backend { msg: "no such backend".into() };
        assert!(b.to_string().contains("no such backend"));
        assert!(std::error::Error::source(&b).is_none());
    }

    #[test]
    fn only_transient_errors_are_retryable() {
        let transient = QukitError::Transient { msg: "device busy".into() };
        assert_eq!(transient.class(), ErrorClass::Retryable);
        assert!(transient.is_retryable());
        let fatal: Vec<QukitError> = vec![
            QukitError::Backend { msg: "x".into() },
            QukitError::InvalidInput { msg: "x".into() },
            QukitError::Job { msg: "x".into() },
            qukit_terra::error::TerraError::Transpile { msg: "x".into() }.into(),
        ];
        for e in fatal {
            assert_eq!(e.class(), ErrorClass::Fatal, "{e} must be fatal");
            assert!(!e.is_retryable());
        }
    }

    #[test]
    fn wait_timeout_is_typed_and_keeps_the_wait_vocabulary() {
        let e = QukitError::WaitTimeout {
            job_id: 7,
            status: "RUNNING".into(),
            waited: std::time::Duration::from_millis(5),
        };
        assert!(e.is_wait_timeout());
        assert!(!e.is_retryable(), "the wait timed out, not a transient backend");
        assert!(e.to_string().contains("after waiting"), "{e}");
        assert!(!QukitError::Job { msg: "x".into() }.is_wait_timeout());
    }
}
