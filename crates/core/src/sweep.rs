//! Transpile-once batched parameter sweeps.
//!
//! The Estimator-primitive traffic shape — one ansatz, many angle points —
//! is pathological for the per-job pipeline: every binding would pay
//! validation, journaling, admission, transpilation and a fresh
//! statevector allocation for a circuit that differs from its siblings
//! only in a handful of rotation angles. [`run_sweep`] collapses that
//! overhead:
//!
//! 1. the template (with sentinel angles, see
//!    [`qukit_terra::parameter`]) is transpiled **once** through
//!    [`Backend::prepare_circuit`] — one transpile-cache entry for the
//!    whole sweep;
//! 2. the transpiled instruction stream is scanned for surviving
//!    sentinels and validated end to end against a direct per-binding
//!    transpile of the first binding — if any pass folded a sentinel
//!    away, the sweep silently falls back to per-binding preparation;
//! 3. all bound circuits run through [`Backend::run_batch`], which the
//!    statevector backend overrides to reuse one amplitude buffer across
//!    bindings.
//!
//! Results are bit-identical to submitting each binding as its own job
//! against the same seeded backend: the validation step guarantees the
//! prepared circuits match, and `run_batch`'s contract guarantees the
//! execution matches.

use crate::backend::Backend;
use crate::error::Result;
use crate::execute::validate_submission;
use qukit_aer::counts::Counts;
use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::parameter::{patch_sentinels, scan_sentinels, ParameterizedCircuit};

/// The outcome of a sweep: per-binding histograms plus how the circuits
/// were prepared.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// One counts histogram per binding, in input order.
    pub counts: Vec<Counts>,
    /// `true` when the template was transpiled once and angle-patched per
    /// binding; `false` when the sweep fell back to per-binding
    /// preparation (a transpiler pass destroyed the sentinels).
    pub transpiled_once: bool,
}

/// Runs `bindings` of `template` on `backend`, transpiling the template
/// once when the transpiled form can be angle-patched safely.
///
/// Terminal measurements are added to the template when missing, exactly
/// like [`execute`](crate::execute::execute).
///
/// # Errors
///
/// Propagates validation errors (zero shots, circuit wider than the
/// backend), binding errors (wrong value-vector length), transpilation
/// and execution errors.
pub fn run_sweep(
    backend: &dyn Backend,
    template: &ParameterizedCircuit,
    bindings: &[Vec<f64>],
    shots: usize,
) -> Result<SweepReport> {
    let _span = qukit_obs::span!(
        "core.run_sweep",
        backend = backend.name(),
        bindings = bindings.len(),
        params = template.num_parameters()
    );
    validate_submission(template.template(), backend, shots)?;
    if bindings.is_empty() {
        return Ok(SweepReport { counts: Vec::new(), transpiled_once: false });
    }

    // Measure-all must be appended before binding so instruction indices
    // recorded in the template stay valid (appending at the end never
    // disturbs earlier sites).
    let measured;
    let template = if template.template().has_measurements() {
        template
    } else {
        let mut with_measure = template.clone();
        with_measure.circuit_mut().measure_all();
        measured = with_measure;
        &measured
    };

    let circuits = prepare_bindings(backend, template, bindings)?;
    qukit_obs::counter_add_with(
        "qukit_core_sweep_bindings_total",
        &[("backend", backend.name())],
        bindings.len() as u64,
    );
    if circuits.transpiled_once {
        qukit_obs::counter_inc("qukit_core_sweep_template_reuse_total");
    } else {
        qukit_obs::counter_inc("qukit_core_sweep_fallback_total");
    }
    let counts = backend.run_batch(&circuits.circuits, shots)?;
    Ok(SweepReport { counts, transpiled_once: circuits.transpiled_once })
}

struct PreparedSweep {
    circuits: Vec<QuantumCircuit>,
    transpiled_once: bool,
}

/// Prepares one executable circuit per binding, reusing a single
/// transpilation of the template whenever that provably reproduces the
/// per-binding result.
fn prepare_bindings(
    backend: &dyn Backend,
    template: &ParameterizedCircuit,
    bindings: &[Vec<f64>],
) -> Result<PreparedSweep> {
    let prepared = backend.prepare_circuit(template.template())?;
    let sites = scan_sentinels(&prepared, template.num_parameters());

    // Validate the scan end to end on the first binding: patching the
    // prepared template must reproduce what the backend would prepare for
    // that binding directly. Any pass that folded, split or re-derived a
    // sentinel angle makes the comparison fail and forces the fallback.
    let first_direct = backend.prepare_circuit(&template.bind(&bindings[0])?)?;
    let first_patched = patch_sentinels(&prepared, &sites, &bindings[0])?;
    if first_patched != first_direct {
        let circuits = bindings
            .iter()
            .map(|values| backend.prepare_circuit(&template.bind(values)?))
            .collect::<Result<Vec<_>>>()?;
        return Ok(PreparedSweep { circuits, transpiled_once: false });
    }

    let mut circuits = Vec::with_capacity(bindings.len());
    circuits.push(first_patched);
    for values in &bindings[1..] {
        circuits.push(patch_sentinels(&prepared, &sites, values)?);
    }
    Ok(PreparedSweep { circuits, transpiled_once: true })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{FakeDevice, QasmSimulatorBackend};
    use qukit_aer::parallel::ParallelConfig;

    fn two_local(num_qubits: usize) -> (ParameterizedCircuit, usize) {
        let mut pc = ParameterizedCircuit::new(num_qubits);
        let params: Vec<_> = (0..2 * num_qubits).map(|i| pc.parameter(format!("t{i}"))).collect();
        for (q, &param) in params.iter().take(num_qubits).enumerate() {
            pc.ry(param, q).unwrap();
        }
        for q in 0..num_qubits - 1 {
            pc.circuit_mut().cx(q, q + 1).unwrap();
        }
        for (q, &param) in params.iter().skip(num_qubits).enumerate() {
            pc.ry(param, q).unwrap();
        }
        (pc, 2 * num_qubits)
    }

    fn grid(num_params: usize, points: usize) -> Vec<Vec<f64>> {
        (0..points)
            .map(|p| (0..num_params).map(|i| 0.2 + 0.05 * (p * num_params + i) as f64).collect())
            .collect()
    }

    #[test]
    fn sweep_matches_per_binding_execution_on_simulator() {
        let (pc, num_params) = two_local(3);
        let bindings = grid(num_params, 6);
        let backend = QasmSimulatorBackend::new().with_seed(11).with_parallel(ParallelConfig {
            threads: 2,
            chunk_qubits: 2,
            fusion: true,
            simd: true,
        });
        let report = run_sweep(&backend, &pc, &bindings, 256).unwrap();
        assert!(report.transpiled_once, "simulator backends never disturb sentinels");
        assert_eq!(report.counts.len(), bindings.len());
        for (values, counts) in bindings.iter().zip(&report.counts) {
            let mut bound = pc.bind(values).unwrap();
            bound.measure_all();
            let direct = backend.run(&bound, 256).unwrap();
            assert_eq!(counts, &direct, "sweep must be bit-identical to per-binding runs");
        }
    }

    #[test]
    fn sweep_transpiles_once_on_device_backends() {
        // At optimization level 1 the device transpiler copies rotation
        // angles verbatim, so the sentinel validation holds and the
        // template is transpiled exactly once.
        let (pc, num_params) = two_local(3);
        let bindings = grid(num_params, 4);
        let backend = FakeDevice::ibmqx4()
            .with_noise(qukit_aer::noise::NoiseModel::new())
            .with_seed(5)
            .with_opt_level(1);
        let report = run_sweep(&backend, &pc, &bindings, 200).unwrap();
        assert!(report.transpiled_once, "opt level 1 must preserve sentinel angles");
        assert_eq!(report.counts.len(), bindings.len());
        for (values, counts) in bindings.iter().zip(&report.counts) {
            let mut bound = pc.bind(values).unwrap();
            bound.measure_all();
            let direct = backend.run(&bound, 200).unwrap();
            assert_eq!(counts, &direct);
        }
    }

    #[test]
    fn sweep_falls_back_when_optimizer_rewrites_angles() {
        // The default optimization level (2) re-derives 1q angles, which
        // destroys the sentinels; the sweep must detect that via the
        // first-binding validation, fall back to per-binding preparation,
        // and still produce bit-identical results.
        let (pc, num_params) = two_local(3);
        let bindings = grid(num_params, 4);
        let backend =
            FakeDevice::ibmqx4().with_noise(qukit_aer::noise::NoiseModel::new()).with_seed(5);
        let report = run_sweep(&backend, &pc, &bindings, 200).unwrap();
        assert!(!report.transpiled_once, "opt level 2 folds sentinel angles");
        assert_eq!(report.counts.len(), bindings.len());
        for (values, counts) in bindings.iter().zip(&report.counts) {
            let mut bound = pc.bind(values).unwrap();
            bound.measure_all();
            let direct = backend.run(&bound, 200).unwrap();
            assert_eq!(counts, &direct);
        }
    }

    #[test]
    fn empty_sweep_returns_no_counts() {
        let (pc, _) = two_local(2);
        let report = run_sweep(&QasmSimulatorBackend::new(), &pc, &[], 100).unwrap();
        assert!(report.counts.is_empty());
    }

    #[test]
    fn zero_shots_is_rejected() {
        let (pc, num_params) = two_local(2);
        let err = run_sweep(&QasmSimulatorBackend::new(), &pc, &grid(num_params, 1), 0);
        assert!(err.is_err());
    }
}
