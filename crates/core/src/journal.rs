//! The persistent write-ahead job journal.
//!
//! Real quantum cloud services cannot lose submissions: a process
//! restart between "accepted" and "executed" must not silently drop a
//! user's job. This module gives the executor that guarantee with the
//! classic write-ahead-log recipe scaled down to a single append-only
//! file, `jobs.journal`, inside a user-chosen `--journal-dir`.
//!
//! # Record format
//!
//! One record per line, self-checksummed so a torn tail (the process
//! died mid-`write`) is detected and dropped rather than misparsed:
//!
//! ```text
//! QJ1 <crc32-hex> <single-line JSON payload>\n
//! ```
//!
//! The CRC-32 (IEEE polynomial) covers the JSON payload bytes. Two
//! payload kinds exist:
//!
//! - `{"kind":"submitted","job":N,"tenant":T,"priority":P,"backend":B,
//!   "shots":S,"qasm":Q[,"key":K]}` — appended *before* the job enters
//!   the queue; the circuit travels as its OpenQASM 2.0 emission.
//! - `{"kind":"terminal","job":N,"status":ST[,"error":E]
//!   [,"clbits":C,"counts":{...}][,"executed_on":X]}` — appended when
//!   the job reaches a terminal state; `Done` records carry the full
//!   counts histogram so recovery can serve the result without
//!   re-running.
//!
//! # Replay rules
//!
//! On startup the executor reads the journal front to back. A record
//! that fails the checksum or does not parse ends the scan (everything
//! after a torn write is untrusted); the count of dropped bytes'
//! records is reported. A `submitted` record with no matching
//! `terminal` record is re-enqueued under its original id, tenant,
//! priority, and idempotency key; one *with* a terminal record is
//! reconstructed as a finished handle (exactly-once: it will never
//! re-run). Terminal records without a submitted record are ignored —
//! they can occur when a crash lands between a worker's terminal
//! append and nothing else, and are harmless.

use crate::error::{QukitError, Result};
use crate::scheduler::Priority;
use qukit_aer::counts::Counts;
use qukit_obs::json::{escape, JsonValue};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// File name of the journal inside the journal directory.
pub const JOURNAL_FILE: &str = "jobs.journal";
/// Record magic: bumping the on-disk format bumps this tag.
const MAGIC: &str = "QJ1";

/// A parsed journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A job was accepted (written before it entered the queue).
    Submitted {
        /// Executor-unique job id.
        job_id: u64,
        /// Owning tenant.
        tenant: String,
        /// Priority class.
        priority: Priority,
        /// Backend name the job targets.
        backend: String,
        /// Requested shot count.
        shots: usize,
        /// Client idempotency key, if supplied.
        key: Option<String>,
        /// The prepared circuit as OpenQASM 2.0.
        qasm: String,
        /// The job's trace id (0 in pre-tracing journals): replay
        /// reconstructs the job under the same trace, so a waterfall
        /// survives a crash/restart cycle with its identity intact.
        trace: u64,
    },
    /// A job reached a terminal state.
    Terminal {
        /// Executor-unique job id.
        job_id: u64,
        /// Terminal status wire name (`DONE`, `ERROR`, `CANCELLED`,
        /// `TIMED_OUT`, `REJECTED`).
        status: String,
        /// Failure message for non-`DONE` terminals.
        error: Option<String>,
        /// `(num_clbits, outcome histogram)` for `DONE` terminals.
        counts: Option<(usize, Vec<(u64, usize)>)>,
        /// Backend that actually served a `DONE` job.
        executed_on: Option<String>,
    },
}

impl JournalRecord {
    /// The id of the job the record concerns.
    pub fn job_id(&self) -> u64 {
        match self {
            JournalRecord::Submitted { job_id, .. } | JournalRecord::Terminal { job_id, .. } => {
                *job_id
            }
        }
    }
}

/// What a journal scan found.
#[derive(Debug, Default)]
pub struct ReplayLog {
    /// Every record up to the first corruption, in append order.
    pub records: Vec<JournalRecord>,
    /// Lines dropped because of a failed checksum or parse (a torn
    /// tail counts as one).
    pub corrupt_dropped: usize,
}

/// The append side of the journal. One instance per executor; appends
/// are serialized by an internal mutex and flushed per record so a
/// process crash after `append` returns cannot lose the record.
/// (`flush` reaches the OS, not the platter — power-loss durability
/// would need fsync, which this simulator-scale service trades away
/// for throughput.)
pub struct Journal {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
    sealed: AtomicBool,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Journal({})", self.path.display())
    }
}

impl Journal {
    /// Opens (creating if needed) the journal inside `dir` for append.
    pub fn open(dir: &Path) -> Result<Self> {
        std::fs::create_dir_all(dir).map_err(|e| QukitError::Job {
            msg: format!("cannot create journal dir {}: {e}", dir.display()),
        })?;
        let path = dir.join(JOURNAL_FILE);
        let file = OpenOptions::new().create(true).append(true).open(&path).map_err(|e| {
            QukitError::Job { msg: format!("cannot open journal {}: {e}", path.display()) }
        })?;
        Ok(Self { path, writer: Mutex::new(BufWriter::new(file)), sealed: AtomicBool::new(false) })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Stops accepting appends. Used by crash simulation: straggler
    /// writes from detached workers are dropped exactly as a dead
    /// process would drop them.
    pub fn seal(&self) {
        self.sealed.store(true, Ordering::SeqCst);
    }

    /// Appends one record and flushes it to the OS.
    pub fn append(&self, record: &JournalRecord) -> Result<()> {
        if self.sealed.load(Ordering::SeqCst) {
            return Err(QukitError::Job { msg: "journal is sealed".to_owned() });
        }
        let line = encode_record(record);
        let mut writer = self.writer.lock().expect("journal writer lock");
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.flush())
            .map_err(|e| QukitError::Job { msg: format!("journal append failed: {e}") })
    }
}

/// Reads the journal under `dir` (missing file = empty log).
pub fn replay(dir: &Path) -> Result<ReplayLog> {
    let path = dir.join(JOURNAL_FILE);
    let mut text = String::new();
    match File::open(&path) {
        Ok(mut file) => {
            file.read_to_string(&mut text).map_err(|e| QukitError::Job {
                msg: format!("cannot read journal {}: {e}", path.display()),
            })?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(ReplayLog::default()),
        Err(e) => {
            return Err(QukitError::Job {
                msg: format!("cannot open journal {}: {e}", path.display()),
            })
        }
    }
    let mut log = ReplayLog::default();
    let mut lines = text.lines();
    for line in &mut lines {
        if line.is_empty() {
            continue;
        }
        match decode_line(line) {
            Some(record) => log.records.push(record),
            None => {
                // First bad line ends the trusted prefix; it and the
                // rest are dropped.
                log.corrupt_dropped = 1 + lines.count();
                break;
            }
        }
    }
    Ok(log)
}

fn encode_record(record: &JournalRecord) -> String {
    let payload = match record {
        JournalRecord::Submitted { job_id, tenant, priority, backend, shots, key, qasm, trace } => {
            let mut out = format!(
                "{{\"kind\":\"submitted\",\"job\":{job_id},\"tenant\":\"{}\",\"priority\":\"{}\",\"backend\":\"{}\",\"shots\":{shots}",
                escape(tenant),
                priority.name(),
                escape(backend),
            );
            if let Some(key) = key {
                out.push_str(&format!(",\"key\":\"{}\"", escape(key)));
            }
            if *trace != 0 {
                out.push_str(&format!(",\"trace\":{trace}"));
            }
            out.push_str(&format!(",\"qasm\":\"{}\"}}", escape(qasm)));
            out
        }
        JournalRecord::Terminal { job_id, status, error, counts, executed_on } => {
            let mut out = format!(
                "{{\"kind\":\"terminal\",\"job\":{job_id},\"status\":\"{}\"",
                escape(status)
            );
            if let Some(error) = error {
                out.push_str(&format!(",\"error\":\"{}\"", escape(error)));
            }
            if let Some(executed_on) = executed_on {
                out.push_str(&format!(",\"executed_on\":\"{}\"", escape(executed_on)));
            }
            if let Some((clbits, histogram)) = counts {
                out.push_str(&format!(",\"clbits\":{clbits},\"counts\":{{"));
                let mut first = true;
                for (outcome, n) in histogram {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push_str(&format!("\"{outcome}\":{n}"));
                }
                out.push_str("}}");
            } else {
                out.push('}');
            }
            out
        }
    };
    format!("{MAGIC} {:08x} {payload}\n", crc32(payload.as_bytes()))
}

fn decode_line(line: &str) -> Option<JournalRecord> {
    let rest = line.strip_prefix(MAGIC)?.strip_prefix(' ')?;
    let (crc_hex, payload) = rest.split_once(' ')?;
    let expected = u32::from_str_radix(crc_hex, 16).ok()?;
    if crc32(payload.as_bytes()) != expected {
        return None;
    }
    let value = JsonValue::parse(payload).ok()?;
    let kind = value.get("kind")?.as_str()?;
    let job_id = value.get("job")?.as_f64()? as u64;
    match kind {
        "submitted" => Some(JournalRecord::Submitted {
            job_id,
            tenant: value.get("tenant")?.as_str()?.to_owned(),
            priority: Priority::parse(value.get("priority")?.as_str()?)?,
            backend: value.get("backend")?.as_str()?.to_owned(),
            shots: value.get("shots")?.as_f64()? as usize,
            key: value.get("key").and_then(|k| k.as_str()).map(str::to_owned),
            qasm: value.get("qasm")?.as_str()?.to_owned(),
            trace: value.get("trace").and_then(JsonValue::as_f64).map_or(0, |t| t as u64),
        }),
        "terminal" => {
            let counts = match value.get("counts") {
                Some(map) => {
                    let clbits = value.get("clbits")?.as_f64()? as usize;
                    let mut histogram = Vec::new();
                    for (outcome, n) in map.as_object()? {
                        histogram.push((outcome.parse().ok()?, n.as_f64()? as usize));
                    }
                    Some((clbits, histogram))
                }
                None => None,
            };
            Some(JournalRecord::Terminal {
                job_id,
                status: value.get("status")?.as_str()?.to_owned(),
                error: value.get("error").and_then(|e| e.as_str()).map(str::to_owned),
                counts,
                executed_on: value.get("executed_on").and_then(|e| e.as_str()).map(str::to_owned),
            })
        }
        _ => None,
    }
}

/// Rebuilds a [`Counts`] histogram from a journaled `(clbits, pairs)`.
pub(crate) fn counts_from_pairs(clbits: usize, pairs: &[(u64, usize)]) -> Counts {
    let mut counts = Counts::new(clbits);
    for &(outcome, n) in pairs {
        counts.record_n(outcome, n);
    }
    counts
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), bitwise — journal records
/// are short and rare enough that a lookup table is not worth the code.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "qukit-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn submitted(job_id: u64, key: Option<&str>) -> JournalRecord {
        JournalRecord::Submitted {
            job_id,
            tenant: "default".to_owned(),
            priority: Priority::Normal,
            backend: "qasm_simulator".to_owned(),
            shots: 128,
            key: key.map(str::to_owned),
            qasm: "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\n".to_owned(),
            trace: 9_007_199_254_740_991 & (job_id.wrapping_mul(0x9e37) | 1),
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn records_round_trip_through_the_file() {
        let dir = temp_dir("roundtrip");
        let journal = Journal::open(&dir).unwrap();
        let records = vec![
            submitted(1, Some("key-a")),
            submitted(2, None),
            JournalRecord::Terminal {
                job_id: 1,
                status: "DONE".to_owned(),
                error: None,
                counts: Some((2, vec![(0, 60), (3, 68)])),
                executed_on: Some("qasm_simulator".to_owned()),
            },
            JournalRecord::Terminal {
                job_id: 2,
                status: "ERROR".to_owned(),
                error: Some("injected fault: \"quoted\"\nnewline".to_owned()),
                counts: None,
                executed_on: None,
            },
        ];
        for record in &records {
            journal.append(record).unwrap();
        }
        let log = replay(&dir).unwrap();
        assert_eq!(log.records, records);
        assert_eq!(log.corrupt_dropped, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pre_tracing_submitted_lines_decode_with_zero_trace() {
        // A line written before the `trace` field existed.
        let payload = "{\"kind\":\"submitted\",\"job\":7,\"tenant\":\"default\",\
                       \"priority\":\"normal\",\"backend\":\"qasm_simulator\",\
                       \"shots\":64,\"qasm\":\"OPENQASM 2.0;\"}";
        let line = format!("{MAGIC} {:08x} {payload}", crc32(payload.as_bytes()));
        match decode_line(&line) {
            Some(JournalRecord::Submitted { job_id, trace, .. }) => {
                assert_eq!(job_id, 7);
                assert_eq!(trace, 0, "absent trace decodes as 0");
            }
            other => panic!("unexpected decode: {other:?}"),
        }
    }

    #[test]
    fn missing_journal_is_an_empty_log() {
        let dir = temp_dir("missing");
        let log = replay(&dir).unwrap();
        assert!(log.records.is_empty());
        assert_eq!(log.corrupt_dropped, 0);
    }

    #[test]
    fn torn_tail_is_dropped_but_the_prefix_survives() {
        let dir = temp_dir("torn");
        let journal = Journal::open(&dir).unwrap();
        journal.append(&submitted(1, None)).unwrap();
        journal.append(&submitted(2, None)).unwrap();
        drop(journal);
        // Simulate a crash mid-write: append half a record.
        let mut file = OpenOptions::new().append(true).open(dir.join(JOURNAL_FILE)).unwrap();
        file.write_all(b"QJ1 0000dead {\"kind\":\"subm").unwrap();
        drop(file);
        let log = replay(&dir).unwrap();
        assert_eq!(log.records.len(), 2);
        assert_eq!(log.corrupt_dropped, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_fails_the_checksum_and_ends_the_scan() {
        let dir = temp_dir("bitflip");
        let journal = Journal::open(&dir).unwrap();
        journal.append(&submitted(1, None)).unwrap();
        journal.append(&submitted(2, None)).unwrap();
        journal.append(&submitted(3, None)).unwrap();
        drop(journal);
        let path = dir.join(JOURNAL_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        // Corrupt the *second* line's payload (flip the shots digit).
        let corrupted: Vec<String> = text
            .lines()
            .enumerate()
            .map(|(i, line)| {
                if i == 1 {
                    line.replace("\"shots\":128", "\"shots\":129")
                } else {
                    line.to_owned()
                }
            })
            .collect();
        std::fs::write(&path, corrupted.join("\n") + "\n").unwrap();
        let log = replay(&dir).unwrap();
        assert_eq!(log.records.len(), 1, "scan stops at the corrupt record");
        assert_eq!(log.corrupt_dropped, 2, "the corrupt line and everything after");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sealed_journal_rejects_appends() {
        let dir = temp_dir("sealed");
        let journal = Journal::open(&dir).unwrap();
        journal.append(&submitted(1, None)).unwrap();
        journal.seal();
        assert!(journal.append(&submitted(2, None)).is_err());
        assert_eq!(replay(&dir).unwrap().records.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
