//! Retry policies with deterministic exponential backoff.
//!
//! The paper's cloud workflow runs circuits through a shared queue where
//! submissions fail transiently (devices drop out for calibration, the
//! queue hiccups). A [`RetryPolicy`] describes how the
//! [job service](crate::job) reacts: how many attempts, how long to wait
//! between them (exponential backoff with *seeded* jitter, so schedules
//! are reproducible in tests), and how long a single attempt may run
//! before the worker declares it hung.

use std::time::Duration;

/// How the job service retries failed attempts.
///
/// Backoff before attempt `n` (n ≥ 2) is
/// `base_backoff · backoff_factor^(n-2)`, capped at `max_backoff`, then
/// scaled by a jitter factor drawn deterministically from
/// (`jitter_seed`, `n`) in `[1-jitter, 1+jitter]`. The full schedule is
/// therefore a pure function of the policy — tests assert on
/// [`schedule`](RetryPolicy::schedule) instead of wall-clock timing.
///
/// # Examples
///
/// ```
/// use qukit::retry::RetryPolicy;
/// use std::time::Duration;
///
/// let policy = RetryPolicy::new(3)
///     .with_base_backoff(Duration::from_millis(100))
///     .with_backoff_factor(2.0)
///     .with_jitter(0.0);
/// assert_eq!(
///     policy.schedule(),
///     vec![Duration::from_millis(100), Duration::from_millis(200)]
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub base_backoff: Duration,
    /// Multiplier applied per further attempt.
    pub backoff_factor: f64,
    /// Upper bound for any single backoff (pre-jitter).
    pub max_backoff: Duration,
    /// Jitter amplitude as a fraction of the backoff (`0.0..=1.0`).
    pub jitter: f64,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
    /// Wall-clock budget for one attempt; `None` = unlimited.
    pub attempt_timeout: Option<Duration>,
}

impl Default for RetryPolicy {
    /// Three attempts, 100 ms base backoff doubling per attempt, capped
    /// at 5 s, ±10 % jitter, no per-attempt timeout.
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff: Duration::from_millis(100),
            backoff_factor: 2.0,
            max_backoff: Duration::from_secs(5),
            jitter: 0.1,
            jitter_seed: 0,
            attempt_timeout: None,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` total attempts and default backoff.
    pub fn new(max_attempts: u32) -> Self {
        Self { max_attempts: max_attempts.max(1), ..Self::default() }
    }

    /// A single-attempt policy (no retries, no backoff).
    pub fn none() -> Self {
        Self::new(1)
    }

    /// Sets the backoff before the second attempt (builder style).
    pub fn with_base_backoff(mut self, base: Duration) -> Self {
        self.base_backoff = base;
        self
    }

    /// Sets the per-attempt backoff multiplier (builder style).
    pub fn with_backoff_factor(mut self, factor: f64) -> Self {
        self.backoff_factor = factor.max(1.0);
        self
    }

    /// Sets the backoff upper bound (builder style).
    pub fn with_max_backoff(mut self, max: Duration) -> Self {
        self.max_backoff = max;
        self
    }

    /// Sets the jitter amplitude (clamped to `0.0..=1.0`, builder style).
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.clamp(0.0, 1.0);
        self
    }

    /// Sets the jitter seed (builder style).
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// Sets the per-attempt timeout (builder style).
    pub fn with_attempt_timeout(mut self, timeout: Duration) -> Self {
        self.attempt_timeout = Some(timeout);
        self
    }

    /// The backoff to wait before attempt `attempt` (2-based: the first
    /// attempt has no backoff and returns zero).
    pub fn backoff_before(&self, attempt: u32) -> Duration {
        if attempt < 2 {
            return Duration::ZERO;
        }
        let exponent = (attempt - 2) as i32;
        let raw = self.base_backoff.as_secs_f64() * self.backoff_factor.powi(exponent);
        let capped = raw.min(self.max_backoff.as_secs_f64());
        // Deterministic jitter in [1-j, 1+j] from (seed, attempt).
        let unit =
            splitmix64(self.jitter_seed ^ u64::from(attempt)) as f64 / (u64::MAX as f64 + 1.0);
        let factor = 1.0 + self.jitter * (2.0 * unit - 1.0);
        Duration::from_secs_f64((capped * factor).max(0.0))
    }

    /// The full backoff schedule: one entry per retry (length
    /// `max_attempts - 1`).
    pub fn schedule(&self) -> Vec<Duration> {
        (2..=self.max_attempts).map(|a| self.backoff_before(a)).collect()
    }
}

/// One step of the SplitMix64 sequence; drives the jitter stream.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitterless_schedule_is_exact_exponential() {
        let policy = RetryPolicy::new(5)
            .with_base_backoff(Duration::from_millis(10))
            .with_backoff_factor(3.0)
            .with_jitter(0.0);
        assert_eq!(
            policy.schedule(),
            vec![
                Duration::from_millis(10),
                Duration::from_millis(30),
                Duration::from_millis(90),
                Duration::from_millis(270),
            ]
        );
        assert_eq!(policy.backoff_before(1), Duration::ZERO);
    }

    #[test]
    fn backoff_is_capped() {
        let policy = RetryPolicy::new(10)
            .with_base_backoff(Duration::from_millis(100))
            .with_backoff_factor(10.0)
            .with_max_backoff(Duration::from_millis(250))
            .with_jitter(0.0);
        let schedule = policy.schedule();
        assert_eq!(schedule[0], Duration::from_millis(100));
        assert!(schedule[2..].iter().all(|&d| d == Duration::from_millis(250)));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let policy = RetryPolicy::new(6)
            .with_base_backoff(Duration::from_millis(100))
            .with_backoff_factor(1.0)
            .with_jitter(0.2)
            .with_jitter_seed(7);
        let a = policy.schedule();
        let b = policy.schedule();
        assert_eq!(a, b, "same seed, same schedule");
        for d in &a {
            let ms = d.as_secs_f64() * 1e3;
            assert!((80.0..=120.0).contains(&ms), "jittered backoff {ms} ms out of ±20 %");
        }
        let other = policy.with_jitter_seed(8).schedule();
        assert_ne!(a, other, "different seed, different schedule");
    }

    #[test]
    fn single_attempt_policy_has_empty_schedule() {
        assert!(RetryPolicy::none().schedule().is_empty());
        // max_attempts is floored at 1.
        assert_eq!(RetryPolicy::new(0).max_attempts, 1);
    }
}
