//! Execution backends.
//!
//! A [`Backend`] is anything a circuit can be submitted to — exactly the
//! role `Aer.get_backend('qasm_simulator')` and `IBMQ.get_backend('ibmqx4')`
//! play in the paper's user walkthrough. Real hardware is not reachable
//! from this reproduction, so the QX devices are provided as *fake
//! backends*: simulated executions that enforce the real devices' coupling
//! constraints and elementary gate set and attach a representative noise
//! model (see DESIGN.md, "Hardware substitution").

use crate::error::{QukitError, Result};
use qukit_aer::counts::Counts;
use qukit_aer::noise::NoiseModel;
use qukit_aer::parallel::ParallelConfig;
use qukit_aer::simulator::QasmSimulator;
use qukit_dd::simulator::DdSimulator;
use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::coupling::CouplingMap;
use qukit_terra::transpiler::{satisfies_coupling, MapperKind, TranspileOptions};

/// A target that can execute circuits and return measurement histograms.
///
/// Backends are `Send + Sync` so the [job service](crate::job) can share
/// them across worker threads; every implementation in this crate is
/// plain data (plus interior mutexes where bookkeeping is needed).
pub trait Backend: Send + Sync {
    /// The backend name (`"qasm_simulator"`, `"ibmqx4"`, …).
    fn name(&self) -> &str;

    /// Maximum number of qubits.
    fn num_qubits(&self) -> usize;

    /// The device coupling map, or `None` for all-to-all simulators.
    fn coupling_map(&self) -> Option<&CouplingMap> {
        None
    }

    /// Executes `shots` repetitions of the circuit.
    ///
    /// # Errors
    ///
    /// Returns an error when the circuit does not fit the backend or
    /// simulation fails.
    fn run(&self, circuit: &QuantumCircuit, shots: usize) -> Result<Counts>;

    /// Executes a batch of circuits — typically the bindings of one
    /// parameter sweep — with `shots` repetitions each.
    ///
    /// The default maps over [`run`](Backend::run), so results are always
    /// identical to submitting the circuits one at a time. Backends with a
    /// native batch path (the statevector simulator) override this to
    /// reuse state buffers across bindings.
    ///
    /// # Errors
    ///
    /// Same conditions as [`run`](Backend::run), for any circuit.
    fn run_batch(&self, circuits: &[QuantumCircuit], shots: usize) -> Result<Vec<Counts>> {
        circuits.iter().map(|circuit| self.run(circuit, shots)).collect()
    }

    /// Transpiles a circuit exactly the way [`run`](Backend::run) would
    /// before executing it, without running it.
    ///
    /// Simulator backends execute circuits as-is, so the default is the
    /// identity. Device backends override this with their transpile
    /// pipeline; the sweep path uses it to transpile a parameterized
    /// template once and patch angles into the result per binding.
    ///
    /// # Errors
    ///
    /// Returns transpilation errors for backends that transpile.
    fn prepare_circuit(&self, circuit: &QuantumCircuit) -> Result<QuantumCircuit> {
        Ok(circuit.clone())
    }

    /// Fixes the backend's sampling seed, making subsequent [`run`]
    /// calls deterministic.
    ///
    /// The differential conformance harness relies on this to replay a
    /// reproducer bit-for-bit on any `Box<dyn Backend>`. Backends without
    /// stochastic behaviour may keep the default no-op.
    ///
    /// [`run`]: Backend::run
    fn set_seed(&mut self, _seed: u64) {}

    /// Installs a parallel-execution configuration (threads, chunk size,
    /// gate fusion) for backends that simulate statevectors locally.
    ///
    /// The job service forwards [`crate::job::ExecutorConfig::parallel`]
    /// through this hook; backends without a statevector engine keep the
    /// default no-op.
    fn set_parallel(&mut self, _config: ParallelConfig) {}

    /// The backend that actually served the most recent successful
    /// [`run`](Backend::run), when that can differ from [`name`](Backend::name).
    ///
    /// Composite backends (e.g. [`crate::fault::FallbackChain`]) override
    /// this; plain backends return `None`, meaning "myself". The job
    /// service records the value in the job's metadata.
    fn executed_on(&self) -> Option<String> {
        None
    }

    /// A hash of everything (besides the circuit) that shapes this
    /// backend's outcome **distribution**: seed, noise model,
    /// transpilation strategy. The executor's result cache keys on
    /// `(circuit, name, fingerprint)`, so two backends with the same
    /// name must return different fingerprints whenever their
    /// distributions can differ. The default covers configuration-free
    /// backends.
    fn fingerprint(&self) -> u64 {
        0
    }
}

/// The ideal shot-based simulator backend (`qasm_simulator`).
#[derive(Debug, Clone, Default)]
pub struct QasmSimulatorBackend {
    seed: Option<u64>,
    parallel: Option<ParallelConfig>,
}

impl QasmSimulatorBackend {
    /// Creates the backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fixes the sampling seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the parallel/fusion configuration (builder style). Without
    /// this, the simulator falls back to the `QUKIT_THREADS` environment.
    pub fn with_parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = Some(parallel);
        self
    }
}

impl Backend for QasmSimulatorBackend {
    fn name(&self) -> &str {
        "qasm_simulator"
    }

    fn num_qubits(&self) -> usize {
        30
    }

    fn run(&self, circuit: &QuantumCircuit, shots: usize) -> Result<Counts> {
        let mut sim = QasmSimulator::new();
        if let Some(seed) = self.seed {
            sim = sim.with_seed(seed);
        }
        if let Some(parallel) = self.parallel {
            sim = sim.with_parallel(parallel);
        }
        sim.run(circuit, shots).map_err(QukitError::from)
    }

    fn run_batch(&self, circuits: &[QuantumCircuit], shots: usize) -> Result<Vec<Counts>> {
        let mut sim = QasmSimulator::new();
        if let Some(seed) = self.seed {
            sim = sim.with_seed(seed);
        }
        if let Some(parallel) = self.parallel {
            sim = sim.with_parallel(parallel);
        }
        sim.run_batch(circuits, shots).map_err(QukitError::from)
    }

    fn set_seed(&mut self, seed: u64) {
        self.seed = Some(seed);
    }

    fn set_parallel(&mut self, config: ParallelConfig) {
        self.parallel = Some(config);
    }

    fn fingerprint(&self) -> u64 {
        seed_fingerprint("qasm", self.seed)
    }
}

/// A decision-diagram simulator backend (the JKU add-on of the paper's
/// Section V-C): unitary circuits only, sampling from the compressed state.
#[derive(Debug, Clone, Default)]
pub struct DdSimulatorBackend {
    seed: Option<u64>,
}

impl DdSimulatorBackend {
    /// Creates the backend. Without [`with_seed`](Self::with_seed) each
    /// run samples with a fresh entropy seed, matching
    /// [`QasmSimulatorBackend`]'s behavior.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fixes the sampling seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }
}

impl Backend for DdSimulatorBackend {
    fn name(&self) -> &str {
        "dd_simulator"
    }

    fn num_qubits(&self) -> usize {
        64
    }

    fn run(&self, circuit: &QuantumCircuit, shots: usize) -> Result<Counts> {
        // Strip terminal measurements: the DD simulator samples all qubits
        // directly from the final state.
        let mut unitary_part = circuit.clone();
        unitary_part.clear();
        unitary_part.add_global_phase(circuit.global_phase());
        let mut measured: Vec<(usize, usize)> = Vec::new();
        for inst in circuit.instructions() {
            match &inst.op {
                qukit_terra::instruction::Operation::Measure => {
                    measured.push((inst.qubits[0], inst.clbits[0]));
                }
                _ => {
                    unitary_part.push(inst.clone())?;
                }
            }
        }
        let state = DdSimulator::new().run(&unitary_part)?;
        let all_qubit_counts = state.sample_counts(shots, self.seed.unwrap_or_else(rand::random));
        if measured.is_empty() {
            return Ok(all_qubit_counts);
        }
        // Remap qubit outcomes to classical bits.
        let mut counts = Counts::new(circuit.num_clbits());
        for (outcome, n) in all_qubit_counts.iter() {
            let mut mapped = 0u64;
            for &(q, c) in &measured {
                if (outcome >> q) & 1 == 1 {
                    mapped |= 1 << c;
                }
            }
            counts.record_n(mapped, n);
        }
        Ok(counts)
    }

    fn set_seed(&mut self, seed: u64) {
        self.seed = Some(seed);
    }

    fn fingerprint(&self) -> u64 {
        seed_fingerprint("dd", self.seed)
    }
}

/// The stabilizer-tableau backend: Clifford circuits only, but scaling to
/// hundreds of qubits (`O(n²)` per gate instead of `O(2^n)`).
#[derive(Debug, Clone, Default)]
pub struct StabilizerBackend {
    seed: Option<u64>,
}

impl StabilizerBackend {
    /// Creates the backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fixes the sampling seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }
}

impl Backend for StabilizerBackend {
    fn name(&self) -> &str {
        "stabilizer_simulator"
    }

    fn num_qubits(&self) -> usize {
        4096
    }

    fn run(&self, circuit: &QuantumCircuit, shots: usize) -> Result<Counts> {
        let mut sim = qukit_aer::stabilizer::StabilizerSimulator::new();
        if let Some(seed) = self.seed {
            sim = sim.with_seed(seed);
        }
        sim.run(circuit, shots).map_err(QukitError::from)
    }

    fn set_seed(&mut self, seed: u64) {
        self.seed = Some(seed);
    }

    fn fingerprint(&self) -> u64 {
        seed_fingerprint("stabilizer", self.seed)
    }
}

/// A simulated IBM QX-style device: enforces a coupling map and elementary
/// basis, injects a noise model, and transpiles incoming circuits
/// automatically (the paper's "execution on a real quantum device" step,
/// with the hardware replaced by its faithful constraints + noise).
#[derive(Debug, Clone)]
pub struct FakeDevice {
    name: String,
    coupling: CouplingMap,
    noise: NoiseModel,
    seed: Option<u64>,
    parallel: Option<ParallelConfig>,
    mapper: MapperKind,
    layout: qukit_terra::transpiler::InitialLayout,
    opt_level: u8,
}

impl FakeDevice {
    /// Creates a fake device from a coupling map and noise model.
    pub fn new(name: impl Into<String>, coupling: CouplingMap, noise: NoiseModel) -> Self {
        Self {
            name: name.into(),
            coupling,
            noise,
            seed: None,
            parallel: None,
            mapper: MapperKind::Lookahead,
            layout: qukit_terra::transpiler::InitialLayout::Trivial,
            opt_level: 2,
        }
    }

    /// Installs calibration data: replaces the noise model with the
    /// calibration's per-location errors and switches automatic
    /// transpilation to the noise-aware layout.
    pub fn with_calibration(mut self, calibration: &DeviceCalibration) -> Self {
        self.noise = calibration.noise_model();
        self.layout = calibration.layout_strategy();
        self
    }

    /// The 5-qubit `ibmqx2` device with representative error rates.
    pub fn ibmqx2() -> Self {
        Self::new("ibmqx2", CouplingMap::ibm_qx2(), Self::default_noise())
    }

    /// The 5-qubit `ibmqx4` device (the paper's Fig. 2 topology).
    pub fn ibmqx4() -> Self {
        Self::new("ibmqx4", CouplingMap::ibm_qx4(), Self::default_noise())
    }

    /// The 16-qubit `ibmqx5` device.
    pub fn ibmqx5() -> Self {
        Self::new("ibmqx5", CouplingMap::ibm_qx5(), Self::default_noise())
    }

    /// Representative early-transmon error rates: 1q 0.1%, CX 2%,
    /// readout 3%.
    fn default_noise() -> NoiseModel {
        NoiseModel::depolarizing(0.001, 0.02, 0.03)
    }

    /// Fixes the simulation seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Overrides the routing algorithm used by automatic transpilation.
    pub fn with_mapper(mut self, mapper: MapperKind) -> Self {
        self.mapper = mapper;
        self
    }

    /// Overrides the optimization level used by automatic transpilation
    /// (clamped to 0..=3; the default is 2).
    pub fn with_opt_level(mut self, level: u8) -> Self {
        self.opt_level = level.min(3);
        self
    }

    /// Replaces the noise model (e.g. `NoiseModel::new()` for a noiseless
    /// constraint-only device).
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// The device noise model.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// Transpiles a circuit for this device (decompose → map → direction
    /// fix → optimize → U/CX basis), through the process-wide transpile
    /// cache: resubmitting the same payload to the same device skips the
    /// pass pipeline entirely.
    ///
    /// # Errors
    ///
    /// Returns transpilation errors (e.g. circuit wider than the device).
    pub fn transpile(&self, circuit: &QuantumCircuit) -> Result<QuantumCircuit> {
        let options = TranspileOptions {
            coupling_map: Some(self.coupling.clone()),
            mapper: self.mapper,
            optimization_level: self.opt_level,
            basis_u: true,
            initial_layout: self.layout.clone(),
        };
        Ok(qukit_terra::transpiler::transpile_cached(circuit, &options)?.circuit)
    }
}

impl Backend for FakeDevice {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_qubits(&self) -> usize {
        self.coupling.num_qubits()
    }

    fn coupling_map(&self) -> Option<&CouplingMap> {
        Some(&self.coupling)
    }

    fn run(&self, circuit: &QuantumCircuit, shots: usize) -> Result<Counts> {
        // Transpile unless the circuit already satisfies the constraints.
        let prepared;
        let to_run = if satisfies_coupling(circuit, &self.coupling)
            && circuit.num_qubits() == self.coupling.num_qubits()
        {
            circuit
        } else {
            prepared = self.transpile(circuit)?;
            &prepared
        };
        // Idle physical qubits contribute nothing to the dynamics — drop
        // them before simulating so a small circuit on a large device does
        // not pay the full 2^device cost. Per-location noise entries are
        // relabeled along with the qubits.
        let (compacted, remap) = compact_idle_qubits(to_run)?;
        let noise = self.noise.remapped(|q| remap.get(q).copied().flatten());
        let mut sim = QasmSimulator::new().with_noise(noise);
        if let Some(seed) = self.seed {
            sim = sim.with_seed(seed);
        }
        if let Some(parallel) = self.parallel {
            sim = sim.with_parallel(parallel);
        }
        sim.run(&compacted, shots).map_err(QukitError::from)
    }

    fn prepare_circuit(&self, circuit: &QuantumCircuit) -> Result<QuantumCircuit> {
        // Mirrors the condition in `run`: circuits already satisfying the
        // device constraints are executed untouched.
        if satisfies_coupling(circuit, &self.coupling)
            && circuit.num_qubits() == self.coupling.num_qubits()
        {
            Ok(circuit.clone())
        } else {
            self.transpile(circuit)
        }
    }

    fn run_batch(&self, circuits: &[QuantumCircuit], shots: usize) -> Result<Vec<Counts>> {
        // A noiseless device can push the whole batch through the
        // simulator's buffer-reusing batch path: one amplitude buffer
        // shared across all prepared circuits instead of a fresh
        // allocation per run. With noise the per-circuit qubit remap
        // feeds distinct noise models, so fall back to per-circuit runs.
        if !self.noise.is_ideal() {
            return circuits.iter().map(|c| self.run(c, shots)).collect();
        }
        let mut compacted = Vec::with_capacity(circuits.len());
        for circuit in circuits {
            let prepared = self.prepare_circuit(circuit)?;
            compacted.push(compact_idle_qubits(&prepared)?.0);
        }
        let mut sim = QasmSimulator::new();
        if let Some(seed) = self.seed {
            sim = sim.with_seed(seed);
        }
        if let Some(parallel) = self.parallel {
            sim = sim.with_parallel(parallel);
        }
        sim.run_batch(&compacted, shots).map_err(QukitError::from)
    }

    fn set_seed(&mut self, seed: u64) {
        self.seed = Some(seed);
    }

    fn set_parallel(&mut self, config: ParallelConfig) {
        self.parallel = Some(config);
    }

    fn fingerprint(&self) -> u64 {
        // The noise model and transpilation strategy shape the outcome
        // distribution; Debug formatting is a stable-enough digest of
        // both for cache keying.
        crate::cache::fnv1a64(
            format!(
                "{}|{:?}|{:?}|{:?}|{:?}|{}",
                self.name, self.noise, self.seed, self.mapper, self.layout, self.opt_level
            )
            .as_bytes(),
        )
    }
}

/// Seed-sensitive fingerprint for plain simulator backends: the seed is
/// the only configuration that changes their sampling stream.
fn seed_fingerprint(tag: &str, seed: Option<u64>) -> u64 {
    crate::cache::fnv1a64(format!("{tag}|{seed:?}").as_bytes())
}

/// Rewrites a circuit onto only the qubits it actually touches (barriers
/// excluded from the usage analysis and restricted to surviving qubits).
/// Classical bits are preserved unchanged, so counts are unaffected.
/// Returns the compacted circuit and the old→new qubit table.
fn compact_idle_qubits(circuit: &QuantumCircuit) -> Result<(QuantumCircuit, Vec<Option<usize>>)> {
    use qukit_terra::instruction::Operation;
    let mut used = vec![false; circuit.num_qubits()];
    for inst in circuit.instructions() {
        if matches!(inst.op, Operation::Barrier) {
            continue;
        }
        for &q in &inst.qubits {
            used[q] = true;
        }
    }
    let remap: Vec<Option<usize>> = {
        let mut next = 0usize;
        used.iter()
            .map(|&u| {
                if u {
                    let idx = next;
                    next += 1;
                    Some(idx)
                } else {
                    None
                }
            })
            .collect()
    };
    let num_used = remap.iter().flatten().count();
    if num_used == circuit.num_qubits() {
        return Ok((circuit.clone(), remap));
    }
    let mut out = QuantumCircuit::empty();
    out.set_name(format!("{}_compact", circuit.name()));
    out.add_qreg("q", num_used.max(1))?;
    for creg in circuit.cregs() {
        out.add_creg(creg.name(), creg.len())?;
    }
    out.add_global_phase(circuit.global_phase());
    for inst in circuit.instructions() {
        let mut rewritten = inst.clone();
        if matches!(inst.op, Operation::Barrier) {
            rewritten.qubits = inst.qubits.iter().filter_map(|&q| remap[q]).collect();
            if rewritten.qubits.is_empty() {
                continue;
            }
        } else {
            rewritten.qubits =
                inst.qubits.iter().map(|&q| remap[q].expect("used qubit has a slot")).collect();
        }
        out.push(rewritten)?;
    }
    Ok((out, remap))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bell() -> QuantumCircuit {
        let mut circ = QuantumCircuit::with_size(2, 2);
        circ.h(0).unwrap();
        circ.cx(0, 1).unwrap();
        circ.measure(0, 0).unwrap();
        circ.measure(1, 1).unwrap();
        circ
    }

    #[test]
    fn set_seed_makes_trait_objects_deterministic() {
        let backends: Vec<Box<dyn Backend>> = vec![
            Box::new(QasmSimulatorBackend::new()),
            Box::new(DdSimulatorBackend::new()),
            Box::new(StabilizerBackend::new()),
            Box::new(FakeDevice::ibmqx4()),
        ];
        for mut backend in backends {
            backend.set_seed(1234);
            let a = backend.run(&bell(), 256).unwrap();
            let b = backend.run(&bell(), 256).unwrap();
            let name = backend.name().to_owned();
            for (outcome, n) in a.iter() {
                assert_eq!(b.get_value(outcome), n, "{name} must replay identically");
            }
        }
    }

    #[test]
    fn qasm_backend_runs_bell() {
        let backend = QasmSimulatorBackend::new().with_seed(1);
        let counts = backend.run(&bell(), 500).unwrap();
        assert_eq!(counts.total(), 500);
        assert_eq!(counts.get("01") + counts.get("10"), 0);
        assert_eq!(backend.name(), "qasm_simulator");
        assert!(backend.coupling_map().is_none());
    }

    #[test]
    fn dd_backend_matches_qasm_backend_statistics() {
        let counts = DdSimulatorBackend::new().with_seed(2).run(&bell(), 2000).unwrap();
        assert_eq!(counts.total(), 2000);
        let p00 = counts.probability(0);
        assert!((p00 - 0.5).abs() < 0.05, "p00 {p00}");
        assert_eq!(counts.get("01") + counts.get("10"), 0);
    }

    #[test]
    fn dd_backend_without_measurements_samples_all_qubits() {
        let mut ghz = QuantumCircuit::new(3);
        ghz.h(0).unwrap();
        ghz.cx(0, 1).unwrap();
        ghz.cx(1, 2).unwrap();
        let counts = DdSimulatorBackend::new().with_seed(3).run(&ghz, 400).unwrap();
        assert_eq!(counts.get_value(0) + counts.get_value(0b111), 400);
    }

    #[test]
    fn stabilizer_backend_runs_clifford_circuits() {
        let backend = StabilizerBackend::new().with_seed(8);
        assert_eq!(backend.name(), "stabilizer_simulator");
        let counts = backend.run(&bell(), 300).unwrap();
        assert_eq!(counts.get("01") + counts.get("10"), 0);
        // Non-Clifford circuits are rejected.
        let mut t_circ = QuantumCircuit::with_size(1, 1);
        t_circ.t(0).unwrap();
        t_circ.measure(0, 0).unwrap();
        assert!(backend.run(&t_circ, 1).is_err());
    }

    #[test]
    fn fake_qx4_transpiles_and_runs() {
        let device = FakeDevice::ibmqx4().with_seed(4);
        assert_eq!(device.num_qubits(), 5);
        assert!(device.coupling_map().is_some());
        let counts = device.run(&bell(), 1000).unwrap();
        assert_eq!(counts.total(), 1000);
        // Noise leaks some weight into 01/10, but correlation dominates.
        let correlated = counts.probability(0b00) + counts.probability(0b11);
        assert!(correlated > 0.85, "correlated mass {correlated}");
    }

    #[test]
    fn fake_device_transpile_respects_constraints() {
        let device = FakeDevice::ibmqx4();
        let circ = qukit_terra::circuit::fig1_circuit();
        let mapped = device.transpile(&circ).unwrap();
        assert!(satisfies_coupling(&mapped, device.coupling_map().unwrap()));
        for inst in mapped.instructions() {
            if let Some(g) = inst.as_gate() {
                assert!(
                    matches!(g, qukit_terra::gate::Gate::U(..) | qukit_terra::gate::Gate::CX),
                    "non-elementary {g:?} left"
                );
            }
        }
    }

    #[test]
    fn noiseless_fake_device_is_exact() {
        let device = FakeDevice::ibmqx4().with_noise(NoiseModel::new()).with_seed(5);
        let counts = device.run(&bell(), 600).unwrap();
        assert_eq!(counts.get("01") + counts.get("10"), 0);
    }

    #[test]
    fn noiseless_fake_device_batch_is_bit_identical_to_per_run() {
        let device = FakeDevice::ibmqx4().with_noise(NoiseModel::new()).with_seed(11);
        let mut rotated = QuantumCircuit::new(3);
        rotated.ry(0.4, 0).unwrap();
        rotated.cx(0, 1).unwrap();
        rotated.ry(1.3, 2).unwrap();
        rotated.measure_all();
        let circuits = vec![bell(), rotated.clone(), bell(), rotated];
        let batched = device.run_batch(&circuits, 700).unwrap();
        let individual: Vec<_> = circuits.iter().map(|c| device.run(c, 700).unwrap()).collect();
        assert_eq!(batched, individual, "batch path must reproduce per-run counts exactly");
    }

    #[test]
    fn noisy_fake_device_batch_falls_back_to_per_run() {
        let device = FakeDevice::ibmqx4().with_seed(13);
        let circuits = vec![bell(), bell()];
        let batched = device.run_batch(&circuits, 300).unwrap();
        let individual: Vec<_> = circuits.iter().map(|c| device.run(c, 300).unwrap()).collect();
        assert_eq!(batched, individual);
    }

    #[test]
    fn calibration_aware_device_avoids_bad_edges() {
        // QX4 with a disastrous (2,1) edge: a 2-qubit circuit must be
        // placed elsewhere, giving visibly better Bell statistics than a
        // trivially-placed device would.
        let calibration = DeviceCalibration::uniform(&CouplingMap::ibm_qx4(), 0.01, 0.0, 1.0)
            .with_cx_error((2, 1), 0.5)
            .with_cx_error((1, 0), 0.5);
        let calibrated = FakeDevice::ibmqx4().with_calibration(&calibration).with_seed(7);
        let trivial = FakeDevice::ibmqx4().with_noise(calibration.noise_model()).with_seed(7);
        // Logical q0-q1 trivially land on physical Q0-Q1 (the bad edge).
        let counts_cal = calibrated.run(&bell(), 3000).unwrap();
        let counts_triv = trivial.run(&bell(), 3000).unwrap();
        let success = |c: &qukit_aer::counts::Counts| c.probability(0) + c.probability(0b11);
        assert!(
            success(&counts_cal) > success(&counts_triv) + 0.05,
            "calibrated {:.3} must beat trivial {:.3}",
            success(&counts_cal),
            success(&counts_triv)
        );
        assert!(success(&counts_cal) > 0.97, "good edges are nearly clean");
    }

    #[test]
    fn calibration_noise_model_is_local() {
        let calibration = DeviceCalibration::uniform(&CouplingMap::line(3), 0.02, 0.001, 0.98);
        let noise = calibration.noise_model();
        assert!(noise.error_for("cx", &[0, 1]).is_some());
        assert!(noise.error_for("cx", &[0, 2]).is_none(), "uncalibrated pair has no entry");
        assert!(noise.error_for("u", &[2]).is_some());
        assert!(noise.readout_error().is_some());
    }

    #[test]
    fn too_wide_circuit_is_rejected() {
        let device = FakeDevice::ibmqx4();
        let circ = QuantumCircuit::new(6);
        assert!(device.run(&circ, 1).is_err());
    }
}

/// Per-device calibration data, as published for real IBM Q devices: CX
/// error per directed edge, single-qubit error and readout fidelity per
/// qubit. Drives both the noise model of a [`FakeDevice`] and the
/// noise-aware layout of its transpiler.
#[derive(Debug, Clone, Default)]
pub struct DeviceCalibration {
    /// `((control, target), error)` per calibrated CX edge.
    pub cx_error: Vec<((usize, usize), f64)>,
    /// Per-qubit single-qubit gate error.
    pub single_qubit_error: Vec<f64>,
    /// Per-qubit readout assignment fidelity.
    pub readout_fidelity: Vec<f64>,
}

impl DeviceCalibration {
    /// A uniform calibration over a coupling map.
    pub fn uniform(map: &CouplingMap, cx_error: f64, sq_error: f64, readout: f64) -> Self {
        Self {
            cx_error: map.edges().map(|e| (e, cx_error)).collect(),
            single_qubit_error: vec![sq_error; map.num_qubits()],
            readout_fidelity: vec![readout; map.num_qubits()],
        }
    }

    /// Overrides the error of one CX edge (builder style).
    pub fn with_cx_error(mut self, edge: (usize, usize), error: f64) -> Self {
        if let Some(entry) = self.cx_error.iter_mut().find(|(e, _)| *e == edge) {
            entry.1 = error;
        } else {
            self.cx_error.push((edge, error));
        }
        self
    }

    /// Builds the per-location noise model implied by the calibration.
    pub fn noise_model(&self) -> NoiseModel {
        let mut noise = NoiseModel::new();
        for (q, &e) in self.single_qubit_error.iter().enumerate() {
            if e > 0.0 {
                let channel = qukit_aer::noise::QuantumError::depolarizing(e, 1);
                for name in [
                    "u", "h", "x", "y", "z", "s", "sdg", "t", "tdg", "rx", "ry", "rz", "p", "sx",
                    "sxdg", "id",
                ] {
                    noise.add_local_error(name, vec![q], channel.clone());
                }
            }
        }
        for &((c, t), e) in &self.cx_error {
            if e > 0.0 {
                noise.add_local_error(
                    "cx",
                    vec![c, t],
                    qukit_aer::noise::QuantumError::depolarizing(e, 2),
                );
            }
        }
        // Readout: the NoiseModel supports a single global readout error;
        // use the worst qubit as the conservative device-wide figure.
        if let Some(worst) = self
            .readout_fidelity
            .iter()
            .copied()
            .fold(None::<f64>, |acc, f| Some(acc.map_or(f, |a| a.min(f))))
        {
            if worst < 1.0 {
                noise.set_readout_error(qukit_aer::noise::ReadoutError::symmetric(1.0 - worst));
            }
        }
        noise
    }

    /// The layout strategy implied by the calibration.
    pub fn layout_strategy(&self) -> qukit_terra::transpiler::InitialLayout {
        qukit_terra::transpiler::InitialLayout::NoiseAware {
            edge_fidelity: self
                .cx_error
                .iter()
                .map(|&((a, b), e)| ((a, b), (1.0 - e).clamp(0.0, 1.0)))
                .collect(),
            qubit_fidelity: self.readout_fidelity.clone(),
        }
    }
}
