//! Multi-tenant fair-share scheduling and admission control.
//!
//! The paper's cloud queue is shared by many users at once; a single
//! FIFO would let one chatty tenant starve everyone else. This module
//! replaces the executor's mpsc channel with a weighted-fair queue:
//! every tenant owns three priority FIFOs (high/normal/low) and a
//! *virtual time* that advances by `1/weight` per dequeue. Workers
//! always pop from the tenant with the smallest virtual time, so over
//! any window tenants receive service proportional to their weights —
//! a tenant with weight 2 gets twice the turns of a weight-1 tenant —
//! while each tenant's own jobs stay FIFO within a priority class.
//!
//! Admission control is two-level: a global `capacity` bound (the
//! legacy "queue is full" error) and a per-tenant `max_pending` depth.
//! A tenant over its depth is *load-shed* — the scheduler reports
//! [`Admission::TenantFull`] and the executor turns that into a typed
//! `Rejected` job status instead of queueing unboundedly.
//!
//! The scheduler is deliberately free of clocks and threads: fairness
//! is a pure function of the push/pop sequence, which is what makes the
//! interleaving tests below deterministic.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// Priority class of a submission. Within one tenant, higher classes
/// are always served first; across tenants, weighted fairness wins.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Served before everything else the tenant has queued.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Served only when the tenant has nothing more urgent.
    Low,
}

impl Priority {
    fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// The wire name used in journal records (`high`/`normal`/`low`).
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Parses a wire name back into a priority.
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "low" => Some(Priority::Low),
            _ => None,
        }
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-tenant scheduling parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantConfig {
    /// Fair-share weight: a weight-`w` tenant receives `w` dequeues for
    /// every one a weight-1 tenant gets (minimum effective weight 1).
    pub weight: u32,
    /// Maximum jobs the tenant may have waiting in the queue; further
    /// submissions are load-shed with a `Rejected` status.
    pub max_pending: usize,
}

impl Default for TenantConfig {
    /// Weight 1 and a 256-job pending bound.
    fn default() -> Self {
        Self { weight: 1, max_pending: 256 }
    }
}

impl TenantConfig {
    /// A config with no per-tenant depth bound (the global queue
    /// capacity still applies). Used for the legacy `default` tenant so
    /// pre-session submitters keep their exact semantics.
    pub fn unbounded() -> Self {
        Self { weight: 1, max_pending: usize::MAX }
    }

    /// Builder: sets the fair-share weight.
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// Builder: sets the pending-depth bound.
    pub fn with_max_pending(mut self, max_pending: usize) -> Self {
        self.max_pending = max_pending;
        self
    }
}

/// The verdict of an admission check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admission {
    /// The entry was queued.
    Accepted,
    /// The tenant is over its `max_pending` depth; the entry was shed.
    TenantFull { queued: usize, max_pending: usize },
    /// The global queue capacity is exhausted.
    QueueFull,
    /// The scheduler was closed (executor shutting down).
    Closed,
}

struct TenantQueue<T> {
    config: TenantConfig,
    /// Virtual service time; the next dequeue goes to the minimum.
    vtime: f64,
    /// One FIFO per priority class, indexed by [`Priority::index`].
    queues: [VecDeque<T>; 3],
    queued: usize,
}

impl<T> TenantQueue<T> {
    fn new(config: TenantConfig) -> Self {
        Self {
            config,
            vtime: 0.0,
            queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            queued: 0,
        }
    }

    fn pop_front(&mut self) -> Option<T> {
        for queue in &mut self.queues {
            if let Some(item) = queue.pop_front() {
                self.queued -= 1;
                return Some(item);
            }
        }
        None
    }
}

struct SchedState<T> {
    tenants: BTreeMap<String, TenantQueue<T>>,
    total_queued: usize,
    capacity: usize,
    /// Virtual-time floor: an idle tenant re-enters at the current
    /// service level instead of its stale (small) vtime, so going quiet
    /// cannot bank credit against busy tenants.
    floor: f64,
    closed: bool,
}

/// A weighted-fair, priority-aware, bounded multi-tenant queue.
///
/// Thread-safe: producers call [`push`](Scheduler::push), consumers
/// block in [`pop`](Scheduler::pop) until an entry or close arrives.
pub(crate) struct Scheduler<T> {
    state: Mutex<SchedState<T>>,
    available: Condvar,
}

impl<T> Scheduler<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(SchedState {
                tenants: BTreeMap::new(),
                total_queued: 0,
                capacity: capacity.max(1),
                floor: 0.0,
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SchedState<T>> {
        self.state.lock().expect("scheduler lock")
    }

    /// Registers (or reconfigures) a tenant. Tenants are also created
    /// implicitly on first push with the default config.
    pub(crate) fn set_tenant(&self, tenant: &str, config: TenantConfig) {
        let mut state = self.lock();
        let floor = state.floor;
        state.tenants.entry(tenant.to_owned()).and_modify(|t| t.config = config).or_insert_with(
            || {
                let mut queue = TenantQueue::new(config);
                queue.vtime = floor;
                queue
            },
        );
    }

    /// Admission check without queueing: would a push for `tenant` be
    /// accepted right now? (Best-effort — concurrent pushes can still
    /// race to the last slot.)
    pub(crate) fn would_admit(&self, tenant: &str) -> Admission {
        let state = self.lock();
        admission_of(&state, tenant)
    }

    /// Queues an entry for `tenant`, enforcing both the global capacity
    /// and the tenant's pending bound.
    pub(crate) fn push(&self, tenant: &str, priority: Priority, item: T) -> Admission {
        let mut state = self.lock();
        let verdict = admission_of(&state, tenant);
        if verdict != Admission::Accepted {
            return verdict;
        }
        push_unchecked_locked(&mut state, tenant, priority, item);
        drop(state);
        self.available.notify_one();
        Admission::Accepted
    }

    /// Queues an entry bypassing admission bounds. Used for journal
    /// replay: replayed jobs were admitted before the crash, and
    /// re-shedding them would violate exactly-once recovery.
    pub(crate) fn push_replayed(&self, tenant: &str, priority: Priority, item: T) {
        let mut state = self.lock();
        if state.closed {
            return;
        }
        push_unchecked_locked(&mut state, tenant, priority, item);
        drop(state);
        self.available.notify_one();
    }

    /// Blocks until an entry is available (returning the owning tenant
    /// and the entry) or the scheduler is closed and drained (`None`).
    pub(crate) fn pop(&self) -> Option<(String, T)> {
        let mut state = self.lock();
        loop {
            if state.total_queued > 0 {
                return Some(pop_fair_locked(&mut state));
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("scheduler lock");
        }
    }

    /// Closes the queue; queued entries still drain through `pop`.
    pub(crate) fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// Closes the queue and discards everything still waiting,
    /// returning the discarded entries (crash simulation: queued work
    /// is lost exactly like a killed process loses its channel).
    pub(crate) fn close_discard(&self) -> Vec<T> {
        let mut state = self.lock();
        state.closed = true;
        let mut dropped = Vec::new();
        for tenant in state.tenants.values_mut() {
            for queue in &mut tenant.queues {
                dropped.extend(queue.drain(..));
            }
            tenant.queued = 0;
        }
        state.total_queued = 0;
        drop(state);
        self.available.notify_all();
        dropped
    }

    /// Total entries currently queued across all tenants.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.lock().total_queued
    }
}

fn admission_of<T>(state: &SchedState<T>, tenant: &str) -> Admission {
    if state.closed {
        return Admission::Closed;
    }
    if state.total_queued >= state.capacity {
        return Admission::QueueFull;
    }
    if let Some(queue) = state.tenants.get(tenant) {
        if queue.queued >= queue.config.max_pending {
            return Admission::TenantFull {
                queued: queue.queued,
                max_pending: queue.config.max_pending,
            };
        }
    }
    Admission::Accepted
}

fn push_unchecked_locked<T>(state: &mut SchedState<T>, tenant: &str, priority: Priority, item: T) {
    let floor = state.floor;
    let queue = state.tenants.entry(tenant.to_owned()).or_insert_with(|| {
        let mut tq = TenantQueue::new(TenantConfig::default());
        tq.vtime = floor;
        tq
    });
    if queue.queued == 0 {
        // Re-activating tenant: no banked credit from its idle period.
        queue.vtime = queue.vtime.max(floor);
    }
    queue.queues[priority.index()].push_back(item);
    queue.queued += 1;
    state.total_queued += 1;
}

fn pop_fair_locked<T>(state: &mut SchedState<T>) -> (String, T) {
    let name = state
        .tenants
        .iter()
        .filter(|(_, t)| t.queued > 0)
        .min_by(|(a_name, a), (b_name, b)| {
            a.vtime
                .partial_cmp(&b.vtime)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a_name.cmp(b_name))
        })
        .map(|(name, _)| name.clone())
        .expect("total_queued > 0 implies a non-empty tenant");
    let tenant = state.tenants.get_mut(&name).expect("tenant exists");
    let item = tenant.pop_front().expect("tenant has queued entries");
    state.floor = tenant.vtime;
    tenant.vtime += 1.0 / f64::from(tenant.config.weight.max(1));
    state.total_queued -= 1;
    (name, item)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(sched: &Scheduler<u32>) -> Vec<(String, u32)> {
        let mut out = Vec::new();
        while sched.len() > 0 {
            out.push(sched.pop().expect("queued entry"));
        }
        out
    }

    #[test]
    fn single_tenant_is_fifo_within_priority() {
        let sched = Scheduler::new(16);
        for i in 0..4 {
            assert_eq!(sched.push("a", Priority::Normal, i), Admission::Accepted);
        }
        let order: Vec<u32> = drain(&sched).into_iter().map(|(_, i)| i).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn high_priority_jumps_the_tenant_queue() {
        let sched = Scheduler::new(16);
        sched.push("a", Priority::Normal, 1);
        sched.push("a", Priority::Low, 2);
        sched.push("a", Priority::High, 3);
        sched.push("a", Priority::Normal, 4);
        let order: Vec<u32> = drain(&sched).into_iter().map(|(_, i)| i).collect();
        assert_eq!(order, vec![3, 1, 4, 2], "high first, then normals FIFO, low last");
    }

    #[test]
    fn equal_weights_interleave_fairly() {
        let sched = Scheduler::new(32);
        for i in 0..3 {
            sched.push("a", Priority::Normal, i);
            sched.push("b", Priority::Normal, 10 + i);
        }
        let tenants: Vec<String> = drain(&sched).into_iter().map(|(t, _)| t).collect();
        assert_eq!(tenants, vec!["a", "b", "a", "b", "a", "b"], "round-robin at equal weight");
    }

    #[test]
    fn weights_skew_service_proportionally() {
        let sched = Scheduler::new(64);
        sched.set_tenant("heavy", TenantConfig::default().with_weight(2));
        sched.set_tenant("light", TenantConfig::default().with_weight(1));
        for i in 0..6 {
            sched.push("heavy", Priority::Normal, i);
            sched.push("light", Priority::Normal, 100 + i);
        }
        // In any window of 3 dequeues, heavy gets ~2 and light ~1.
        let first_six: Vec<String> = drain(&sched).into_iter().take(6).map(|(t, _)| t).collect();
        let heavy = first_six.iter().filter(|t| *t == "heavy").count();
        assert_eq!(heavy, 4, "weight-2 tenant takes 2/3 of the first 6 slots: {first_six:?}");
    }

    #[test]
    fn idle_tenant_rejoins_at_the_floor_without_banked_credit() {
        let sched = Scheduler::new(64);
        // "b" stays idle while "a" consumes service.
        for i in 0..4 {
            sched.push("a", Priority::Normal, i);
        }
        for _ in 0..4 {
            sched.pop();
        }
        // Now both submit; "b" must not get 4 dequeues of catch-up.
        for i in 0..3 {
            sched.push("a", Priority::Normal, i);
            sched.push("b", Priority::Normal, 10 + i);
        }
        let tenants: Vec<String> = drain(&sched).into_iter().map(|(t, _)| t).collect();
        let first_two_b = tenants.iter().take(2).filter(|t| *t == "b").count();
        assert!(first_two_b <= 1, "no catch-up burst for the idle tenant: {tenants:?}");
    }

    #[test]
    fn tenant_depth_bound_sheds_and_global_capacity_rejects() {
        let sched = Scheduler::new(3);
        sched.set_tenant("bounded", TenantConfig::default().with_max_pending(1));
        assert_eq!(sched.push("bounded", Priority::Normal, 1), Admission::Accepted);
        assert_eq!(
            sched.push("bounded", Priority::Normal, 2),
            Admission::TenantFull { queued: 1, max_pending: 1 }
        );
        assert_eq!(sched.push("other", Priority::Normal, 3), Admission::Accepted);
        assert_eq!(sched.push("other", Priority::Normal, 4), Admission::Accepted);
        assert_eq!(sched.push("other", Priority::Normal, 5), Admission::QueueFull);
    }

    #[test]
    fn close_discard_reports_dropped_entries() {
        let sched = Scheduler::new(8);
        sched.push("a", Priority::Normal, 1);
        sched.push("b", Priority::High, 2);
        let dropped = sched.close_discard();
        assert_eq!(dropped.len(), 2);
        assert_eq!(sched.pop(), None, "closed and empty");
        assert_eq!(sched.push("a", Priority::Normal, 3), Admission::Closed);
    }

    #[test]
    fn priority_wire_names_round_trip() {
        for p in [Priority::High, Priority::Normal, Priority::Low] {
            assert_eq!(Priority::parse(p.name()), Some(p));
        }
        assert_eq!(Priority::parse("urgent"), None);
    }
}
