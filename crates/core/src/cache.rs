//! Content-addressed result caching for repeated submissions.
//!
//! Production quantum workloads are repetitive: variational loops and
//! benchmark sweeps submit the *same* circuit to the *same* backend
//! thousands of times. Simulating each copy from scratch wastes the
//! service's scarce resource. This cache keys a finished job's outcome
//! **distribution** by `hash(emitted circuit, backend name, backend
//! noise fingerprint)`; a later submission with the same key skips the
//! simulator entirely and draws fresh shots from the cached
//! distribution — statistically a new run (each hit uses a different
//! deterministic seed), at the cost of a multinomial sample.
//!
//! The cache stores normalized probabilities, not raw counts, so a hit
//! can serve any shot count. It is bounded (least-recently-used
//! eviction) and **off by default**: exact bit-for-bit reproducibility
//! of a seeded backend is part of the executor's contract, and a cache
//! hit is sampled from the empirical distribution, not replayed from
//! the backend's RNG. Opt in via `ExecutorConfig::cache`.

use qukit_aer::counts::Counts;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Configuration of the executor's result cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum cached distributions before LRU eviction.
    pub capacity: usize,
}

impl Default for CacheConfig {
    /// 256 cached distributions.
    fn default() -> Self {
        Self { capacity: 256 }
    }
}

impl CacheConfig {
    /// Builder: sets the entry capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }
}

/// A cached outcome distribution: cumulative probabilities over the
/// observed outcomes, ready for CDF inversion sampling.
#[derive(Debug)]
pub struct CachedDistribution {
    num_clbits: usize,
    /// `(outcome, cumulative probability)` in ascending outcome order;
    /// the final cumulative value is 1.0 (up to rounding).
    cdf: Vec<(u64, f64)>,
}

impl CachedDistribution {
    fn from_counts(counts: &Counts) -> Self {
        let total = counts.total().max(1) as f64;
        let mut pairs: Vec<(u64, usize)> = counts.iter().collect();
        pairs.sort_unstable();
        let mut acc = 0.0;
        let cdf = pairs
            .into_iter()
            .map(|(outcome, n)| {
                acc += n as f64 / total;
                (outcome, acc)
            })
            .collect();
        Self { num_clbits: counts.num_clbits(), cdf }
    }

    /// Draws `shots` outcomes by CDF inversion with a deterministic
    /// SplitMix64 stream seeded by `seed`.
    pub fn sample(&self, shots: usize, seed: u64) -> Counts {
        let mut counts = Counts::new(self.num_clbits);
        let mut state = seed;
        for _ in 0..shots {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let u = (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64;
            let outcome = self
                .cdf
                .iter()
                .find(|&&(_, cum)| u < cum)
                .or(self.cdf.last())
                .map_or(0, |&(outcome, _)| outcome);
            counts.record(outcome);
        }
        counts
    }
}

struct CacheEntry {
    distribution: Arc<CachedDistribution>,
    producer_trace: u64,
    last_used: u64,
}

/// A successful cache probe: the distribution to re-sample plus the
/// trace id of the job whose run produced it, so a cache-hit span can
/// *link* to the producing trace instead of faking an execution.
#[derive(Debug, Clone)]
pub struct CacheHit {
    /// The cached outcome distribution.
    pub distribution: Arc<CachedDistribution>,
    /// Trace id of the producing job (0 when unknown).
    pub producer_trace: u64,
}

struct CacheState {
    entries: HashMap<u128, CacheEntry>,
    tick: u64,
}

/// The bounded, content-addressed result cache.
pub struct ResultCache {
    capacity: usize,
    state: Mutex<CacheState>,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ResultCache(capacity={})", self.capacity)
    }
}

impl ResultCache {
    /// An empty cache with the configured capacity (minimum 1).
    pub fn new(config: CacheConfig) -> Self {
        Self {
            capacity: config.capacity.max(1),
            state: Mutex::new(CacheState { entries: HashMap::new(), tick: 0 }),
        }
    }

    /// The content-address of a submission: the emitted circuit text,
    /// the backend name, and the backend's noise/seed fingerprint (see
    /// [`Backend::fingerprint`](crate::backend::Backend::fingerprint)).
    /// Two 64-bit FNV-1a streams with distinct bases make up the
    /// 128-bit key, so unrelated submissions colliding is negligible.
    pub fn key(qasm: &str, backend: &str, fingerprint: u64) -> u128 {
        let mut lo = FNV_OFFSET;
        let mut hi = FNV_OFFSET ^ 0x5bd1_e995_9d02_9c4f;
        for chunk in [qasm.as_bytes(), &[0xff], backend.as_bytes(), &fingerprint.to_le_bytes()] {
            for &byte in chunk {
                lo = fnv_step(lo, byte);
                hi = fnv_step(hi, byte.wrapping_add(0x33));
            }
        }
        (u128::from(hi) << 64) | u128::from(lo)
    }

    /// Looks up a distribution, recording hit/miss metrics and LRU
    /// recency.
    pub fn lookup(&self, key: u128) -> Option<CacheHit> {
        let mut state = self.state.lock().expect("cache lock");
        state.tick += 1;
        let tick = state.tick;
        match state.entries.get_mut(&key) {
            Some(entry) => {
                entry.last_used = tick;
                qukit_obs::counter_inc("qukit_core_cache_hits_total");
                Some(CacheHit {
                    distribution: Arc::clone(&entry.distribution),
                    producer_trace: entry.producer_trace,
                })
            }
            None => {
                qukit_obs::counter_inc("qukit_core_cache_misses_total");
                None
            }
        }
    }

    /// Stores the distribution of a finished run under the trace id of
    /// the job that produced it, evicting the least-recently-used entry
    /// when over capacity.
    pub fn insert(&self, key: u128, counts: &Counts, producer_trace: u64) {
        let distribution = Arc::new(CachedDistribution::from_counts(counts));
        let mut state = self.state.lock().expect("cache lock");
        state.tick += 1;
        let tick = state.tick;
        if !state.entries.contains_key(&key) && state.entries.len() >= self.capacity {
            if let Some(&victim) =
                state.entries.iter().min_by_key(|(_, entry)| entry.last_used).map(|(key, _)| key)
            {
                state.entries.remove(&victim);
                qukit_obs::counter_inc("qukit_core_cache_evictions_total");
            }
        }
        state.entries.insert(key, CacheEntry { distribution, producer_trace, last_used: tick });
        qukit_obs::counter_inc("qukit_core_cache_insertions_total");
        qukit_obs::gauge_set("qukit_core_cache_entries", state.entries.len() as f64);
    }

    /// Number of cached distributions.
    pub fn len(&self) -> usize {
        self.state.lock().expect("cache lock").entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv_step(hash: u64, byte: u8) -> u64 {
    (hash ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3)
}

/// 64-bit FNV-1a, shared with backend fingerprinting.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET, |hash, &byte| fnv_step(hash, byte))
}

fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bell_counts() -> Counts {
        let mut counts = Counts::new(2);
        counts.record_n(0b00, 480);
        counts.record_n(0b11, 520);
        counts
    }

    #[test]
    fn keys_separate_circuit_backend_and_fingerprint() {
        let base = ResultCache::key("qasm-a", "qasm_simulator", 1);
        assert_eq!(base, ResultCache::key("qasm-a", "qasm_simulator", 1));
        assert_ne!(base, ResultCache::key("qasm-b", "qasm_simulator", 1));
        assert_ne!(base, ResultCache::key("qasm-a", "dd_simulator", 1));
        assert_ne!(base, ResultCache::key("qasm-a", "qasm_simulator", 2));
    }

    #[test]
    fn sample_preserves_support_and_total() {
        let dist = CachedDistribution::from_counts(&bell_counts());
        let sampled = dist.sample(1000, 42);
        assert_eq!(sampled.total(), 1000);
        let outcomes: Vec<u64> = sampled.iter().map(|(o, _)| o).collect();
        assert!(outcomes.iter().all(|o| *o == 0b00 || *o == 0b11), "support preserved");
        // Both outcomes near p=0.5 appear in 1000 shots.
        assert_eq!(outcomes.len(), 2, "both outcomes sampled: {outcomes:?}");
        // Frequencies track the distribution loosely (p≈.48/.52).
        let zero = sampled.iter().find(|(o, _)| *o == 0).map_or(0, |(_, n)| n);
        assert!((300..700).contains(&zero), "p~0.48 outcome sampled {zero}/1000");
    }

    #[test]
    fn sampling_is_deterministic_per_seed_and_varies_across_seeds() {
        let dist = CachedDistribution::from_counts(&bell_counts());
        let pairs = |c: &Counts| {
            let mut v: Vec<(u64, usize)> = c.iter().collect();
            v.sort_unstable();
            v
        };
        assert_eq!(pairs(&dist.sample(500, 7)), pairs(&dist.sample(500, 7)));
        assert_ne!(pairs(&dist.sample(500, 7)), pairs(&dist.sample(500, 8)));
    }

    #[test]
    fn lookup_miss_then_insert_then_hit() {
        let cache = ResultCache::new(CacheConfig { capacity: 4 });
        let key = ResultCache::key("qasm", "qasm_simulator", 0);
        assert!(cache.lookup(key).is_none());
        cache.insert(key, &bell_counts(), 4242);
        let hit = cache.lookup(key).expect("cached");
        assert_eq!(hit.producer_trace, 4242, "hit names the producing trace");
        assert_eq!(hit.distribution.sample(10, 1).total(), 10);
    }

    #[test]
    fn eviction_removes_the_least_recently_used_entry() {
        let cache = ResultCache::new(CacheConfig { capacity: 2 });
        let (a, b, c) = (
            ResultCache::key("a", "x", 0),
            ResultCache::key("b", "x", 0),
            ResultCache::key("c", "x", 0),
        );
        cache.insert(a, &bell_counts(), 0);
        cache.insert(b, &bell_counts(), 0);
        assert!(cache.lookup(a).is_some(), "touch a so b is LRU");
        cache.insert(c, &bell_counts(), 0);
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(b).is_none(), "b was evicted");
        assert!(cache.lookup(a).is_some() && cache.lookup(c).is_some());
    }
}
