//! The one-call execution pipeline.
//!
//! `execute(&circuit, &backend, shots)` is the toolchain's equivalent of
//! the paper's `execute(measured_circ, backend=...)`: it adds terminal
//! measurements if the caller forgot them, lets the backend transpile as
//! needed, and returns the counts histogram.

use crate::backend::Backend;
use crate::error::{QukitError, Result};
use qukit_aer::counts::Counts;
use qukit_terra::circuit::QuantumCircuit;

/// Validates a submission before it reaches a backend or the job queue.
///
/// Shared by [`execute`] and
/// [`JobExecutor::submit`](crate::job::JobExecutor::submit) so both
/// entry points reject malformed work identically and up front.
///
/// # Errors
///
/// [`QukitError::InvalidInput`] when `shots` is zero or the circuit is
/// wider than the backend.
pub fn validate_submission(
    circuit: &QuantumCircuit,
    backend: &dyn Backend,
    shots: usize,
) -> Result<()> {
    if shots == 0 {
        return Err(QukitError::InvalidInput {
            msg: "shots must be at least 1 (a zero-shot run produces no counts)".to_owned(),
        });
    }
    if circuit.num_qubits() > backend.num_qubits() {
        return Err(QukitError::InvalidInput {
            msg: format!(
                "circuit uses {} qubits but backend '{}' has only {}",
                circuit.num_qubits(),
                backend.name(),
                backend.num_qubits()
            ),
        });
    }
    Ok(())
}

/// Executes a circuit on a backend, measuring all qubits if the circuit
/// contains no measurement.
///
/// # Errors
///
/// [`QukitError::InvalidInput`] for zero shots or a circuit wider than
/// the backend (see [`validate_submission`]); otherwise propagates
/// backend errors (unsupported instructions, …).
///
/// # Examples
///
/// ```
/// use qukit::backend::QasmSimulatorBackend;
/// use qukit::execute::execute;
/// use qukit_terra::circuit::QuantumCircuit;
///
/// # fn main() -> Result<(), qukit::error::QukitError> {
/// let mut bell = QuantumCircuit::new(2);
/// bell.h(0).unwrap();
/// bell.cx(0, 1).unwrap();
/// let counts = execute(&bell, &QasmSimulatorBackend::new().with_seed(1), 100)?;
/// assert_eq!(counts.total(), 100);
/// # Ok(())
/// # }
/// ```
pub fn execute(circuit: &QuantumCircuit, backend: &dyn Backend, shots: usize) -> Result<Counts> {
    validate_submission(circuit, backend, shots)?;
    if circuit.has_measurements() {
        backend.run(circuit, shots)
    } else {
        let mut measured = circuit.clone();
        measured.measure_all();
        backend.run(&measured, shots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{DdSimulatorBackend, FakeDevice, QasmSimulatorBackend};

    fn ghz() -> QuantumCircuit {
        let mut circ = QuantumCircuit::new(3);
        circ.h(0).unwrap();
        circ.cx(0, 1).unwrap();
        circ.cx(1, 2).unwrap();
        circ
    }

    #[test]
    fn auto_measurement_is_added() {
        let counts = execute(&ghz(), &QasmSimulatorBackend::new().with_seed(1), 400).unwrap();
        assert_eq!(counts.total(), 400);
        assert_eq!(counts.num_clbits(), 3);
        assert_eq!(counts.get_value(0) + counts.get_value(0b111), 400);
    }

    #[test]
    fn existing_measurements_are_respected() {
        let mut circ = QuantumCircuit::with_size(2, 1);
        circ.x(1).unwrap();
        circ.measure(1, 0).unwrap();
        let counts = execute(&circ, &QasmSimulatorBackend::new().with_seed(2), 100).unwrap();
        assert_eq!(counts.num_clbits(), 1);
        assert_eq!(counts.get_value(1), 100);
    }

    #[test]
    fn zero_shots_is_rejected() {
        let err = execute(&ghz(), &QasmSimulatorBackend::new(), 0).unwrap_err();
        assert!(matches!(err, crate::error::QukitError::InvalidInput { .. }));
        assert!(err.to_string().contains("shots"));
    }

    #[test]
    fn too_wide_circuit_is_rejected_with_backend_name() {
        let wide = QuantumCircuit::new(6);
        let err = execute(&wide, &FakeDevice::ibmqx4(), 100).unwrap_err();
        assert!(matches!(err, crate::error::QukitError::InvalidInput { .. }));
        let msg = err.to_string();
        assert!(msg.contains("6 qubits"), "{msg}");
        assert!(msg.contains("ibmqx4"), "{msg}");
        assert!(msg.contains("5"), "{msg}");
    }

    #[test]
    fn width_equal_to_backend_is_accepted() {
        let mut circ = QuantumCircuit::new(5);
        circ.h(0).unwrap();
        let counts = execute(&circ, &FakeDevice::ibmqx4().with_seed(4), 100).unwrap();
        assert_eq!(counts.total(), 100);
    }

    #[test]
    fn same_circuit_all_three_backend_kinds() {
        let circ = ghz();
        let qasm = execute(&circ, &QasmSimulatorBackend::new().with_seed(3), 1500).unwrap();
        let dd = execute(&circ, &DdSimulatorBackend::new().with_seed(3), 1500).unwrap();
        let device = execute(
            &circ,
            &FakeDevice::ibmqx4().with_noise(qukit_aer::noise::NoiseModel::new()).with_seed(3),
            1500,
        )
        .unwrap();
        for counts in [&qasm, &dd, &device] {
            let p = counts.probability(0) + counts.probability(0b111);
            assert!(p > 0.999, "GHZ mass {p}");
        }
        // The noiseless device must agree with the ideal simulator closely.
        let f = qasm.hellinger_fidelity(&dd);
        assert!(f > 0.99, "fidelity {f}");
    }
}
