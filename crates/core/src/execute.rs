//! The one-call execution pipeline.
//!
//! `execute(&circuit, &backend, shots)` is the toolchain's equivalent of
//! the paper's `execute(measured_circ, backend=...)`: it adds terminal
//! measurements if the caller forgot them, lets the backend transpile as
//! needed, and returns the counts histogram.

use crate::backend::Backend;
use crate::error::Result;
use qukit_aer::counts::Counts;
use qukit_terra::circuit::QuantumCircuit;

/// Executes a circuit on a backend, measuring all qubits if the circuit
/// contains no measurement.
///
/// # Errors
///
/// Propagates backend errors (width, unsupported instructions, …).
///
/// # Examples
///
/// ```
/// use qukit::backend::QasmSimulatorBackend;
/// use qukit::execute::execute;
/// use qukit_terra::circuit::QuantumCircuit;
///
/// # fn main() -> Result<(), qukit::error::QukitError> {
/// let mut bell = QuantumCircuit::new(2);
/// bell.h(0).unwrap();
/// bell.cx(0, 1).unwrap();
/// let counts = execute(&bell, &QasmSimulatorBackend::new().with_seed(1), 100)?;
/// assert_eq!(counts.total(), 100);
/// # Ok(())
/// # }
/// ```
pub fn execute(circuit: &QuantumCircuit, backend: &dyn Backend, shots: usize) -> Result<Counts> {
    if circuit.has_measurements() {
        backend.run(circuit, shots)
    } else {
        let mut measured = circuit.clone();
        measured.measure_all();
        backend.run(&measured, shots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{DdSimulatorBackend, FakeDevice, QasmSimulatorBackend};

    fn ghz() -> QuantumCircuit {
        let mut circ = QuantumCircuit::new(3);
        circ.h(0).unwrap();
        circ.cx(0, 1).unwrap();
        circ.cx(1, 2).unwrap();
        circ
    }

    #[test]
    fn auto_measurement_is_added() {
        let counts = execute(&ghz(), &QasmSimulatorBackend::new().with_seed(1), 400).unwrap();
        assert_eq!(counts.total(), 400);
        assert_eq!(counts.num_clbits(), 3);
        assert_eq!(counts.get_value(0) + counts.get_value(0b111), 400);
    }

    #[test]
    fn existing_measurements_are_respected() {
        let mut circ = QuantumCircuit::with_size(2, 1);
        circ.x(1).unwrap();
        circ.measure(1, 0).unwrap();
        let counts = execute(&circ, &QasmSimulatorBackend::new().with_seed(2), 100).unwrap();
        assert_eq!(counts.num_clbits(), 1);
        assert_eq!(counts.get_value(1), 100);
    }

    #[test]
    fn same_circuit_all_three_backend_kinds() {
        let circ = ghz();
        let qasm = execute(&circ, &QasmSimulatorBackend::new().with_seed(3), 1500).unwrap();
        let dd = execute(&circ, &DdSimulatorBackend::new().with_seed(3), 1500).unwrap();
        let device = execute(
            &circ,
            &FakeDevice::ibmqx4()
                .with_noise(qukit_aer::noise::NoiseModel::new())
                .with_seed(3),
            1500,
        )
        .unwrap();
        for counts in [&qasm, &dd, &device] {
            let p = counts.probability(0) + counts.probability(0b111);
            assert!(p > 0.999, "GHZ mass {p}");
        }
        // The noiseless device must agree with the ideal simulator closely.
        let f = qasm.hellinger_fidelity(&dd);
        assert!(f > 0.99, "fidelity {f}");
    }
}
