//! The backend provider.
//!
//! Mirrors the paper's access pattern
//! (`IBMQ.load_accounts(); IBMQ.get_backend('ibmqx4')`): a registry of
//! available backends looked up by name.

use crate::backend::{
    Backend, DdSimulatorBackend, FakeDevice, QasmSimulatorBackend, StabilizerBackend,
};
use crate::error::{QukitError, Result};

/// A registry of execution backends.
///
/// # Examples
///
/// ```
/// use qukit::provider::Provider;
///
/// let provider = Provider::with_defaults();
/// let backend = provider.get_backend("ibmqx4").unwrap();
/// assert_eq!(backend.num_qubits(), 5);
/// ```
#[derive(Default)]
pub struct Provider {
    backends: Vec<Box<dyn Backend>>,
}

impl Provider {
    /// An empty provider.
    pub fn new() -> Self {
        Self::default()
    }

    /// The standard provider: both simulators plus the three fake QX
    /// devices.
    pub fn with_defaults() -> Self {
        let mut provider = Self::new();
        provider.register(Box::new(QasmSimulatorBackend::new()));
        provider.register(Box::new(DdSimulatorBackend::new()));
        provider.register(Box::new(StabilizerBackend::new()));
        provider.register(Box::new(FakeDevice::ibmqx2()));
        provider.register(Box::new(FakeDevice::ibmqx4()));
        provider.register(Box::new(FakeDevice::ibmqx5()));
        provider
    }

    /// Registers a backend. Re-registering a name replaces the previous
    /// entry (**last registration wins**), so tests and tools can swap a
    /// default backend for an instrumented one — e.g. a
    /// [`FaultInjectingBackend`](crate::fault::FaultInjectingBackend)
    /// wrapping it — without lookup ambiguity.
    pub fn register(&mut self, backend: Box<dyn Backend>) {
        self.backends.retain(|b| b.name() != backend.name());
        self.backends.push(backend);
    }

    /// Applies a parallel-execution configuration to every registered
    /// backend that supports one (see
    /// [`Backend::set_parallel`](crate::backend::Backend::set_parallel)).
    /// Backends without a parallel path ignore the call.
    pub fn set_parallel(&mut self, config: qukit_aer::parallel::ParallelConfig) {
        for backend in &mut self.backends {
            backend.set_parallel(config);
        }
    }

    /// Lists the registered backend names.
    pub fn backend_names(&self) -> Vec<&str> {
        self.backends.iter().map(|b| b.name()).collect()
    }

    /// Looks up a backend by name. Names are unique by construction
    /// ([`register`](Provider::register) replaces duplicates), so the
    /// lookup is unambiguous and always returns the most recently
    /// registered backend of that name.
    ///
    /// # Errors
    ///
    /// Returns [`QukitError::Backend`] when no backend has that name.
    pub fn get_backend(&self, name: &str) -> Result<&dyn Backend> {
        self.backends.iter().map(|b| b.as_ref()).find(|b| b.name() == name).ok_or_else(|| {
            QukitError::Backend {
                msg: format!(
                    "unknown backend '{name}' (available: {})",
                    self.backends.iter().map(|b| b.name()).collect::<Vec<_>>().join(", ")
                ),
            }
        })
    }
}

impl std::fmt::Debug for Provider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Provider").field("backends", &self.backend_names()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_provider_lists_expected_backends() {
        let provider = Provider::with_defaults();
        let names = provider.backend_names();
        for expected in
            ["qasm_simulator", "dd_simulator", "stabilizer_simulator", "ibmqx2", "ibmqx4", "ibmqx5"]
        {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn lookup_by_name() {
        let provider = Provider::with_defaults();
        assert_eq!(provider.get_backend("ibmqx5").unwrap().num_qubits(), 16);
        let err = match provider.get_backend("ibmqx99") {
            Err(e) => e,
            Ok(_) => panic!("lookup should fail"),
        };
        assert!(err.to_string().contains("unknown backend"));
        assert!(err.to_string().contains("available"));
    }

    #[test]
    fn custom_registration() {
        let mut provider = Provider::new();
        assert!(provider.backend_names().is_empty());
        provider.register(Box::new(QasmSimulatorBackend::new()));
        assert_eq!(provider.backend_names(), vec!["qasm_simulator"]);
    }

    #[test]
    fn re_registration_replaces_the_previous_backend() {
        let mut provider = Provider::with_defaults();
        let before = provider.backend_names().len();
        // Replace the default qasm simulator with a seeded one.
        provider.register(Box::new(QasmSimulatorBackend::new().with_seed(7)));
        assert_eq!(provider.backend_names().len(), before, "no duplicate entry");
        assert_eq!(provider.backend_names().iter().filter(|n| **n == "qasm_simulator").count(), 1);
        // Last registration wins: a wrapped backend under the same name
        // is what lookup now returns.
        let flaky = crate::fault::FaultInjectingBackend::new(
            Box::new(QasmSimulatorBackend::new().with_seed(7)),
            crate::fault::FaultMode::AlwaysFail,
        );
        provider.register(Box::new(flaky));
        let backend = provider.get_backend("qasm_simulator").unwrap();
        let mut circ = qukit_terra::circuit::QuantumCircuit::new(1);
        circ.h(0).unwrap();
        circ.measure_all();
        assert!(backend.run(&circ, 10).is_err(), "lookup must return the fault wrapper");
    }

    #[test]
    fn debug_is_nonempty() {
        let text = format!("{:?}", Provider::with_defaults());
        assert!(text.contains("ibmqx4"));
    }
}
