//! The fault-tolerant, multi-tenant job execution service.
//!
//! The paper's user story runs circuits through the IBM Q Experience
//! cloud: submissions enter a shared queue behind other users, wait,
//! run, and sometimes fail or vanish while a device recalibrates. This
//! module reproduces that service shape locally — and, since PR 6, the
//! *robustness* a shared service needs:
//!
//! - a [`JobExecutor`] with a bounded queue and a worker pool turns
//!   `submit(circuit, backend, shots)` into a [`Job`] handle with the
//!   Qiskit-style lifecycle;
//! - per-tenant [`Session`]s ride a weighted-fair scheduler
//!   ([`crate::scheduler`]) with priority classes and admission
//!   control: a tenant over its queue depth is load-shed with a typed
//!   [`JobStatus::Rejected`] instead of growing the queue unboundedly;
//! - an optional write-ahead journal ([`crate::journal`]) makes every
//!   accepted job crash-safe: on restart the executor replays the log,
//!   re-enqueues non-terminal jobs exactly once, and deduplicates via
//!   client idempotency keys;
//! - an optional content-addressed result cache ([`crate::cache`])
//!   turns repeat submissions into a cheap re-sample of the cached
//!   distribution.
//!
//! ```text
//! Queued ──► Running ──► Done       (possibly served from cache)
//!    │          ├──────► Error      (fatal, or retries exhausted)
//!    │          ├──────► TimedOut   (attempt exceeded its budget)
//!    │          └──────► Cancelled  (cancel observed between attempts
//!    │                               or during a retry backoff)
//!    ├─────────────────► Cancelled  (cancelled while still queued)
//!    └─────────────────► Rejected   (load-shed at admission)
//! ```
//!
//! Each attempt is wrapped in the executor's [`RetryPolicy`]: transient
//! failures back off (deterministic seeded jitter) and retry, fatal
//! errors stop immediately, and hung attempts are abandoned by the
//! worker once the per-attempt timeout elapses. A cancellation during
//! the backoff wait interrupts it promptly instead of finishing the
//! sleep.

use crate::cache::{CacheConfig, ResultCache};
use crate::error::{QukitError, Result};
use crate::execute::validate_submission;
use crate::journal::{self, Journal, JournalRecord};
use crate::provider::Provider;
use crate::retry::RetryPolicy;
use crate::scheduler::{Admission, Priority, Scheduler, TenantConfig};
use qukit_aer::counts::Counts;
use qukit_terra::circuit::QuantumCircuit;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The tenant legacy [`JobExecutor::submit`] calls run under.
pub const DEFAULT_TENANT: &str = "default";

/// The lifecycle state of a [`Job`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted and waiting in the submission queue.
    Queued,
    /// A worker is executing attempts.
    Running,
    /// Finished successfully; the result is available.
    Done,
    /// Failed fatally or exhausted its retries.
    Error,
    /// Cancelled before a result was produced.
    Cancelled,
    /// An attempt exceeded the per-attempt timeout.
    TimedOut,
    /// Load-shed at admission: the tenant was over its queue depth.
    Rejected,
}

impl JobStatus {
    /// `true` once the status can no longer change.
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobStatus::Queued | JobStatus::Running)
    }

    /// Parses the wire name written to the journal (the `Display`
    /// form) back into a status.
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "QUEUED" => Some(JobStatus::Queued),
            "RUNNING" => Some(JobStatus::Running),
            "DONE" => Some(JobStatus::Done),
            "ERROR" => Some(JobStatus::Error),
            "CANCELLED" => Some(JobStatus::Cancelled),
            "TIMED_OUT" => Some(JobStatus::TimedOut),
            "REJECTED" => Some(JobStatus::Rejected),
            _ => None,
        }
    }
}

impl std::fmt::Display for JobStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let text = match self {
            JobStatus::Queued => "QUEUED",
            JobStatus::Running => "RUNNING",
            JobStatus::Done => "DONE",
            JobStatus::Error => "ERROR",
            JobStatus::Cancelled => "CANCELLED",
            JobStatus::TimedOut => "TIMED_OUT",
            JobStatus::Rejected => "REJECTED",
        };
        f.write_str(text)
    }
}

/// Mutable job state behind the handle's mutex.
#[derive(Debug)]
struct JobState {
    status: JobStatus,
    result: Option<Counts>,
    error: Option<String>,
    attempts: u32,
    backoffs: Vec<Duration>,
    executed_on: Option<String>,
    cancel_requested: bool,
    from_cache: bool,
}

/// Shared core of a job: state + wakeup for `result()` waiters.
#[derive(Debug)]
struct JobShared {
    id: u64,
    backend_name: String,
    shots: usize,
    tenant: String,
    trace_id: u64,
    journal: Option<Arc<Journal>>,
    state: Mutex<JobState>,
    cond: Condvar,
}

impl JobShared {
    fn update<T>(&self, f: impl FnOnce(&mut JobState) -> T) -> T {
        let mut state = self.state.lock().expect("job state lock");
        let out = f(&mut state);
        self.cond.notify_all();
        out
    }

    /// Waits out `backoff` unless a cancellation arrives first;
    /// returns `true` when the wait ended because of a cancel. This is
    /// what makes [`Job::cancel`] prompt during retry backoffs — the
    /// condvar is signalled by `cancel()`'s state update.
    fn wait_for_cancel(&self, backoff: Duration) -> bool {
        let deadline = Instant::now() + backoff;
        let mut state = self.state.lock().expect("job state lock");
        loop {
            if state.cancel_requested {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (next, _) = self.cond.wait_timeout(state, deadline - now).expect("job state lock");
            state = next;
        }
    }
}

/// A handle to a submitted job. Clones share the same underlying job.
///
/// See the [module docs](self) for the lifecycle; the handle exposes
/// [`status`](Job::status), blocking [`result`](Job::result) /
/// [`wait`](Job::wait), [`cancel`](Job::cancel), and the recovery
/// metadata ([`attempts`](Job::attempts), [`backoffs`](Job::backoffs),
/// [`executed_on`](Job::executed_on),
/// [`served_from_cache`](Job::served_from_cache)).
#[derive(Clone, Debug)]
pub struct Job {
    shared: Arc<JobShared>,
}

impl Job {
    fn new(
        id: u64,
        backend_name: String,
        shots: usize,
        tenant: String,
        trace_id: u64,
        journal: Option<Arc<Journal>>,
    ) -> Self {
        Self {
            shared: Arc::new(JobShared {
                id,
                backend_name,
                shots,
                tenant,
                trace_id,
                journal,
                state: Mutex::new(JobState {
                    status: JobStatus::Queued,
                    result: None,
                    error: None,
                    attempts: 0,
                    backoffs: Vec::new(),
                    executed_on: None,
                    cancel_requested: false,
                    from_cache: false,
                }),
                cond: Condvar::new(),
            }),
        }
    }

    /// The executor-unique job id.
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    /// The backend name the job was submitted to.
    pub fn backend_name(&self) -> &str {
        &self.shared.backend_name
    }

    /// The submitted shot count.
    pub fn shots(&self) -> usize {
        self.shared.shots
    }

    /// The tenant the job was submitted under.
    pub fn tenant(&self) -> &str {
        &self.shared.tenant
    }

    /// The id of the job's causal trace: every span recorded on this
    /// job's behalf — submit, queue wait, attempts, transpile passes,
    /// engine kernels — carries this id. Minted once at submission and
    /// journaled, so a journal-backed restart reconstructs the job
    /// under the *same* trace id.
    pub fn trace_id(&self) -> u64 {
        self.shared.trace_id
    }

    /// The current lifecycle status.
    pub fn status(&self) -> JobStatus {
        self.shared.state.lock().expect("job state lock").status
    }

    /// How many execution attempts have started (0 for a cache hit).
    pub fn attempts(&self) -> u32 {
        self.shared.state.lock().expect("job state lock").attempts
    }

    /// The backoffs waited before each retry, in order.
    pub fn backoffs(&self) -> Vec<Duration> {
        self.shared.state.lock().expect("job state lock").backoffs.clone()
    }

    /// The backend that actually served the result (for plain backends
    /// this equals [`backend_name`](Job::backend_name); for a
    /// [`FallbackChain`](crate::fault::FallbackChain) it names the member
    /// that succeeded). `None` until the job is `Done`.
    pub fn executed_on(&self) -> Option<String> {
        self.shared.state.lock().expect("job state lock").executed_on.clone()
    }

    /// `true` when the result was re-sampled from the executor's
    /// content-addressed cache instead of a fresh simulation.
    pub fn served_from_cache(&self) -> bool {
        self.shared.state.lock().expect("job state lock").from_cache
    }

    /// The failure message of an `Error`/`Rejected` job, if any.
    pub fn error_message(&self) -> Option<String> {
        self.shared.state.lock().expect("job state lock").error.clone()
    }

    /// Requests cancellation. A still-queued job flips to `Cancelled`
    /// immediately (and returns `true`); a running job is cancelled at
    /// the next attempt boundary — or promptly, if the worker is
    /// waiting out a retry backoff. In-flight attempts are not
    /// interrupted, matching the cloud service's semantics. Terminal
    /// jobs are unaffected.
    pub fn cancel(&self) -> bool {
        let flipped = self.shared.update(|state| {
            state.cancel_requested = true;
            if state.status == JobStatus::Queued {
                state.status = JobStatus::Cancelled;
                true
            } else {
                false
            }
        });
        if flipped {
            // This thread performed the Queued→Cancelled transition, so
            // it owns the job's (single) terminal journal record.
            journal_terminal(
                &self.shared.journal,
                self.shared.id,
                JobStatus::Cancelled,
                Some("cancelled while queued"),
                None,
                None,
            );
        }
        flipped
    }

    /// Blocks until the job reaches a terminal state or `deadline`
    /// elapses, then returns the result.
    ///
    /// # Errors
    ///
    /// - [`QukitError::WaitTimeout`] when the deadline elapses with the
    ///   job still `Queued`/`Running` — the *wait* gave up, not the
    ///   job; poll again with a longer deadline.
    /// - [`QukitError::Job`] when the job ended
    ///   `Cancelled`/`TimedOut`/`Rejected`, or with the recorded
    ///   failure for `Error` jobs.
    pub fn result(&self, deadline: Duration) -> Result<Counts> {
        let limit = Instant::now() + deadline;
        let mut state = self.shared.state.lock().expect("job state lock");
        while !state.status.is_terminal() {
            let now = Instant::now();
            if now >= limit {
                return Err(QukitError::WaitTimeout {
                    job_id: self.shared.id,
                    status: state.status.to_string(),
                    waited: deadline,
                });
            }
            let (next, timeout) =
                self.shared.cond.wait_timeout(state, limit - now).expect("job state lock");
            state = next;
            let _ = timeout;
        }
        match state.status {
            JobStatus::Done => Ok(state.result.clone().expect("done job has counts")),
            JobStatus::Error => Err(QukitError::Job {
                msg: format!(
                    "job {} failed: {}",
                    self.shared.id,
                    state.error.as_deref().unwrap_or("unknown error")
                ),
            }),
            JobStatus::Cancelled => {
                Err(QukitError::Job { msg: format!("job {} was cancelled", self.shared.id) })
            }
            JobStatus::TimedOut => Err(QukitError::Job {
                msg: format!(
                    "job {} timed out: {}",
                    self.shared.id,
                    state.error.as_deref().unwrap_or("attempt exceeded its time budget")
                ),
            }),
            JobStatus::Rejected => Err(QukitError::Job {
                msg: format!(
                    "job {} was rejected: {}",
                    self.shared.id,
                    state.error.as_deref().unwrap_or("admission control shed the submission")
                ),
            }),
            JobStatus::Queued | JobStatus::Running => unreachable!("loop exits on terminal status"),
        }
    }

    /// [`result`](Job::result) with an effectively unbounded deadline.
    pub fn wait(&self) -> Result<Counts> {
        self.result(Duration::from_secs(u64::MAX / 4))
    }
}

/// A lifecycle event emitted by the [`JobExecutor`].
///
/// Events fire synchronously on the thread where the transition happens
/// (`Enqueued`/`Rejected` on the submitting thread, everything else on
/// a worker), so observers should return quickly. Before this hook
/// existed retries were *silent*: a job could burn through five
/// attempts and the only trace was the final `attempts()` count. Every
/// recovery decision now surfaces as an event.
#[derive(Debug, Clone, PartialEq)]
pub enum JobEvent {
    /// The job was accepted into the submission queue.
    Enqueued {
        /// Executor-unique job id.
        job_id: u64,
        /// Backend the job was submitted to.
        backend: String,
    },
    /// The job was load-shed at admission (tenant over its depth).
    Rejected {
        /// Executor-unique job id.
        job_id: u64,
        /// The tenant whose bound was hit.
        tenant: String,
    },
    /// A worker dequeued the job and began its first attempt.
    Started {
        /// Executor-unique job id.
        job_id: u64,
        /// Backend the job was submitted to.
        backend: String,
    },
    /// A transient failure will be retried after `backoff`.
    Retrying {
        /// Executor-unique job id.
        job_id: u64,
        /// The attempt (1-based) that just failed.
        attempt: u32,
        /// The backoff that will be waited before the next attempt.
        backoff: Duration,
        /// The transient failure being retried.
        error: String,
    },
    /// An attempt exceeded the per-attempt budget; the job is terminal.
    TimedOut {
        /// Executor-unique job id.
        job_id: u64,
        /// The attempt (1-based) that was abandoned.
        attempt: u32,
    },
    /// The job failed fatally or exhausted its retries.
    Failed {
        /// Executor-unique job id.
        job_id: u64,
        /// Total attempts consumed.
        attempts: u32,
        /// The final failure.
        error: String,
    },
    /// The job was cancelled before producing a result.
    Cancelled {
        /// Executor-unique job id.
        job_id: u64,
        /// `true` when the job never started running (cancelled while
        /// still in the queue).
        while_queued: bool,
    },
    /// The job finished successfully.
    Completed {
        /// Executor-unique job id.
        job_id: u64,
        /// Total attempts consumed (0 when served from the cache).
        attempts: u32,
        /// Backend that actually served the result.
        executed_on: String,
        /// Submit-to-done latency (queue wait included).
        elapsed: Duration,
    },
}

impl JobEvent {
    /// The id of the job this event concerns.
    pub fn job_id(&self) -> u64 {
        match self {
            JobEvent::Enqueued { job_id, .. }
            | JobEvent::Rejected { job_id, .. }
            | JobEvent::Started { job_id, .. }
            | JobEvent::Retrying { job_id, .. }
            | JobEvent::TimedOut { job_id, .. }
            | JobEvent::Failed { job_id, .. }
            | JobEvent::Cancelled { job_id, .. }
            | JobEvent::Completed { job_id, .. } => *job_id,
        }
    }
}

/// A subscriber to [`JobEvent`]s. Implementations must be cheap and
/// thread-safe; they run inline on executor threads. Terminal events
/// are emitted *before* the job handle flips to its terminal status, so
/// a thread woken by [`Job::result`] observes every event of its job —
/// consequently observers must not block on job handles themselves.
pub trait JobObserver: Send + Sync {
    /// Called once per lifecycle event.
    fn on_event(&self, event: &JobEvent);
}

/// The default [`JobObserver`]: translates lifecycle events into
/// `qukit_core_*` metrics. Every callback is a no-op while metrics are
/// disabled, so the default wiring costs one atomic load per event.
#[derive(Debug, Clone, Copy, Default)]
pub struct MetricsJobObserver;

impl JobObserver for MetricsJobObserver {
    fn on_event(&self, event: &JobEvent) {
        match event {
            JobEvent::Enqueued { .. } => {
                qukit_obs::counter_inc("qukit_core_jobs_submitted_total");
                qukit_obs::gauge_add("qukit_core_queue_depth", 1.0);
            }
            JobEvent::Rejected { .. } => {
                qukit_obs::counter_inc("qukit_core_jobs_shed_total");
            }
            JobEvent::Started { .. } => qukit_obs::gauge_add("qukit_core_queue_depth", -1.0),
            JobEvent::Retrying { .. } => qukit_obs::counter_inc("qukit_core_job_retries_total"),
            JobEvent::TimedOut { .. } => qukit_obs::counter_inc("qukit_core_job_timeouts_total"),
            JobEvent::Failed { .. } => qukit_obs::counter_inc("qukit_core_job_failures_total"),
            JobEvent::Cancelled { while_queued, .. } => {
                qukit_obs::counter_inc("qukit_core_job_cancellations_total");
                if *while_queued {
                    qukit_obs::gauge_add("qukit_core_queue_depth", -1.0);
                }
            }
            JobEvent::Completed { elapsed, .. } => {
                qukit_obs::counter_inc("qukit_core_jobs_completed_total");
                qukit_obs::observe("qukit_core_job_seconds", elapsed.as_secs_f64());
            }
        }
    }
}

/// The set of observers an executor notifies. Cloning shares the
/// underlying observers (they are `Arc`ed).
#[derive(Clone, Default)]
pub struct ObserverSet {
    observers: Vec<Arc<dyn JobObserver>>,
}

impl ObserverSet {
    /// An empty set (no subscribers at all — not even metrics).
    pub fn none() -> Self {
        Self::default()
    }

    /// The default wiring: just the [`MetricsJobObserver`].
    pub fn metrics() -> Self {
        Self { observers: vec![Arc::new(MetricsJobObserver)] }
    }

    /// Adds an observer (builder style).
    pub fn with(mut self, observer: Arc<dyn JobObserver>) -> Self {
        self.observers.push(observer);
        self
    }

    /// Number of subscribed observers.
    pub fn len(&self) -> usize {
        self.observers.len()
    }

    /// `true` when no observers are subscribed.
    pub fn is_empty(&self) -> bool {
        self.observers.is_empty()
    }

    fn emit(&self, event: &JobEvent) {
        for observer in &self.observers {
            observer.on_event(event);
        }
    }
}

impl std::fmt::Debug for ObserverSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ObserverSet({} observers)", self.observers.len())
    }
}

/// Configuration of a [`JobExecutor`].
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Worker threads executing jobs concurrently.
    pub workers: usize,
    /// Bounded submission-queue capacity (global, across all tenants);
    /// a full queue rejects submissions with [`QukitError::Job`]
    /// instead of blocking.
    pub queue_capacity: usize,
    /// Retry policy applied to every job.
    pub retry: RetryPolicy,
    /// Lifecycle-event subscribers (defaults to the metrics layer).
    pub observers: ObserverSet,
    /// Parallel-simulation configuration pushed onto every provider
    /// backend at construction (`None` leaves backends untouched, so
    /// the environment-derived default still applies).
    pub parallel: Option<qukit_aer::parallel::ParallelConfig>,
    /// Directory for the write-ahead job journal. `None` (the default)
    /// runs without persistence; `Some(dir)` replays `dir`'s journal at
    /// construction and logs every subsequent submission/terminal.
    pub journal_dir: Option<PathBuf>,
    /// Content-addressed result cache. `None` (the default) disables
    /// caching — a seeded backend then reproduces bit-for-bit identical
    /// counts on every run, which the cache's re-sampling would not.
    pub cache: Option<CacheConfig>,
}

impl Default for ExecutorConfig {
    /// Two workers, a 64-slot queue, the default [`RetryPolicy`], the
    /// [`MetricsJobObserver`] subscribed, no journal, no cache.
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            retry: RetryPolicy::default(),
            observers: ObserverSet::metrics(),
            parallel: None,
            journal_dir: None,
            cache: None,
        }
    }
}

/// Options for [`JobExecutor::submit_with`].
#[derive(Debug, Clone)]
pub struct SubmitOptions {
    /// Tenant to schedule under (defaults to [`DEFAULT_TENANT`]).
    pub tenant: String,
    /// Priority class within the tenant.
    pub priority: Priority,
    /// Client idempotency key: resubmitting an identical key returns
    /// the original [`Job`] instead of creating a duplicate, across
    /// journal-backed restarts too.
    pub idempotency_key: Option<String>,
}

impl Default for SubmitOptions {
    fn default() -> Self {
        Self {
            tenant: DEFAULT_TENANT.to_owned(),
            priority: Priority::Normal,
            idempotency_key: None,
        }
    }
}

/// What journal replay found at executor construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Non-terminal journaled jobs re-enqueued for execution.
    pub replayed: usize,
    /// Journaled jobs recovered in a terminal state (results served
    /// from the journal, never re-run).
    pub recovered_terminal: usize,
    /// Journal lines dropped as corrupt/torn.
    pub corrupt_dropped: usize,
}

/// A queue entry: the job handle plus the work description.
struct QueuedJob {
    job: Job,
    circuit: QuantumCircuit,
    cache_key: Option<u128>,
    submitted_at: Instant,
}

/// Everything a worker thread needs, bundled for one `Arc`.
struct WorkerContext {
    provider: Arc<Provider>,
    scheduler: Scheduler<QueuedJob>,
    retry: RetryPolicy,
    observers: ObserverSet,
    journal: Option<Arc<Journal>>,
    cache: Option<ResultCache>,
}

/// The job service: weighted-fair multi-tenant queue + worker pool +
/// retry policy over a shared [`Provider`], with optional write-ahead
/// journaling and result caching.
///
/// Dropping the executor closes the queue and joins the workers;
/// already-submitted jobs finish first (abandoned hung attempts are
/// detached, not joined).
///
/// # Examples
///
/// ```
/// use qukit::job::{JobExecutor, JobStatus};
/// use qukit::provider::Provider;
/// use qukit_terra::circuit::QuantumCircuit;
/// use std::time::Duration;
///
/// # fn main() -> Result<(), qukit::error::QukitError> {
/// let executor = JobExecutor::new(Provider::with_defaults());
/// let mut bell = QuantumCircuit::new(2);
/// bell.h(0).unwrap();
/// bell.cx(0, 1).unwrap();
/// let job = executor.submit(&bell, "qasm_simulator", 256)?;
/// let counts = job.result(Duration::from_secs(30))?;
/// assert_eq!(counts.total(), 256);
/// assert_eq!(job.status(), JobStatus::Done);
/// # Ok(())
/// # }
/// ```
pub struct JobExecutor {
    ctx: Arc<WorkerContext>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
    keyed: Mutex<HashMap<String, Job>>,
    recovery: Option<RecoveryReport>,
    recovered: Vec<Job>,
}

impl JobExecutor {
    /// An executor over `provider` with the default [`ExecutorConfig`].
    pub fn new(provider: Provider) -> Self {
        Self::with_config(provider, ExecutorConfig::default())
    }

    /// An executor with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics when the journal directory cannot be opened or replayed;
    /// use [`try_with_config`](Self::try_with_config) to handle that.
    /// Configurations without `journal_dir` cannot fail.
    pub fn with_config(provider: Provider, config: ExecutorConfig) -> Self {
        Self::try_with_config(provider, config).expect("executor configuration")
    }

    /// An executor with an explicit configuration, surfacing journal
    /// open/replay failures.
    ///
    /// # Errors
    ///
    /// [`QukitError::Job`] when the journal directory cannot be
    /// created, opened, or read.
    pub fn try_with_config(mut provider: Provider, config: ExecutorConfig) -> Result<Self> {
        if let Some(parallel) = config.parallel {
            provider.set_parallel(parallel);
        }
        let provider = Arc::new(provider);
        let scheduler = Scheduler::new(config.queue_capacity);
        scheduler.set_tenant(DEFAULT_TENANT, TenantConfig::unbounded());
        let cache = config.cache.map(ResultCache::new);

        let mut keyed = HashMap::new();
        let mut recovery = None;
        let mut recovered = Vec::new();
        let mut next_id = 1u64;
        let journal_handle = match &config.journal_dir {
            Some(dir) => {
                let log = journal::replay(dir)?;
                let handle = Arc::new(Journal::open(dir)?);
                let mut report = RecoveryReport {
                    corrupt_dropped: log.corrupt_dropped,
                    ..RecoveryReport::default()
                };
                replay_records(
                    &log.records,
                    &handle,
                    &provider,
                    &scheduler,
                    cache.as_ref(),
                    &config.observers,
                    &mut keyed,
                    &mut recovered,
                    &mut next_id,
                    &mut report,
                );
                recovery = Some(report);
                Some(handle)
            }
            None => None,
        };

        let ctx = Arc::new(WorkerContext {
            provider,
            scheduler,
            retry: config.retry,
            observers: config.observers,
            journal: journal_handle,
            cache,
        });
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let ctx = Arc::clone(&ctx);
                std::thread::spawn(move || worker_loop(&ctx))
            })
            .collect();
        Ok(Self {
            ctx,
            workers,
            next_id: AtomicU64::new(next_id),
            keyed: Mutex::new(keyed),
            recovery,
            recovered,
        })
    }

    /// The executor's retry policy.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.ctx.retry
    }

    /// The provider backing this executor.
    pub fn provider(&self) -> &Provider {
        &self.ctx.provider
    }

    /// What journal replay found, when a journal is configured.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Handles to every job reconstructed from the journal (both the
    /// re-enqueued and the terminal-recovered ones), in journal order.
    pub fn recovered_jobs(&self) -> &[Job] {
        &self.recovered
    }

    /// The job previously submitted under `key`, if any — either live
    /// in this executor or recovered from the journal.
    pub fn job_for_key(&self, key: &str) -> Option<Job> {
        self.keyed.lock().expect("idempotency map lock").get(key).cloned()
    }

    /// Runs a parameter sweep synchronously: transpiles the template
    /// once (when safe, see [`crate::sweep`]) and executes every binding
    /// through the backend's batch path, bypassing per-job submission
    /// overhead (journal records, admission checks, per-binding
    /// transpilation).
    ///
    /// Results are bit-identical to submitting each binding as its own
    /// job on the same seeded backend.
    ///
    /// # Errors
    ///
    /// Unknown backend, invalid submission, binding mismatch, or
    /// execution failure.
    pub fn run_sweep(
        &self,
        template: &qukit_terra::parameter::ParameterizedCircuit,
        bindings: &[Vec<f64>],
        backend_name: &str,
        shots: usize,
    ) -> Result<crate::sweep::SweepReport> {
        let _span =
            qukit_obs::span!("job.run_sweep", backend = backend_name, bindings = bindings.len());
        let backend = self.ctx.provider.get_backend(backend_name)?;
        crate::sweep::run_sweep(backend, template, bindings, shots)
    }

    /// A per-tenant session with the default [`TenantConfig`].
    pub fn session(&self, tenant: &str) -> Session<'_> {
        self.session_with(tenant, TenantConfig::default())
    }

    /// A per-tenant session with an explicit fair-share weight and
    /// queue-depth bound. Re-creating a session reconfigures the
    /// tenant.
    pub fn session_with(&self, tenant: &str, config: TenantConfig) -> Session<'_> {
        self.ctx.scheduler.set_tenant(tenant, config);
        Session { executor: self, tenant: tenant.to_owned() }
    }

    /// Submits a circuit for asynchronous execution under the default
    /// tenant and returns its [`Job`] handle. Terminal measurements are
    /// added when missing, exactly like
    /// [`execute`](crate::execute::execute).
    ///
    /// # Errors
    ///
    /// - [`QukitError::Backend`] for an unknown backend name
    /// - [`QukitError::InvalidInput`] for zero shots or a circuit wider
    ///   than the backend (rejected up front, before queueing)
    /// - [`QukitError::Job`] when the submission queue is full or the
    ///   executor is shutting down
    pub fn submit(
        &self,
        circuit: &QuantumCircuit,
        backend_name: &str,
        shots: usize,
    ) -> Result<Job> {
        self.submit_with(circuit, backend_name, shots, &SubmitOptions::default())
    }

    /// [`submit`](Self::submit) with explicit tenant, priority, and
    /// idempotency key.
    ///
    /// Beyond the [`submit`](Self::submit) errors: a tenant over its
    /// [`TenantConfig::max_pending`] depth gets `Ok` with a job already
    /// in the terminal [`JobStatus::Rejected`] state — load shedding is
    /// an *outcome*, not a caller bug. A duplicate idempotency key
    /// returns the original job.
    pub fn submit_with(
        &self,
        circuit: &QuantumCircuit,
        backend_name: &str,
        shots: usize,
        opts: &SubmitOptions,
    ) -> Result<Job> {
        let backend = self.ctx.provider.get_backend(backend_name)?;
        validate_submission(circuit, backend, shots)?;
        let prepared = if circuit.has_measurements() {
            circuit.clone()
        } else {
            let mut measured = circuit.clone();
            measured.measure_all();
            measured
        };

        // Hold the idempotency map across the whole admission path so
        // two concurrent submits with the same key cannot both enqueue.
        let mut keyed = self.keyed.lock().expect("idempotency map lock");
        if let Some(key) = &opts.idempotency_key {
            if let Some(existing) = keyed.get(key) {
                qukit_obs::counter_inc("qukit_core_jobs_deduped_total");
                return Ok(existing.clone());
            }
        }

        // One trace per job, minted here and nowhere else. The root
        // span id equals the trace id, so journaling the trace id alone
        // is enough to rebuild the root context on recovery.
        let trace = qukit_obs::TraceContext::mint();
        let _trace_guard = trace.attach();
        let _submit_span = qukit_obs::span!(
            "job.submit",
            tenant = opts.tenant,
            backend = backend_name,
            shots = shots,
        );

        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        // Best-effort pre-check keeps shed submissions out of the
        // journal entirely; the push below re-checks authoritatively.
        let verdict = self.ctx.scheduler.would_admit(&opts.tenant);
        if verdict != Admission::Accepted {
            return self.handle_rejection(id, opts, verdict, false, trace.trace_id);
        }

        let qasm = (self.ctx.journal.is_some() || self.ctx.cache.is_some())
            .then(|| qukit_terra::qasm::emit(&prepared));
        let cache_key = match (&self.ctx.cache, &qasm) {
            (Some(_), Some(qasm)) => {
                Some(ResultCache::key(qasm, backend_name, backend.fingerprint()))
            }
            _ => None,
        };
        let job = Job::new(
            id,
            backend_name.to_owned(),
            shots,
            opts.tenant.clone(),
            trace.trace_id,
            self.ctx.journal.clone(),
        );
        if let Some(journal) = &self.ctx.journal {
            // Write-ahead: the submission is durable before it can run.
            journal.append(&JournalRecord::Submitted {
                job_id: id,
                tenant: opts.tenant.clone(),
                priority: opts.priority,
                backend: backend_name.to_owned(),
                shots,
                key: opts.idempotency_key.clone(),
                qasm: qasm.clone().unwrap_or_default(),
                trace: trace.trace_id,
            })?;
        }
        let entry = QueuedJob {
            job: job.clone(),
            circuit: prepared,
            cache_key,
            submitted_at: Instant::now(),
        };
        match self.ctx.scheduler.push(&opts.tenant, opts.priority, entry) {
            Admission::Accepted => {
                if let Some(key) = &opts.idempotency_key {
                    keyed.insert(key.clone(), job.clone());
                }
                qukit_obs::counter_inc_with(
                    "qukit_core_tenant_jobs_submitted_total",
                    &[("tenant", &opts.tenant)],
                );
                self.ctx
                    .observers
                    .emit(&JobEvent::Enqueued { job_id: id, backend: backend_name.to_owned() });
                Ok(job)
            }
            verdict => self.handle_rejection(id, opts, verdict, true, trace.trace_id),
        }
    }

    /// Turns a non-`Accepted` admission verdict into the caller-visible
    /// outcome. `journaled` says whether a `submitted` record was
    /// already written for `id` (the push lost a race to the last
    /// slot), in which case a terminal record keeps replay from
    /// resurrecting the shed job.
    fn handle_rejection(
        &self,
        id: u64,
        opts: &SubmitOptions,
        verdict: Admission,
        journaled: bool,
        trace_id: u64,
    ) -> Result<Job> {
        // The shed decision is part of the job's trace: the submit
        // span is still open on this thread, so this nests under it.
        let _shed_span = qukit_obs::span!("job.shed", tenant = opts.tenant);
        qukit_obs::counter_inc_with(
            "qukit_core_tenant_jobs_shed_total",
            &[("tenant", &opts.tenant)],
        );
        let seal = |reason: &str| {
            if journaled {
                journal_terminal(
                    &self.ctx.journal,
                    id,
                    JobStatus::Rejected,
                    Some(reason),
                    None,
                    None,
                );
            }
        };
        match verdict {
            Admission::TenantFull { queued, max_pending } => {
                let reason = format!(
                    "tenant '{}' is at its queue depth ({queued}/{max_pending}); submission shed",
                    opts.tenant
                );
                seal(&reason);
                let job = Job::new(id, String::new(), 0, opts.tenant.clone(), trace_id, None);
                job.shared.update(|state| {
                    state.status = JobStatus::Rejected;
                    state.error = Some(reason);
                });
                self.ctx
                    .observers
                    .emit(&JobEvent::Rejected { job_id: id, tenant: opts.tenant.clone() });
                Ok(job)
            }
            Admission::QueueFull => {
                let reason =
                    format!("submission queue is full (capacity reached); job {id} rejected");
                seal(&reason);
                Err(QukitError::Job { msg: reason })
            }
            Admission::Closed => {
                seal("executor is shut down");
                Err(QukitError::Job { msg: "executor is shut down".to_owned() })
            }
            Admission::Accepted => unreachable!("accepted verdicts are handled by the caller"),
        }
    }

    /// Closes the queue and waits for the workers to drain it.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    /// Simulates a process crash: seals the journal (straggler writes
    /// are dropped exactly as a dead process would drop them), discards
    /// everything still queued, and detaches the workers without
    /// joining. The journal on disk is left as the crash left it —
    /// rebuild with [`try_with_config`](Self::try_with_config) pointing
    /// at the same `journal_dir` to recover.
    pub fn crash(mut self) {
        if let Some(journal) = &self.ctx.journal {
            journal.seal();
        }
        drop(self.ctx.scheduler.close_discard());
        // Detach instead of joining: a real crash does not wait for
        // in-flight work. The threads exit on their own once their
        // current job ends (their journal appends hit the seal).
        self.workers.drain(..);
    }

    fn shutdown_in_place(&mut self) {
        self.ctx.scheduler.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for JobExecutor {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// A tenant-scoped submission handle (see
/// [`JobExecutor::session_with`]). Sessions are cheap views: all state
/// lives in the executor's scheduler.
pub struct Session<'a> {
    executor: &'a JobExecutor,
    tenant: String,
}

impl Session<'_> {
    /// The tenant this session submits under.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Submits at [`Priority::Normal`] with no idempotency key.
    pub fn submit(
        &self,
        circuit: &QuantumCircuit,
        backend_name: &str,
        shots: usize,
    ) -> Result<Job> {
        self.submit_with(circuit, backend_name, shots, Priority::Normal, None)
    }

    /// Submits with an explicit priority and optional idempotency key.
    pub fn submit_with(
        &self,
        circuit: &QuantumCircuit,
        backend_name: &str,
        shots: usize,
        priority: Priority,
        idempotency_key: Option<&str>,
    ) -> Result<Job> {
        self.executor.submit_with(
            circuit,
            backend_name,
            shots,
            &SubmitOptions {
                tenant: self.tenant.clone(),
                priority,
                idempotency_key: idempotency_key.map(str::to_owned),
            },
        )
    }
}

/// Appends a terminal record, best-effort: a sealed or failing journal
/// must not take down the worker (the in-memory state is still
/// correct; only crash-recovery fidelity degrades, exactly as it would
/// had the process died before the write).
fn journal_terminal(
    journal: &Option<Arc<Journal>>,
    job_id: u64,
    status: JobStatus,
    error: Option<&str>,
    counts: Option<&Counts>,
    executed_on: Option<&str>,
) {
    let Some(journal) = journal else { return };
    let counts = counts.map(|c| {
        let mut pairs: Vec<(u64, usize)> = c.iter().collect();
        pairs.sort_unstable();
        (c.num_clbits(), pairs)
    });
    let _ = journal.append(&JournalRecord::Terminal {
        job_id,
        status: status.to_string(),
        error: error.map(str::to_owned),
        counts,
        executed_on: executed_on.map(str::to_owned),
    });
}

/// Rebuilds executor state from journal records (see the replay rules
/// in [`crate::journal`]).
#[allow(clippy::too_many_arguments)]
fn replay_records(
    records: &[JournalRecord],
    journal: &Arc<Journal>,
    provider: &Arc<Provider>,
    scheduler: &Scheduler<QueuedJob>,
    cache: Option<&ResultCache>,
    observers: &ObserverSet,
    keyed: &mut HashMap<String, Job>,
    recovered: &mut Vec<Job>,
    next_id: &mut u64,
    report: &mut RecoveryReport,
) {
    let mut terminals: HashMap<u64, &JournalRecord> = HashMap::new();
    for record in records {
        *next_id = (*next_id).max(record.job_id() + 1);
        if matches!(record, JournalRecord::Terminal { .. }) {
            terminals.insert(record.job_id(), record);
        }
    }
    for record in records {
        let JournalRecord::Submitted { job_id, tenant, priority, backend, shots, key, qasm, trace } =
            record
        else {
            continue;
        };
        // Pre-tracing journals carry no trace id; mint a fresh one so
        // the recovered job still yields a well-formed trace. Journaled
        // ids are restored verbatim — recovery keeps traces stable.
        let trace_id = if *trace == 0 { qukit_obs::next_id() } else { *trace };
        let job = match terminals.get(job_id) {
            Some(JournalRecord::Terminal { status, error, counts, executed_on, .. }) => {
                // Exactly-once: a journaled terminal is final; the job
                // is reconstructed finished and never re-run.
                let job =
                    Job::new(*job_id, backend.clone(), *shots, tenant.clone(), trace_id, None);
                job.shared.update(|state| {
                    state.status = JobStatus::parse(status).unwrap_or(JobStatus::Error);
                    state.error = error.clone();
                    state.executed_on = executed_on.clone();
                    state.result = counts
                        .as_ref()
                        .map(|(clbits, pairs)| journal::counts_from_pairs(*clbits, pairs));
                });
                report.recovered_terminal += 1;
                job
            }
            _ => {
                // Non-terminal: re-enqueue under the original identity.
                let job = Job::new(
                    *job_id,
                    backend.clone(),
                    *shots,
                    tenant.clone(),
                    trace_id,
                    Some(Arc::clone(journal)),
                );
                match qukit_terra::qasm::parse(qasm) {
                    Ok(circuit) => {
                        let cache_key = cache.and_then(|_| {
                            provider
                                .get_backend(backend)
                                .ok()
                                .map(|b| ResultCache::key(qasm, backend, b.fingerprint()))
                        });
                        // Bypass admission: the job was admitted before
                        // the crash; shedding it now would break
                        // exactly-once recovery.
                        scheduler.push_replayed(
                            tenant,
                            *priority,
                            QueuedJob {
                                job: job.clone(),
                                circuit,
                                cache_key,
                                submitted_at: Instant::now(),
                            },
                        );
                        observers.emit(&JobEvent::Enqueued {
                            job_id: *job_id,
                            backend: backend.clone(),
                        });
                        report.replayed += 1;
                    }
                    Err(e) => {
                        // A journaled circuit that no longer parses is a
                        // terminal error, not a lost job.
                        let msg = format!("journal replay: circuit unparsable: {e}");
                        observers.emit(&JobEvent::Failed {
                            job_id: *job_id,
                            attempts: 0,
                            error: msg.clone(),
                        });
                        job.shared.update(|state| {
                            state.error = Some(msg.clone());
                            state.status = JobStatus::Error;
                        });
                        journal_terminal(
                            &Some(Arc::clone(journal)),
                            *job_id,
                            JobStatus::Error,
                            Some(&msg),
                            None,
                            None,
                        );
                    }
                }
                job
            }
        };
        if let Some(key) = key {
            keyed.insert(key.clone(), job.clone());
        }
        recovered.push(job);
    }
}

/// Closes a job's trace: records the root `job` span (spanning submit
/// to terminal, with the root span id equal to the trace id) and the
/// per-tenant terminal metrics. Called exactly once per dequeued job,
/// on the worker that performed the terminal transition.
fn finish_job_trace(job: &Job, submitted_at: Instant, status: JobStatus) {
    let tenant = job.tenant();
    if status == JobStatus::Done {
        qukit_obs::counter_inc_with(
            "qukit_core_tenant_jobs_completed_total",
            &[("tenant", tenant)],
        );
        qukit_obs::observe_with(
            "qukit_core_tenant_job_seconds",
            &[("tenant", tenant)],
            submitted_at.elapsed().as_secs_f64(),
        );
    }
    if qukit_obs::enabled() {
        qukit_obs::record_span_at(
            "job",
            format!("job={} tenant={tenant} status={status}", job.id()),
            job.trace_id(),
            job.trace_id(),
            0,
            0,
            submitted_at,
            submitted_at.elapsed(),
        );
    }
}

/// What one execution attempt produced.
enum AttemptOutcome {
    Finished(Result<Counts>),
    TimedOut,
}

fn worker_loop(ctx: &Arc<WorkerContext>) {
    while let Some((_tenant, entry)) = ctx.scheduler.pop() {
        run_job(&entry, ctx);
    }
}

/// Executes one job: cache probe + attempts + backoff + timeout +
/// status transitions.
fn run_job(entry: &QueuedJob, ctx: &Arc<WorkerContext>) {
    let QueuedJob { job, circuit, cache_key, submitted_at } = entry;
    let job_id = job.id();
    // The worker continues the trace the submitter started: the queue
    // wait is recorded as a span spanning submit-to-dequeue, and the
    // root context is attached so every span below (attempts,
    // transpile passes, engine kernels) nests under this job's trace.
    let trace = qukit_obs::TraceContext::root_of(job.trace_id());
    if qukit_obs::enabled() {
        qukit_obs::record_span_at(
            "job.queued",
            format!("job={job_id} tenant={}", job.tenant()),
            trace.trace_id,
            qukit_obs::next_id(),
            trace.span_id,
            1,
            *submitted_at,
            submitted_at.elapsed(),
        );
    }
    let _trace_guard = trace.attach();
    let proceed = job.shared.update(|state| {
        if state.status == JobStatus::Cancelled || state.cancel_requested {
            state.status = JobStatus::Cancelled;
            false
        } else {
            state.status = JobStatus::Running;
            true
        }
    });
    if !proceed {
        // Emitted after the state write: a queued cancellation already
        // woke its waiters (and journaled its terminal record) from
        // `cancel()` itself, so the emit-before guarantee cannot apply
        // here anyway.
        ctx.observers.emit(&JobEvent::Cancelled { job_id, while_queued: true });
        finish_job_trace(job, *submitted_at, JobStatus::Cancelled);
        return;
    }
    ctx.observers.emit(&JobEvent::Started { job_id, backend: job.shared.backend_name.clone() });

    // Content-addressed cache probe: a hit re-samples the cached
    // distribution with a per-job deterministic seed and skips the
    // simulator entirely.
    if let (Some(cache), Some(key)) = (&ctx.cache, cache_key) {
        if let Some(hit) = cache.lookup(*key) {
            let counts = {
                // The hit span links to the trace that produced the
                // cached distribution (`producer_trace`) instead of
                // pretending this job executed anything.
                let _hit_span = qukit_obs::span!(
                    "job.cache_hit",
                    producer_trace = hit.producer_trace,
                    shots = job.shared.shots,
                );
                let seed = (*key as u64) ^ ((*key >> 64) as u64) ^ job_id;
                hit.distribution.sample(job.shared.shots, seed)
            };
            qukit_obs::counter_inc_with(
                "qukit_core_tenant_cache_hits_total",
                &[("tenant", job.tenant())],
            );
            let served = job.shared.backend_name.clone();
            ctx.observers.emit(&JobEvent::Completed {
                job_id,
                attempts: 0,
                executed_on: served.clone(),
                elapsed: submitted_at.elapsed(),
            });
            journal_terminal(
                &ctx.journal,
                job_id,
                JobStatus::Done,
                None,
                Some(&counts),
                Some(&served),
            );
            job.shared.update(|state| {
                state.from_cache = true;
                state.executed_on = Some(served);
                state.result = Some(counts);
                state.status = JobStatus::Done;
            });
            finish_job_trace(job, *submitted_at, JobStatus::Done);
            return;
        }
    }

    for attempt in 1..=ctx.retry.max_attempts {
        if attempt > 1 {
            let backoff = ctx.retry.backoff_before(attempt);
            job.shared.update(|state| state.backoffs.push(backoff));
            // Cancellation interrupts the backoff wait promptly (the
            // shutdown/cancel race fix) and is also honored at the
            // attempt boundary as before.
            let cancelled = job.shared.wait_for_cancel(backoff);
            if cancelled {
                ctx.observers.emit(&JobEvent::Cancelled { job_id, while_queued: false });
                journal_terminal(
                    &ctx.journal,
                    job_id,
                    JobStatus::Cancelled,
                    Some("cancelled between attempts"),
                    None,
                    None,
                );
                job.shared.update(|state| state.status = JobStatus::Cancelled);
                finish_job_trace(job, *submitted_at, JobStatus::Cancelled);
                return;
            }
        }
        job.shared.update(|state| state.attempts = attempt);
        let outcome = {
            let _attempt_span = qukit_obs::span!("job.attempt", job = job_id, attempt = attempt);
            run_attempt(job, circuit, &ctx.provider, ctx.retry.attempt_timeout)
        };
        match outcome {
            AttemptOutcome::Finished(Ok(counts)) => {
                let backend_name = job.shared.backend_name.clone();
                let served = ctx
                    .provider
                    .get_backend(&backend_name)
                    .ok()
                    .and_then(|b| b.executed_on())
                    .unwrap_or(backend_name);
                ctx.observers.emit(&JobEvent::Completed {
                    job_id,
                    attempts: attempt,
                    executed_on: served.clone(),
                    elapsed: submitted_at.elapsed(),
                });
                journal_terminal(
                    &ctx.journal,
                    job_id,
                    JobStatus::Done,
                    None,
                    Some(&counts),
                    Some(&served),
                );
                if let (Some(cache), Some(key)) = (&ctx.cache, cache_key) {
                    cache.insert(*key, &counts, job.trace_id());
                }
                job.shared.update(|state| {
                    state.executed_on = Some(served);
                    state.result = Some(counts);
                    state.status = JobStatus::Done;
                });
                finish_job_trace(job, *submitted_at, JobStatus::Done);
                return;
            }
            AttemptOutcome::Finished(Err(e)) => {
                let retryable = e.is_retryable() && attempt < ctx.retry.max_attempts;
                if !retryable {
                    ctx.observers.emit(&JobEvent::Failed {
                        job_id,
                        attempts: attempt,
                        error: e.to_string(),
                    });
                    journal_terminal(
                        &ctx.journal,
                        job_id,
                        JobStatus::Error,
                        Some(&e.to_string()),
                        None,
                        None,
                    );
                    job.shared.update(|state| {
                        state.error = Some(e.to_string());
                        state.status = JobStatus::Error;
                    });
                    finish_job_trace(job, *submitted_at, JobStatus::Error);
                    return;
                }
                // Transient with attempts left: announce the retry (they
                // used to be silent) and loop for the next attempt.
                ctx.observers.emit(&JobEvent::Retrying {
                    job_id,
                    attempt,
                    backoff: ctx.retry.backoff_before(attempt + 1),
                    error: e.to_string(),
                });
            }
            AttemptOutcome::TimedOut => {
                // A hung attempt cannot be interrupted, only abandoned;
                // the paper's cloud queue reports such jobs as timed out
                // rather than silently re-running a possibly side-effecting
                // submission, and so do we.
                ctx.observers.emit(&JobEvent::TimedOut { job_id, attempt });
                let msg = format!(
                    "attempt {attempt} exceeded its {:?} budget",
                    ctx.retry.attempt_timeout.expect("timeout set when attempts time out")
                );
                journal_terminal(&ctx.journal, job_id, JobStatus::TimedOut, Some(&msg), None, None);
                job.shared.update(|state| {
                    state.error = Some(msg);
                    state.status = JobStatus::TimedOut;
                });
                finish_job_trace(job, *submitted_at, JobStatus::TimedOut);
                return;
            }
        }
    }
    unreachable!("final attempt either succeeds, errors, or times out");
}

/// Runs one attempt, enforcing the per-attempt timeout by running the
/// backend call on a helper thread and abandoning it on expiry.
fn run_attempt(
    job: &Job,
    circuit: &QuantumCircuit,
    provider: &Arc<Provider>,
    timeout: Option<Duration>,
) -> AttemptOutcome {
    let backend_name = job.shared.backend_name.clone();
    let shots = job.shared.shots;
    let Some(timeout) = timeout else {
        let result =
            provider.get_backend(&backend_name).and_then(|backend| backend.run(circuit, shots));
        return AttemptOutcome::Finished(result);
    };
    let (tx, rx) = std::sync::mpsc::sync_channel(1);
    let provider = Arc::clone(provider);
    let circuit = circuit.clone();
    // Trace contexts are per-thread: clone the worker's onto the helper
    // so backend spans still land in this job's trace after the hop.
    let trace = qukit_obs::TraceContext::current();
    std::thread::spawn(move || {
        let _trace_guard = trace.map(qukit_obs::TraceContext::attach);
        let result =
            provider.get_backend(&backend_name).and_then(|backend| backend.run(&circuit, shots));
        let _ = tx.send(result); // receiver may have given up: ignore
    });
    match rx.recv_timeout(timeout) {
        Ok(result) => AttemptOutcome::Finished(result),
        Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
            AttemptOutcome::TimedOut
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::QasmSimulatorBackend;
    use crate::fault::{FaultInjectingBackend, FaultMode};

    fn bell() -> QuantumCircuit {
        let mut circ = QuantumCircuit::new(2);
        circ.h(0).unwrap();
        circ.cx(0, 1).unwrap();
        circ
    }

    fn provider_with(backend: Box<dyn crate::backend::Backend>) -> Provider {
        let mut provider = Provider::new();
        provider.register(backend);
        provider
    }

    fn fast_retry(attempts: u32) -> RetryPolicy {
        RetryPolicy::new(attempts).with_base_backoff(Duration::from_millis(1)).with_jitter(0.0)
    }

    #[test]
    fn submit_runs_to_done_with_metadata() {
        let executor = JobExecutor::new(Provider::with_defaults());
        let job = executor.submit(&bell(), "qasm_simulator", 300).unwrap();
        let counts = job.result(Duration::from_secs(30)).unwrap();
        assert_eq!(counts.total(), 300);
        assert_eq!(job.status(), JobStatus::Done);
        assert!(job.status().is_terminal());
        assert_eq!(job.attempts(), 1);
        assert!(job.backoffs().is_empty());
        assert_eq!(job.executed_on().as_deref(), Some("qasm_simulator"));
        assert_eq!(job.backend_name(), "qasm_simulator");
        assert_eq!(job.shots(), 300);
        assert_eq!(job.tenant(), DEFAULT_TENANT);
        assert!(!job.served_from_cache());
    }

    #[test]
    fn job_ids_are_unique_and_increasing() {
        let executor = JobExecutor::new(Provider::with_defaults());
        let a = executor.submit(&bell(), "qasm_simulator", 10).unwrap();
        let b = executor.submit(&bell(), "qasm_simulator", 10).unwrap();
        assert!(b.id() > a.id());
    }

    #[test]
    fn unknown_backend_is_rejected_at_submit() {
        let executor = JobExecutor::new(Provider::with_defaults());
        let err = executor.submit(&bell(), "ibmqx99", 10).unwrap_err();
        assert!(err.to_string().contains("unknown backend"));
    }

    #[test]
    fn invalid_submissions_are_rejected_before_queueing() {
        let executor = JobExecutor::new(Provider::with_defaults());
        let err = executor.submit(&bell(), "qasm_simulator", 0).unwrap_err();
        assert!(matches!(err, QukitError::InvalidInput { .. }));
        let wide = QuantumCircuit::new(6);
        let err = executor.submit(&wide, "ibmqx4", 10).unwrap_err();
        assert!(matches!(err, QukitError::InvalidInput { .. }));
    }

    #[test]
    fn transient_failures_retry_with_recorded_backoff() {
        let flaky = FaultInjectingBackend::new(
            Box::new(QasmSimulatorBackend::new().with_seed(21)),
            FaultMode::FailTimes(2),
        );
        let config = ExecutorConfig {
            workers: 1,
            queue_capacity: 8,
            retry: fast_retry(3),
            ..Default::default()
        };
        let executor = JobExecutor::with_config(provider_with(Box::new(flaky)), config);
        let job = executor.submit(&bell(), "qasm_simulator", 200).unwrap();
        let counts = job.result(Duration::from_secs(30)).unwrap();
        assert_eq!(counts.total(), 200);
        assert_eq!(job.attempts(), 3, "two injected failures + one success");
        assert_eq!(job.backoffs(), executor.retry_policy().schedule()[..2].to_vec());
    }

    #[test]
    fn retries_exhausted_reports_error() {
        let dead = FaultInjectingBackend::new(
            Box::new(QasmSimulatorBackend::new()),
            FaultMode::AlwaysFail,
        );
        let config = ExecutorConfig {
            workers: 1,
            queue_capacity: 8,
            retry: fast_retry(3),
            ..Default::default()
        };
        let executor = JobExecutor::with_config(provider_with(Box::new(dead)), config);
        let job = executor.submit(&bell(), "qasm_simulator", 50).unwrap();
        let err = job.result(Duration::from_secs(30)).unwrap_err();
        assert_eq!(job.status(), JobStatus::Error);
        assert_eq!(job.attempts(), 3, "all attempts consumed");
        assert!(err.to_string().contains("injected fault"));
        assert!(job.error_message().unwrap().contains("injected fault"));
    }

    #[test]
    fn fatal_errors_are_not_retried() {
        // The stabilizer backend rejects non-Clifford gates with a fatal
        // (non-transient) error.
        let mut provider = Provider::new();
        provider.register(Box::new(crate::backend::StabilizerBackend::new()));
        let config = ExecutorConfig {
            workers: 1,
            queue_capacity: 8,
            retry: fast_retry(5),
            ..Default::default()
        };
        let executor = JobExecutor::with_config(provider, config);
        let mut t_circ = QuantumCircuit::new(1);
        t_circ.t(0).unwrap();
        let job = executor.submit(&t_circ, "stabilizer_simulator", 10).unwrap();
        assert!(job.result(Duration::from_secs(30)).is_err());
        assert_eq!(job.status(), JobStatus::Error);
        assert_eq!(job.attempts(), 1, "fatal error must not retry");
        assert!(job.backoffs().is_empty());
    }

    #[test]
    fn hung_attempt_times_out() {
        let slow = FaultInjectingBackend::new(
            Box::new(QasmSimulatorBackend::new()),
            FaultMode::Hang(Duration::from_millis(400)),
        );
        let retry = fast_retry(3).with_attempt_timeout(Duration::from_millis(20));
        let config = ExecutorConfig { workers: 1, queue_capacity: 8, retry, ..Default::default() };
        let executor = JobExecutor::with_config(provider_with(Box::new(slow)), config);
        let job = executor.submit(&bell(), "qasm_simulator", 10).unwrap();
        let err = job.result(Duration::from_secs(30)).unwrap_err();
        assert_eq!(job.status(), JobStatus::TimedOut);
        assert!(err.to_string().contains("timed out"));
        assert_eq!(job.attempts(), 1, "hung attempts are not retried");
    }

    #[test]
    fn queued_job_cancels_immediately_and_running_queue_drains() {
        // One worker pinned on a hanging job makes the queue state
        // deterministic: wait for RUNNING, then cancel a queued job.
        let slow = FaultInjectingBackend::new(
            Box::new(QasmSimulatorBackend::new()),
            FaultMode::Hang(Duration::from_millis(150)),
        );
        let config = ExecutorConfig {
            workers: 1,
            queue_capacity: 4,
            retry: RetryPolicy::none(),
            ..Default::default()
        };
        let executor = JobExecutor::with_config(provider_with(Box::new(slow)), config);
        let first = executor.submit(&bell(), "qasm_simulator", 10).unwrap();
        while first.status() == JobStatus::Queued {
            std::thread::sleep(Duration::from_millis(1));
        }
        let queued = executor.submit(&bell(), "qasm_simulator", 10).unwrap();
        assert_eq!(queued.status(), JobStatus::Queued);
        assert!(queued.cancel(), "queued job cancels immediately");
        assert_eq!(queued.status(), JobStatus::Cancelled);
        let err = queued.result(Duration::from_secs(5)).unwrap_err();
        assert!(err.to_string().contains("cancelled"));
        // The running job is unaffected.
        assert_eq!(first.result(Duration::from_secs(30)).unwrap().total(), 10);
    }

    #[test]
    fn cancel_interrupts_a_retry_backoff_promptly() {
        // Regression test for the shutdown/cancel race: a worker
        // sleeping out a long backoff used to finish the sleep (and
        // possibly re-attempt) before honoring the cancel. The condvar
        // wait must end as soon as cancel() signals.
        let dead = FaultInjectingBackend::new(
            Box::new(QasmSimulatorBackend::new()),
            FaultMode::AlwaysFail,
        );
        let backoff = Duration::from_secs(30);
        let retry = RetryPolicy::new(3)
            .with_base_backoff(backoff)
            .with_backoff_factor(1.0)
            .with_jitter(0.0);
        let config = ExecutorConfig { workers: 1, queue_capacity: 4, retry, ..Default::default() };
        let executor = JobExecutor::with_config(provider_with(Box::new(dead)), config);
        let job = executor.submit(&bell(), "qasm_simulator", 10).unwrap();
        // The first attempt fails instantly; wait until the worker has
        // entered the backoff (it records the backoff before waiting).
        while job.backoffs().is_empty() {
            std::thread::sleep(Duration::from_millis(1));
        }
        let t0 = Instant::now();
        assert!(!job.cancel(), "job is running, not queued");
        let err = job.result(Duration::from_secs(10)).unwrap_err();
        assert!(err.to_string().contains("cancelled"), "{err}");
        assert_eq!(job.status(), JobStatus::Cancelled);
        assert_eq!(job.attempts(), 1, "the backoff wait was interrupted, not re-attempted");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "cancellation waited out the backoff: {:?}",
            t0.elapsed()
        );
        executor.shutdown();
    }

    #[test]
    fn full_queue_rejects_submissions() {
        let slow = FaultInjectingBackend::new(
            Box::new(QasmSimulatorBackend::new()),
            FaultMode::Hang(Duration::from_millis(150)),
        );
        let config = ExecutorConfig {
            workers: 1,
            queue_capacity: 1,
            retry: RetryPolicy::none(),
            ..Default::default()
        };
        let executor = JobExecutor::with_config(provider_with(Box::new(slow)), config);
        // Pin the worker, fill the single queue slot, then overflow it.
        let running = executor.submit(&bell(), "qasm_simulator", 10).unwrap();
        while running.status() == JobStatus::Queued {
            std::thread::sleep(Duration::from_millis(1));
        }
        let _queued = executor.submit(&bell(), "qasm_simulator", 10).unwrap();
        let err = executor.submit(&bell(), "qasm_simulator", 10).unwrap_err();
        assert!(matches!(err, QukitError::Job { .. }));
        assert!(err.to_string().contains("queue is full"));
    }

    #[test]
    fn tenant_over_depth_is_shed_with_a_typed_rejected_status() {
        let slow = FaultInjectingBackend::new(
            Box::new(QasmSimulatorBackend::new()),
            FaultMode::Hang(Duration::from_millis(150)),
        );
        let config = ExecutorConfig {
            workers: 1,
            queue_capacity: 16,
            retry: RetryPolicy::none(),
            ..Default::default()
        };
        let executor = JobExecutor::with_config(provider_with(Box::new(slow)), config);
        let session = executor.session_with("bursty", TenantConfig::default().with_max_pending(1));
        // Pin the worker so queue depths are deterministic.
        let running = session.submit(&bell(), "qasm_simulator", 10).unwrap();
        while running.status() == JobStatus::Queued {
            std::thread::sleep(Duration::from_millis(1));
        }
        let queued = session.submit(&bell(), "qasm_simulator", 10).unwrap();
        assert_eq!(queued.status(), JobStatus::Queued);
        let shed = session.submit(&bell(), "qasm_simulator", 10).unwrap();
        assert_eq!(shed.status(), JobStatus::Rejected);
        assert!(shed.status().is_terminal());
        let err = shed.result(Duration::from_secs(5)).unwrap_err();
        assert!(err.to_string().contains("rejected"), "{err}");
        assert!(shed.error_message().unwrap().contains("queue depth"));
        // Other tenants are unaffected by the shed tenant's bound.
        let other = executor.session("calm").submit(&bell(), "qasm_simulator", 10).unwrap();
        assert_ne!(other.status(), JobStatus::Rejected);
        assert_eq!(running.result(Duration::from_secs(30)).unwrap().total(), 10);
    }

    #[test]
    fn result_wait_deadline_is_reported_without_killing_the_job() {
        let slow = FaultInjectingBackend::new(
            Box::new(QasmSimulatorBackend::new()),
            FaultMode::Hang(Duration::from_millis(100)),
        );
        let config = ExecutorConfig {
            workers: 1,
            queue_capacity: 4,
            retry: RetryPolicy::none(),
            ..Default::default()
        };
        let executor = JobExecutor::with_config(provider_with(Box::new(slow)), config);
        let job = executor.submit(&bell(), "qasm_simulator", 10).unwrap();
        let err = job.result(Duration::from_millis(5)).unwrap_err();
        assert!(err.to_string().contains("after waiting"));
        // The typed variant distinguishes "wait gave up" from "job
        // failed", so callers can poll again.
        assert!(err.is_wait_timeout());
        assert!(matches!(err, QukitError::WaitTimeout { job_id, .. } if job_id == job.id()));
        // The job itself keeps running and finishes.
        assert_eq!(job.result(Duration::from_secs(30)).unwrap().total(), 10);
    }

    #[test]
    fn workers_execute_jobs_concurrently() {
        let slow = FaultInjectingBackend::new(
            Box::new(QasmSimulatorBackend::new()),
            FaultMode::Hang(Duration::from_millis(60)),
        );
        let config = ExecutorConfig {
            workers: 4,
            queue_capacity: 16,
            retry: RetryPolicy::none(),
            ..Default::default()
        };
        let executor = JobExecutor::with_config(provider_with(Box::new(slow)), config);
        let t0 = Instant::now();
        let jobs: Vec<Job> =
            (0..4).map(|_| executor.submit(&bell(), "qasm_simulator", 10).unwrap()).collect();
        for job in &jobs {
            assert_eq!(job.result(Duration::from_secs(30)).unwrap().total(), 10);
        }
        // Serial execution would need >= 240 ms; allow generous slack
        // while still proving overlap.
        assert!(
            t0.elapsed() < Duration::from_millis(200),
            "4 hanging jobs on 4 workers took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn shutdown_drains_submitted_jobs() {
        let executor = JobExecutor::new(Provider::with_defaults());
        let jobs: Vec<Job> =
            (0..6).map(|_| executor.submit(&bell(), "qasm_simulator", 20).unwrap()).collect();
        executor.shutdown();
        for job in &jobs {
            assert_eq!(job.status(), JobStatus::Done);
        }
    }

    #[test]
    fn idempotency_key_returns_the_original_job() {
        let executor = JobExecutor::new(Provider::with_defaults());
        let session = executor.session("vqe");
        let first =
            session.submit_with(&bell(), "qasm_simulator", 100, Priority::Normal, Some("iter-1"));
        let first = first.unwrap();
        let dup =
            session.submit_with(&bell(), "qasm_simulator", 100, Priority::Normal, Some("iter-1"));
        let dup = dup.unwrap();
        assert_eq!(first.id(), dup.id(), "same key, same job");
        let fresh =
            session.submit_with(&bell(), "qasm_simulator", 100, Priority::Normal, Some("iter-2"));
        assert_ne!(first.id(), fresh.unwrap().id(), "different key, different job");
        assert_eq!(executor.job_for_key("iter-1").unwrap().id(), first.id());
        assert!(executor.job_for_key("iter-99").is_none());
    }

    #[test]
    fn cache_hits_resample_instead_of_resimulating() {
        let config = ExecutorConfig {
            workers: 1,
            queue_capacity: 16,
            retry: RetryPolicy::none(),
            cache: Some(CacheConfig::default()),
            ..Default::default()
        };
        let provider = provider_with(Box::new(QasmSimulatorBackend::new().with_seed(5)));
        let executor = JobExecutor::with_config(provider, config);
        let first = executor.submit(&bell(), "qasm_simulator", 400).unwrap();
        assert_eq!(first.result(Duration::from_secs(30)).unwrap().total(), 400);
        assert!(!first.served_from_cache(), "first run fills the cache");
        let second = executor.submit(&bell(), "qasm_simulator", 250).unwrap();
        let counts = second.result(Duration::from_secs(30)).unwrap();
        assert!(second.served_from_cache(), "repeat payload hits the cache");
        assert_eq!(counts.total(), 250, "a hit serves any shot count");
        assert_eq!(second.attempts(), 0, "no backend attempt for a hit");
        assert_eq!(second.executed_on().as_deref(), Some("qasm_simulator"));
        // A different circuit misses.
        let mut ghz3 = QuantumCircuit::new(3);
        ghz3.h(0).unwrap();
        ghz3.cx(0, 1).unwrap();
        ghz3.cx(1, 2).unwrap();
        let third = executor.submit(&ghz3, "qasm_simulator", 100).unwrap();
        third.result(Duration::from_secs(30)).unwrap();
        assert!(!third.served_from_cache());
    }

    /// Records every event so tests can assert on the full lifecycle.
    #[derive(Default)]
    struct RecordingObserver {
        events: Mutex<Vec<JobEvent>>,
    }

    impl JobObserver for RecordingObserver {
        fn on_event(&self, event: &JobEvent) {
            self.events.lock().unwrap().push(event.clone());
        }
    }

    #[test]
    fn observers_see_the_full_lifecycle_including_retries() {
        let flaky = FaultInjectingBackend::new(
            Box::new(QasmSimulatorBackend::new().with_seed(7)),
            FaultMode::FailTimes(1),
        );
        let recorder = Arc::new(RecordingObserver::default());
        let observers = ObserverSet::none().with(recorder.clone() as Arc<dyn JobObserver>);
        let config = ExecutorConfig {
            workers: 1,
            queue_capacity: 8,
            retry: fast_retry(3),
            observers,
            ..Default::default()
        };
        let executor = JobExecutor::with_config(provider_with(Box::new(flaky)), config);
        let job = executor.submit(&bell(), "qasm_simulator", 100).unwrap();
        job.result(Duration::from_secs(30)).unwrap();
        let events = recorder.events.lock().unwrap().clone();
        // `Enqueued` fires on the submitting thread and may interleave
        // with worker-side events; assert presence plus worker ordering.
        assert!(
            events.iter().any(|e| matches!(e, JobEvent::Enqueued { .. })),
            "missing Enqueued in {events:?}"
        );
        let position = |pred: fn(&JobEvent) -> bool| events.iter().position(pred).unwrap();
        let started = position(|e| matches!(e, JobEvent::Started { .. }));
        let retried = position(|e| matches!(e, JobEvent::Retrying { .. }));
        let completed = position(|e| matches!(e, JobEvent::Completed { .. }));
        assert!(started < retried && retried < completed, "worker order in {events:?}");
        match &events[retried] {
            JobEvent::Retrying { attempt, error, .. } => {
                assert_eq!(*attempt, 1);
                assert!(error.contains("injected fault"), "retry carries the error: {error}");
            }
            other => panic!("expected Retrying, got {other:?}"),
        }
        match &events[completed] {
            JobEvent::Completed { attempts, executed_on, .. } => {
                assert_eq!(*attempts, 2);
                assert_eq!(executed_on, "qasm_simulator");
            }
            other => panic!("expected Completed, got {other:?}"),
        }
        assert!(events.iter().all(|e| e.job_id() == job.id()));
    }

    #[test]
    fn observers_see_queued_cancellation() {
        let slow = FaultInjectingBackend::new(
            Box::new(QasmSimulatorBackend::new()),
            FaultMode::Hang(Duration::from_millis(100)),
        );
        let recorder = Arc::new(RecordingObserver::default());
        let observers = ObserverSet::none().with(recorder.clone() as Arc<dyn JobObserver>);
        let config = ExecutorConfig {
            workers: 1,
            queue_capacity: 4,
            retry: RetryPolicy::none(),
            observers,
            ..Default::default()
        };
        let executor = JobExecutor::with_config(provider_with(Box::new(slow)), config);
        let first = executor.submit(&bell(), "qasm_simulator", 10).unwrap();
        while first.status() == JobStatus::Queued {
            std::thread::sleep(Duration::from_millis(1));
        }
        let queued = executor.submit(&bell(), "qasm_simulator", 10).unwrap();
        assert!(queued.cancel());
        first.result(Duration::from_secs(30)).unwrap();
        executor.shutdown();
        let events = recorder.events.lock().unwrap().clone();
        let cancelled: Vec<&JobEvent> =
            events.iter().filter(|e| matches!(e, JobEvent::Cancelled { .. })).collect();
        assert_eq!(cancelled.len(), 1);
        assert!(
            matches!(cancelled[0], JobEvent::Cancelled { while_queued: true, .. }),
            "cancellation happened before the job started"
        );
    }

    #[test]
    fn status_display_matches_cloud_vocabulary() {
        assert_eq!(JobStatus::Queued.to_string(), "QUEUED");
        assert_eq!(JobStatus::TimedOut.to_string(), "TIMED_OUT");
        assert_eq!(JobStatus::Rejected.to_string(), "REJECTED");
        assert!(!JobStatus::Running.is_terminal());
        assert!(JobStatus::Cancelled.is_terminal());
        assert!(JobStatus::Rejected.is_terminal());
        for status in [
            JobStatus::Queued,
            JobStatus::Running,
            JobStatus::Done,
            JobStatus::Error,
            JobStatus::Cancelled,
            JobStatus::TimedOut,
            JobStatus::Rejected,
        ] {
            assert_eq!(JobStatus::parse(&status.to_string()), Some(status));
        }
        assert_eq!(JobStatus::parse("LOST"), None);
    }
}
