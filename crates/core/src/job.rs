//! The fault-tolerant job execution service.
//!
//! The paper's user story runs circuits through the IBM Q Experience
//! cloud: submissions enter a shared queue behind other users, wait,
//! run, and sometimes fail or vanish while a device recalibrates. This
//! module reproduces that service shape locally: a [`JobExecutor`] with
//! a bounded submission queue and a worker-thread pool turns
//! `submit(circuit, backend, shots)` into a [`Job`] handle with the
//! Qiskit-style lifecycle
//!
//! ```text
//! Queued ──► Running ──► Done
//!    │          ├──────► Error      (fatal, or retries exhausted)
//!    │          ├──────► TimedOut   (attempt exceeded its budget)
//!    │          └──────► Cancelled  (cancel observed between attempts)
//!    └─────────────────► Cancelled  (cancelled while still queued)
//! ```
//!
//! Each attempt is wrapped in the executor's [`RetryPolicy`]: transient
//! failures back off (deterministic seeded jitter) and retry, fatal
//! errors stop immediately, and hung attempts are abandoned by the
//! worker once the per-attempt timeout elapses. The job records its
//! attempt count, the backoff schedule it actually waited, and which
//! backend served the result (see
//! [`Backend::executed_on`](crate::backend::Backend::executed_on)) so
//! recovery behavior is observable and testable.

use crate::error::{QukitError, Result};
use crate::execute::validate_submission;
use crate::provider::Provider;
use crate::retry::RetryPolicy;
use qukit_aer::counts::Counts;
use qukit_terra::circuit::QuantumCircuit;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The lifecycle state of a [`Job`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted and waiting in the submission queue.
    Queued,
    /// A worker is executing attempts.
    Running,
    /// Finished successfully; the result is available.
    Done,
    /// Failed fatally or exhausted its retries.
    Error,
    /// Cancelled before a result was produced.
    Cancelled,
    /// An attempt exceeded the per-attempt timeout.
    TimedOut,
}

impl JobStatus {
    /// `true` once the status can no longer change.
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobStatus::Queued | JobStatus::Running)
    }
}

impl std::fmt::Display for JobStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let text = match self {
            JobStatus::Queued => "QUEUED",
            JobStatus::Running => "RUNNING",
            JobStatus::Done => "DONE",
            JobStatus::Error => "ERROR",
            JobStatus::Cancelled => "CANCELLED",
            JobStatus::TimedOut => "TIMED_OUT",
        };
        f.write_str(text)
    }
}

/// Mutable job state behind the handle's mutex.
#[derive(Debug)]
struct JobState {
    status: JobStatus,
    result: Option<Counts>,
    error: Option<String>,
    attempts: u32,
    backoffs: Vec<Duration>,
    executed_on: Option<String>,
    cancel_requested: bool,
}

/// Shared core of a job: state + wakeup for `result()` waiters.
#[derive(Debug)]
struct JobShared {
    id: u64,
    backend_name: String,
    shots: usize,
    state: Mutex<JobState>,
    cond: Condvar,
}

impl JobShared {
    fn update<T>(&self, f: impl FnOnce(&mut JobState) -> T) -> T {
        let mut state = self.state.lock().expect("job state lock");
        let out = f(&mut state);
        self.cond.notify_all();
        out
    }
}

/// A handle to a submitted job. Clones share the same underlying job.
///
/// See the [module docs](self) for the lifecycle; the handle exposes
/// [`status`](Job::status), blocking [`result`](Job::result) /
/// [`wait`](Job::wait), [`cancel`](Job::cancel), and the recovery
/// metadata ([`attempts`](Job::attempts), [`backoffs`](Job::backoffs),
/// [`executed_on`](Job::executed_on)).
#[derive(Clone, Debug)]
pub struct Job {
    shared: Arc<JobShared>,
}

impl Job {
    fn new(id: u64, backend_name: String, shots: usize) -> Self {
        Self {
            shared: Arc::new(JobShared {
                id,
                backend_name,
                shots,
                state: Mutex::new(JobState {
                    status: JobStatus::Queued,
                    result: None,
                    error: None,
                    attempts: 0,
                    backoffs: Vec::new(),
                    executed_on: None,
                    cancel_requested: false,
                }),
                cond: Condvar::new(),
            }),
        }
    }

    /// The executor-unique job id.
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    /// The backend name the job was submitted to.
    pub fn backend_name(&self) -> &str {
        &self.shared.backend_name
    }

    /// The submitted shot count.
    pub fn shots(&self) -> usize {
        self.shared.shots
    }

    /// The current lifecycle status.
    pub fn status(&self) -> JobStatus {
        self.shared.state.lock().expect("job state lock").status
    }

    /// How many execution attempts have started.
    pub fn attempts(&self) -> u32 {
        self.shared.state.lock().expect("job state lock").attempts
    }

    /// The backoffs waited before each retry, in order.
    pub fn backoffs(&self) -> Vec<Duration> {
        self.shared.state.lock().expect("job state lock").backoffs.clone()
    }

    /// The backend that actually served the result (for plain backends
    /// this equals [`backend_name`](Job::backend_name); for a
    /// [`FallbackChain`](crate::fault::FallbackChain) it names the member
    /// that succeeded). `None` until the job is `Done`.
    pub fn executed_on(&self) -> Option<String> {
        self.shared.state.lock().expect("job state lock").executed_on.clone()
    }

    /// The failure message of an `Error` job, if any.
    pub fn error_message(&self) -> Option<String> {
        self.shared.state.lock().expect("job state lock").error.clone()
    }

    /// Requests cancellation. A still-queued job flips to `Cancelled`
    /// immediately (and returns `true`); a running job is cancelled at
    /// the next attempt boundary — in-flight attempts are not
    /// interrupted, matching the cloud service's semantics. Terminal
    /// jobs are unaffected.
    pub fn cancel(&self) -> bool {
        self.shared.update(|state| {
            state.cancel_requested = true;
            if state.status == JobStatus::Queued {
                state.status = JobStatus::Cancelled;
                true
            } else {
                false
            }
        })
    }

    /// Blocks until the job reaches a terminal state or `deadline`
    /// elapses, then returns the result.
    ///
    /// # Errors
    ///
    /// [`QukitError::Job`] when the wait deadline elapses first or the
    /// job ended `Cancelled`/`TimedOut`; the recorded failure for
    /// `Error` jobs.
    pub fn result(&self, deadline: Duration) -> Result<Counts> {
        let limit = Instant::now() + deadline;
        let mut state = self.shared.state.lock().expect("job state lock");
        while !state.status.is_terminal() {
            let now = Instant::now();
            if now >= limit {
                return Err(QukitError::Job {
                    msg: format!(
                        "job {} still {} after waiting {:?}",
                        self.shared.id, state.status, deadline
                    ),
                });
            }
            let (next, timeout) =
                self.shared.cond.wait_timeout(state, limit - now).expect("job state lock");
            state = next;
            let _ = timeout;
        }
        match state.status {
            JobStatus::Done => Ok(state.result.clone().expect("done job has counts")),
            JobStatus::Error => Err(QukitError::Job {
                msg: format!(
                    "job {} failed: {}",
                    self.shared.id,
                    state.error.as_deref().unwrap_or("unknown error")
                ),
            }),
            JobStatus::Cancelled => {
                Err(QukitError::Job { msg: format!("job {} was cancelled", self.shared.id) })
            }
            JobStatus::TimedOut => Err(QukitError::Job {
                msg: format!(
                    "job {} timed out: {}",
                    self.shared.id,
                    state.error.as_deref().unwrap_or("attempt exceeded its time budget")
                ),
            }),
            JobStatus::Queued | JobStatus::Running => unreachable!("loop exits on terminal status"),
        }
    }

    /// [`result`](Job::result) with an effectively unbounded deadline.
    pub fn wait(&self) -> Result<Counts> {
        self.result(Duration::from_secs(u64::MAX / 4))
    }
}

/// A lifecycle event emitted by the [`JobExecutor`].
///
/// Events fire synchronously on the thread where the transition happens
/// (`Enqueued` on the submitting thread, everything else on a worker),
/// so observers should return quickly. Before this hook existed retries
/// were *silent*: a job could burn through five attempts and the only
/// trace was the final `attempts()` count. Every recovery decision now
/// surfaces as an event.
#[derive(Debug, Clone, PartialEq)]
pub enum JobEvent {
    /// The job was accepted into the submission queue.
    Enqueued {
        /// Executor-unique job id.
        job_id: u64,
        /// Backend the job was submitted to.
        backend: String,
    },
    /// A worker dequeued the job and began its first attempt.
    Started {
        /// Executor-unique job id.
        job_id: u64,
        /// Backend the job was submitted to.
        backend: String,
    },
    /// A transient failure will be retried after `backoff`.
    Retrying {
        /// Executor-unique job id.
        job_id: u64,
        /// The attempt (1-based) that just failed.
        attempt: u32,
        /// The backoff that will be waited before the next attempt.
        backoff: Duration,
        /// The transient failure being retried.
        error: String,
    },
    /// An attempt exceeded the per-attempt budget; the job is terminal.
    TimedOut {
        /// Executor-unique job id.
        job_id: u64,
        /// The attempt (1-based) that was abandoned.
        attempt: u32,
    },
    /// The job failed fatally or exhausted its retries.
    Failed {
        /// Executor-unique job id.
        job_id: u64,
        /// Total attempts consumed.
        attempts: u32,
        /// The final failure.
        error: String,
    },
    /// The job was cancelled before producing a result.
    Cancelled {
        /// Executor-unique job id.
        job_id: u64,
        /// `true` when the job never started running (cancelled while
        /// still in the queue).
        while_queued: bool,
    },
    /// The job finished successfully.
    Completed {
        /// Executor-unique job id.
        job_id: u64,
        /// Total attempts consumed.
        attempts: u32,
        /// Backend that actually served the result.
        executed_on: String,
        /// Submit-to-done latency (queue wait included).
        elapsed: Duration,
    },
}

impl JobEvent {
    /// The id of the job this event concerns.
    pub fn job_id(&self) -> u64 {
        match self {
            JobEvent::Enqueued { job_id, .. }
            | JobEvent::Started { job_id, .. }
            | JobEvent::Retrying { job_id, .. }
            | JobEvent::TimedOut { job_id, .. }
            | JobEvent::Failed { job_id, .. }
            | JobEvent::Cancelled { job_id, .. }
            | JobEvent::Completed { job_id, .. } => *job_id,
        }
    }
}

/// A subscriber to [`JobEvent`]s. Implementations must be cheap and
/// thread-safe; they run inline on executor threads. Terminal events
/// are emitted *before* the job handle flips to its terminal status, so
/// a thread woken by [`Job::result`] observes every event of its job —
/// consequently observers must not block on job handles themselves.
pub trait JobObserver: Send + Sync {
    /// Called once per lifecycle event.
    fn on_event(&self, event: &JobEvent);
}

/// The default [`JobObserver`]: translates lifecycle events into
/// `qukit_core_*` metrics. Every callback is a no-op while metrics are
/// disabled, so the default wiring costs one atomic load per event.
#[derive(Debug, Clone, Copy, Default)]
pub struct MetricsJobObserver;

impl JobObserver for MetricsJobObserver {
    fn on_event(&self, event: &JobEvent) {
        match event {
            JobEvent::Enqueued { .. } => {
                qukit_obs::counter_inc("qukit_core_jobs_submitted_total");
                qukit_obs::gauge_add("qukit_core_queue_depth", 1.0);
            }
            JobEvent::Started { .. } => qukit_obs::gauge_add("qukit_core_queue_depth", -1.0),
            JobEvent::Retrying { .. } => qukit_obs::counter_inc("qukit_core_job_retries_total"),
            JobEvent::TimedOut { .. } => qukit_obs::counter_inc("qukit_core_job_timeouts_total"),
            JobEvent::Failed { .. } => qukit_obs::counter_inc("qukit_core_job_failures_total"),
            JobEvent::Cancelled { while_queued, .. } => {
                qukit_obs::counter_inc("qukit_core_job_cancellations_total");
                if *while_queued {
                    qukit_obs::gauge_add("qukit_core_queue_depth", -1.0);
                }
            }
            JobEvent::Completed { elapsed, .. } => {
                qukit_obs::counter_inc("qukit_core_jobs_completed_total");
                qukit_obs::observe("qukit_core_job_seconds", elapsed.as_secs_f64());
            }
        }
    }
}

/// The set of observers an executor notifies. Cloning shares the
/// underlying observers (they are `Arc`ed).
#[derive(Clone, Default)]
pub struct ObserverSet {
    observers: Vec<Arc<dyn JobObserver>>,
}

impl ObserverSet {
    /// An empty set (no subscribers at all — not even metrics).
    pub fn none() -> Self {
        Self::default()
    }

    /// The default wiring: just the [`MetricsJobObserver`].
    pub fn metrics() -> Self {
        Self { observers: vec![Arc::new(MetricsJobObserver)] }
    }

    /// Adds an observer (builder style).
    pub fn with(mut self, observer: Arc<dyn JobObserver>) -> Self {
        self.observers.push(observer);
        self
    }

    /// Number of subscribed observers.
    pub fn len(&self) -> usize {
        self.observers.len()
    }

    /// `true` when no observers are subscribed.
    pub fn is_empty(&self) -> bool {
        self.observers.is_empty()
    }

    fn emit(&self, event: &JobEvent) {
        for observer in &self.observers {
            observer.on_event(event);
        }
    }
}

impl std::fmt::Debug for ObserverSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ObserverSet({} observers)", self.observers.len())
    }
}

/// Configuration of a [`JobExecutor`].
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Worker threads executing jobs concurrently.
    pub workers: usize,
    /// Bounded submission-queue capacity; a full queue rejects
    /// submissions with [`QukitError::Job`] instead of blocking.
    pub queue_capacity: usize,
    /// Retry policy applied to every job.
    pub retry: RetryPolicy,
    /// Lifecycle-event subscribers (defaults to the metrics layer).
    pub observers: ObserverSet,
    /// Parallel-simulation configuration pushed onto every provider
    /// backend at construction (`None` leaves backends untouched, so
    /// the environment-derived default still applies).
    pub parallel: Option<qukit_aer::parallel::ParallelConfig>,
}

impl Default for ExecutorConfig {
    /// Two workers, a 64-slot queue, the default [`RetryPolicy`], and
    /// the [`MetricsJobObserver`] subscribed.
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            retry: RetryPolicy::default(),
            observers: ObserverSet::metrics(),
            parallel: None,
        }
    }
}

/// A queue entry: the job handle plus the work description.
struct QueuedJob {
    job: Job,
    circuit: QuantumCircuit,
    submitted_at: Instant,
}

/// The job service: bounded queue + worker pool + retry policy over a
/// shared [`Provider`].
///
/// Dropping the executor closes the queue and joins the workers;
/// already-submitted jobs finish first (abandoned hung attempts are
/// detached, not joined).
///
/// # Examples
///
/// ```
/// use qukit::job::{JobExecutor, JobStatus};
/// use qukit::provider::Provider;
/// use qukit_terra::circuit::QuantumCircuit;
/// use std::time::Duration;
///
/// # fn main() -> Result<(), qukit::error::QukitError> {
/// let executor = JobExecutor::new(Provider::with_defaults());
/// let mut bell = QuantumCircuit::new(2);
/// bell.h(0).unwrap();
/// bell.cx(0, 1).unwrap();
/// let job = executor.submit(&bell, "qasm_simulator", 256)?;
/// let counts = job.result(Duration::from_secs(30))?;
/// assert_eq!(counts.total(), 256);
/// assert_eq!(job.status(), JobStatus::Done);
/// # Ok(())
/// # }
/// ```
pub struct JobExecutor {
    provider: Arc<Provider>,
    sender: Option<SyncSender<QueuedJob>>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
    retry: RetryPolicy,
    observers: ObserverSet,
}

impl JobExecutor {
    /// An executor over `provider` with the default [`ExecutorConfig`].
    pub fn new(provider: Provider) -> Self {
        Self::with_config(provider, ExecutorConfig::default())
    }

    /// An executor with an explicit configuration.
    pub fn with_config(mut provider: Provider, config: ExecutorConfig) -> Self {
        if let Some(parallel) = config.parallel {
            provider.set_parallel(parallel);
        }
        let provider = Arc::new(provider);
        let (sender, receiver) = std::sync::mpsc::sync_channel(config.queue_capacity.max(1));
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                let provider = Arc::clone(&provider);
                let retry = config.retry.clone();
                let observers = config.observers.clone();
                std::thread::spawn(move || worker_loop(&receiver, &provider, &retry, &observers))
            })
            .collect();
        Self {
            provider,
            sender: Some(sender),
            workers,
            next_id: AtomicU64::new(1),
            retry: config.retry,
            observers: config.observers,
        }
    }

    /// The executor's retry policy.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// The provider backing this executor.
    pub fn provider(&self) -> &Provider {
        &self.provider
    }

    /// Submits a circuit for asynchronous execution and returns its
    /// [`Job`] handle. Terminal measurements are added when missing,
    /// exactly like [`execute`](crate::execute::execute).
    ///
    /// # Errors
    ///
    /// - [`QukitError::Backend`] for an unknown backend name
    /// - [`QukitError::InvalidInput`] for zero shots or a circuit wider
    ///   than the backend (rejected up front, before queueing)
    /// - [`QukitError::Job`] when the submission queue is full or the
    ///   executor is shutting down
    pub fn submit(
        &self,
        circuit: &QuantumCircuit,
        backend_name: &str,
        shots: usize,
    ) -> Result<Job> {
        let backend = self.provider.get_backend(backend_name)?;
        validate_submission(circuit, backend, shots)?;
        let prepared = if circuit.has_measurements() {
            circuit.clone()
        } else {
            let mut measured = circuit.clone();
            measured.measure_all();
            measured
        };
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let job = Job::new(id, backend_name.to_owned(), shots);
        let entry = QueuedJob { job: job.clone(), circuit: prepared, submitted_at: Instant::now() };
        let sender = self
            .sender
            .as_ref()
            .ok_or_else(|| QukitError::Job { msg: "executor is shut down".to_owned() })?;
        match sender.try_send(entry) {
            Ok(()) => {
                self.observers
                    .emit(&JobEvent::Enqueued { job_id: id, backend: backend_name.to_owned() });
                Ok(job)
            }
            Err(TrySendError::Full(_)) => Err(QukitError::Job {
                msg: format!("submission queue is full (capacity reached); job {id} rejected"),
            }),
            Err(TrySendError::Disconnected(_)) => {
                Err(QukitError::Job { msg: "executor workers are gone".to_owned() })
            }
        }
    }

    /// Closes the queue and waits for the workers to drain it.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for JobExecutor {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// What one execution attempt produced.
enum AttemptOutcome {
    Finished(Result<Counts>),
    TimedOut,
}

fn worker_loop(
    receiver: &Mutex<Receiver<QueuedJob>>,
    provider: &Arc<Provider>,
    retry: &RetryPolicy,
    observers: &ObserverSet,
) {
    loop {
        // Hold the lock only for the dequeue so workers run jobs in
        // parallel.
        let entry = {
            let guard = receiver.lock().expect("job queue lock");
            guard.recv()
        };
        let Ok(QueuedJob { job, circuit, submitted_at }) = entry else {
            return; // queue closed: executor is shutting down
        };
        run_job(&job, &circuit, provider, retry, observers, submitted_at);
    }
}

/// Executes one job: attempts + backoff + timeout + status transitions.
fn run_job(
    job: &Job,
    circuit: &QuantumCircuit,
    provider: &Arc<Provider>,
    retry: &RetryPolicy,
    observers: &ObserverSet,
    submitted_at: Instant,
) {
    let job_id = job.id();
    let proceed = job.shared.update(|state| {
        if state.status == JobStatus::Cancelled || state.cancel_requested {
            state.status = JobStatus::Cancelled;
            false
        } else {
            state.status = JobStatus::Running;
            true
        }
    });
    if !proceed {
        // Emitted after the state write: a queued cancellation already
        // woke its waiters from `cancel()` itself, so the emit-before
        // guarantee cannot apply here anyway.
        observers.emit(&JobEvent::Cancelled { job_id, while_queued: true });
        return;
    }
    observers.emit(&JobEvent::Started { job_id, backend: job.shared.backend_name.clone() });
    for attempt in 1..=retry.max_attempts {
        if attempt > 1 {
            let backoff = retry.backoff_before(attempt);
            job.shared.update(|state| state.backoffs.push(backoff));
            std::thread::sleep(backoff);
            // Cancellation is honored at attempt boundaries.
            let cancelled = job.shared.update(|state| state.cancel_requested);
            if cancelled {
                observers.emit(&JobEvent::Cancelled { job_id, while_queued: false });
                job.shared.update(|state| state.status = JobStatus::Cancelled);
                return;
            }
        }
        job.shared.update(|state| state.attempts = attempt);
        let outcome = run_attempt(job, circuit, provider, retry.attempt_timeout);
        match outcome {
            AttemptOutcome::Finished(Ok(counts)) => {
                let backend_name = job.shared.backend_name.clone();
                let served = provider
                    .get_backend(&backend_name)
                    .ok()
                    .and_then(|b| b.executed_on())
                    .unwrap_or(backend_name);
                observers.emit(&JobEvent::Completed {
                    job_id,
                    attempts: attempt,
                    executed_on: served.clone(),
                    elapsed: submitted_at.elapsed(),
                });
                job.shared.update(|state| {
                    state.executed_on = Some(served);
                    state.result = Some(counts);
                    state.status = JobStatus::Done;
                });
                return;
            }
            AttemptOutcome::Finished(Err(e)) => {
                let retryable = e.is_retryable() && attempt < retry.max_attempts;
                if !retryable {
                    observers.emit(&JobEvent::Failed {
                        job_id,
                        attempts: attempt,
                        error: e.to_string(),
                    });
                    job.shared.update(|state| {
                        state.error = Some(e.to_string());
                        state.status = JobStatus::Error;
                    });
                    return;
                }
                // Transient with attempts left: announce the retry (they
                // used to be silent) and loop for the next attempt.
                observers.emit(&JobEvent::Retrying {
                    job_id,
                    attempt,
                    backoff: retry.backoff_before(attempt + 1),
                    error: e.to_string(),
                });
            }
            AttemptOutcome::TimedOut => {
                // A hung attempt cannot be interrupted, only abandoned;
                // the paper's cloud queue reports such jobs as timed out
                // rather than silently re-running a possibly side-effecting
                // submission, and so do we.
                observers.emit(&JobEvent::TimedOut { job_id, attempt });
                job.shared.update(|state| {
                    state.error = Some(format!(
                        "attempt {attempt} exceeded its {:?} budget",
                        retry.attempt_timeout.expect("timeout set when attempts time out")
                    ));
                    state.status = JobStatus::TimedOut;
                });
                return;
            }
        }
    }
    unreachable!("final attempt either succeeds, errors, or times out");
}

/// Runs one attempt, enforcing the per-attempt timeout by running the
/// backend call on a helper thread and abandoning it on expiry.
fn run_attempt(
    job: &Job,
    circuit: &QuantumCircuit,
    provider: &Arc<Provider>,
    timeout: Option<Duration>,
) -> AttemptOutcome {
    let backend_name = job.shared.backend_name.clone();
    let shots = job.shared.shots;
    let Some(timeout) = timeout else {
        let result =
            provider.get_backend(&backend_name).and_then(|backend| backend.run(circuit, shots));
        return AttemptOutcome::Finished(result);
    };
    let (tx, rx) = std::sync::mpsc::sync_channel(1);
    let provider = Arc::clone(provider);
    let circuit = circuit.clone();
    std::thread::spawn(move || {
        let result =
            provider.get_backend(&backend_name).and_then(|backend| backend.run(&circuit, shots));
        let _ = tx.send(result); // receiver may have given up: ignore
    });
    match rx.recv_timeout(timeout) {
        Ok(result) => AttemptOutcome::Finished(result),
        Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
            AttemptOutcome::TimedOut
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::QasmSimulatorBackend;
    use crate::fault::{FaultInjectingBackend, FaultMode};

    fn bell() -> QuantumCircuit {
        let mut circ = QuantumCircuit::new(2);
        circ.h(0).unwrap();
        circ.cx(0, 1).unwrap();
        circ
    }

    fn provider_with(backend: Box<dyn crate::backend::Backend>) -> Provider {
        let mut provider = Provider::new();
        provider.register(backend);
        provider
    }

    fn fast_retry(attempts: u32) -> RetryPolicy {
        RetryPolicy::new(attempts).with_base_backoff(Duration::from_millis(1)).with_jitter(0.0)
    }

    #[test]
    fn submit_runs_to_done_with_metadata() {
        let executor = JobExecutor::new(Provider::with_defaults());
        let job = executor.submit(&bell(), "qasm_simulator", 300).unwrap();
        let counts = job.result(Duration::from_secs(30)).unwrap();
        assert_eq!(counts.total(), 300);
        assert_eq!(job.status(), JobStatus::Done);
        assert!(job.status().is_terminal());
        assert_eq!(job.attempts(), 1);
        assert!(job.backoffs().is_empty());
        assert_eq!(job.executed_on().as_deref(), Some("qasm_simulator"));
        assert_eq!(job.backend_name(), "qasm_simulator");
        assert_eq!(job.shots(), 300);
    }

    #[test]
    fn job_ids_are_unique_and_increasing() {
        let executor = JobExecutor::new(Provider::with_defaults());
        let a = executor.submit(&bell(), "qasm_simulator", 10).unwrap();
        let b = executor.submit(&bell(), "qasm_simulator", 10).unwrap();
        assert!(b.id() > a.id());
    }

    #[test]
    fn unknown_backend_is_rejected_at_submit() {
        let executor = JobExecutor::new(Provider::with_defaults());
        let err = executor.submit(&bell(), "ibmqx99", 10).unwrap_err();
        assert!(err.to_string().contains("unknown backend"));
    }

    #[test]
    fn invalid_submissions_are_rejected_before_queueing() {
        let executor = JobExecutor::new(Provider::with_defaults());
        let err = executor.submit(&bell(), "qasm_simulator", 0).unwrap_err();
        assert!(matches!(err, QukitError::InvalidInput { .. }));
        let wide = QuantumCircuit::new(6);
        let err = executor.submit(&wide, "ibmqx4", 10).unwrap_err();
        assert!(matches!(err, QukitError::InvalidInput { .. }));
    }

    #[test]
    fn transient_failures_retry_with_recorded_backoff() {
        let flaky = FaultInjectingBackend::new(
            Box::new(QasmSimulatorBackend::new().with_seed(21)),
            FaultMode::FailTimes(2),
        );
        let config = ExecutorConfig {
            workers: 1,
            queue_capacity: 8,
            retry: fast_retry(3),
            ..Default::default()
        };
        let executor = JobExecutor::with_config(provider_with(Box::new(flaky)), config);
        let job = executor.submit(&bell(), "qasm_simulator", 200).unwrap();
        let counts = job.result(Duration::from_secs(30)).unwrap();
        assert_eq!(counts.total(), 200);
        assert_eq!(job.attempts(), 3, "two injected failures + one success");
        assert_eq!(job.backoffs(), executor.retry_policy().schedule()[..2].to_vec());
    }

    #[test]
    fn retries_exhausted_reports_error() {
        let dead = FaultInjectingBackend::new(
            Box::new(QasmSimulatorBackend::new()),
            FaultMode::AlwaysFail,
        );
        let config = ExecutorConfig {
            workers: 1,
            queue_capacity: 8,
            retry: fast_retry(3),
            ..Default::default()
        };
        let executor = JobExecutor::with_config(provider_with(Box::new(dead)), config);
        let job = executor.submit(&bell(), "qasm_simulator", 50).unwrap();
        let err = job.result(Duration::from_secs(30)).unwrap_err();
        assert_eq!(job.status(), JobStatus::Error);
        assert_eq!(job.attempts(), 3, "all attempts consumed");
        assert!(err.to_string().contains("injected fault"));
        assert!(job.error_message().unwrap().contains("injected fault"));
    }

    #[test]
    fn fatal_errors_are_not_retried() {
        // The stabilizer backend rejects non-Clifford gates with a fatal
        // (non-transient) error.
        let mut provider = Provider::new();
        provider.register(Box::new(crate::backend::StabilizerBackend::new()));
        let config = ExecutorConfig {
            workers: 1,
            queue_capacity: 8,
            retry: fast_retry(5),
            ..Default::default()
        };
        let executor = JobExecutor::with_config(provider, config);
        let mut t_circ = QuantumCircuit::new(1);
        t_circ.t(0).unwrap();
        let job = executor.submit(&t_circ, "stabilizer_simulator", 10).unwrap();
        assert!(job.result(Duration::from_secs(30)).is_err());
        assert_eq!(job.status(), JobStatus::Error);
        assert_eq!(job.attempts(), 1, "fatal error must not retry");
        assert!(job.backoffs().is_empty());
    }

    #[test]
    fn hung_attempt_times_out() {
        let slow = FaultInjectingBackend::new(
            Box::new(QasmSimulatorBackend::new()),
            FaultMode::Hang(Duration::from_millis(400)),
        );
        let retry = fast_retry(3).with_attempt_timeout(Duration::from_millis(20));
        let config = ExecutorConfig { workers: 1, queue_capacity: 8, retry, ..Default::default() };
        let executor = JobExecutor::with_config(provider_with(Box::new(slow)), config);
        let job = executor.submit(&bell(), "qasm_simulator", 10).unwrap();
        let err = job.result(Duration::from_secs(30)).unwrap_err();
        assert_eq!(job.status(), JobStatus::TimedOut);
        assert!(err.to_string().contains("timed out"));
        assert_eq!(job.attempts(), 1, "hung attempts are not retried");
    }

    #[test]
    fn queued_job_cancels_immediately_and_running_queue_drains() {
        // One worker pinned on a hanging job makes the queue state
        // deterministic: wait for RUNNING, then cancel a queued job.
        let slow = FaultInjectingBackend::new(
            Box::new(QasmSimulatorBackend::new()),
            FaultMode::Hang(Duration::from_millis(150)),
        );
        let config = ExecutorConfig {
            workers: 1,
            queue_capacity: 4,
            retry: RetryPolicy::none(),
            ..Default::default()
        };
        let executor = JobExecutor::with_config(provider_with(Box::new(slow)), config);
        let first = executor.submit(&bell(), "qasm_simulator", 10).unwrap();
        while first.status() == JobStatus::Queued {
            std::thread::sleep(Duration::from_millis(1));
        }
        let queued = executor.submit(&bell(), "qasm_simulator", 10).unwrap();
        assert_eq!(queued.status(), JobStatus::Queued);
        assert!(queued.cancel(), "queued job cancels immediately");
        assert_eq!(queued.status(), JobStatus::Cancelled);
        let err = queued.result(Duration::from_secs(5)).unwrap_err();
        assert!(err.to_string().contains("cancelled"));
        // The running job is unaffected.
        assert_eq!(first.result(Duration::from_secs(30)).unwrap().total(), 10);
    }

    #[test]
    fn full_queue_rejects_submissions() {
        let slow = FaultInjectingBackend::new(
            Box::new(QasmSimulatorBackend::new()),
            FaultMode::Hang(Duration::from_millis(150)),
        );
        let config = ExecutorConfig {
            workers: 1,
            queue_capacity: 1,
            retry: RetryPolicy::none(),
            ..Default::default()
        };
        let executor = JobExecutor::with_config(provider_with(Box::new(slow)), config);
        // Pin the worker, fill the single queue slot, then overflow it.
        let running = executor.submit(&bell(), "qasm_simulator", 10).unwrap();
        while running.status() == JobStatus::Queued {
            std::thread::sleep(Duration::from_millis(1));
        }
        let _queued = executor.submit(&bell(), "qasm_simulator", 10).unwrap();
        let err = executor.submit(&bell(), "qasm_simulator", 10).unwrap_err();
        assert!(matches!(err, QukitError::Job { .. }));
        assert!(err.to_string().contains("queue is full"));
    }

    #[test]
    fn result_wait_deadline_is_reported_without_killing_the_job() {
        let slow = FaultInjectingBackend::new(
            Box::new(QasmSimulatorBackend::new()),
            FaultMode::Hang(Duration::from_millis(100)),
        );
        let config = ExecutorConfig {
            workers: 1,
            queue_capacity: 4,
            retry: RetryPolicy::none(),
            ..Default::default()
        };
        let executor = JobExecutor::with_config(provider_with(Box::new(slow)), config);
        let job = executor.submit(&bell(), "qasm_simulator", 10).unwrap();
        let err = job.result(Duration::from_millis(5)).unwrap_err();
        assert!(err.to_string().contains("after waiting"));
        // The job itself keeps running and finishes.
        assert_eq!(job.result(Duration::from_secs(30)).unwrap().total(), 10);
    }

    #[test]
    fn workers_execute_jobs_concurrently() {
        let slow = FaultInjectingBackend::new(
            Box::new(QasmSimulatorBackend::new()),
            FaultMode::Hang(Duration::from_millis(60)),
        );
        let config = ExecutorConfig {
            workers: 4,
            queue_capacity: 16,
            retry: RetryPolicy::none(),
            ..Default::default()
        };
        let executor = JobExecutor::with_config(provider_with(Box::new(slow)), config);
        let t0 = Instant::now();
        let jobs: Vec<Job> =
            (0..4).map(|_| executor.submit(&bell(), "qasm_simulator", 10).unwrap()).collect();
        for job in &jobs {
            assert_eq!(job.result(Duration::from_secs(30)).unwrap().total(), 10);
        }
        // Serial execution would need >= 240 ms; allow generous slack
        // while still proving overlap.
        assert!(
            t0.elapsed() < Duration::from_millis(200),
            "4 hanging jobs on 4 workers took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn shutdown_drains_submitted_jobs() {
        let executor = JobExecutor::new(Provider::with_defaults());
        let jobs: Vec<Job> =
            (0..6).map(|_| executor.submit(&bell(), "qasm_simulator", 20).unwrap()).collect();
        executor.shutdown();
        for job in &jobs {
            assert_eq!(job.status(), JobStatus::Done);
        }
    }

    /// Records every event so tests can assert on the full lifecycle.
    #[derive(Default)]
    struct RecordingObserver {
        events: Mutex<Vec<JobEvent>>,
    }

    impl JobObserver for RecordingObserver {
        fn on_event(&self, event: &JobEvent) {
            self.events.lock().unwrap().push(event.clone());
        }
    }

    #[test]
    fn observers_see_the_full_lifecycle_including_retries() {
        let flaky = FaultInjectingBackend::new(
            Box::new(QasmSimulatorBackend::new().with_seed(7)),
            FaultMode::FailTimes(1),
        );
        let recorder = Arc::new(RecordingObserver::default());
        let observers = ObserverSet::none().with(recorder.clone() as Arc<dyn JobObserver>);
        let config = ExecutorConfig {
            workers: 1,
            queue_capacity: 8,
            retry: fast_retry(3),
            observers,
            ..Default::default()
        };
        let executor = JobExecutor::with_config(provider_with(Box::new(flaky)), config);
        let job = executor.submit(&bell(), "qasm_simulator", 100).unwrap();
        job.result(Duration::from_secs(30)).unwrap();
        let events = recorder.events.lock().unwrap().clone();
        // `Enqueued` fires on the submitting thread and may interleave
        // with worker-side events; assert presence plus worker ordering.
        assert!(
            events.iter().any(|e| matches!(e, JobEvent::Enqueued { .. })),
            "missing Enqueued in {events:?}"
        );
        let position = |pred: fn(&JobEvent) -> bool| events.iter().position(pred).unwrap();
        let started = position(|e| matches!(e, JobEvent::Started { .. }));
        let retried = position(|e| matches!(e, JobEvent::Retrying { .. }));
        let completed = position(|e| matches!(e, JobEvent::Completed { .. }));
        assert!(started < retried && retried < completed, "worker order in {events:?}");
        match &events[retried] {
            JobEvent::Retrying { attempt, error, .. } => {
                assert_eq!(*attempt, 1);
                assert!(error.contains("injected fault"), "retry carries the error: {error}");
            }
            other => panic!("expected Retrying, got {other:?}"),
        }
        match &events[completed] {
            JobEvent::Completed { attempts, executed_on, .. } => {
                assert_eq!(*attempts, 2);
                assert_eq!(executed_on, "qasm_simulator");
            }
            other => panic!("expected Completed, got {other:?}"),
        }
        assert!(events.iter().all(|e| e.job_id() == job.id()));
    }

    #[test]
    fn observers_see_queued_cancellation() {
        let slow = FaultInjectingBackend::new(
            Box::new(QasmSimulatorBackend::new()),
            FaultMode::Hang(Duration::from_millis(100)),
        );
        let recorder = Arc::new(RecordingObserver::default());
        let observers = ObserverSet::none().with(recorder.clone() as Arc<dyn JobObserver>);
        let config = ExecutorConfig {
            workers: 1,
            queue_capacity: 4,
            retry: RetryPolicy::none(),
            observers,
            ..Default::default()
        };
        let executor = JobExecutor::with_config(provider_with(Box::new(slow)), config);
        let first = executor.submit(&bell(), "qasm_simulator", 10).unwrap();
        while first.status() == JobStatus::Queued {
            std::thread::sleep(Duration::from_millis(1));
        }
        let queued = executor.submit(&bell(), "qasm_simulator", 10).unwrap();
        assert!(queued.cancel());
        first.result(Duration::from_secs(30)).unwrap();
        executor.shutdown();
        let events = recorder.events.lock().unwrap().clone();
        let cancelled: Vec<&JobEvent> =
            events.iter().filter(|e| matches!(e, JobEvent::Cancelled { .. })).collect();
        assert_eq!(cancelled.len(), 1);
        assert!(
            matches!(cancelled[0], JobEvent::Cancelled { while_queued: true, .. }),
            "cancellation happened before the job started"
        );
    }

    #[test]
    fn status_display_matches_cloud_vocabulary() {
        assert_eq!(JobStatus::Queued.to_string(), "QUEUED");
        assert_eq!(JobStatus::TimedOut.to_string(), "TIMED_OUT");
        assert!(!JobStatus::Running.is_terminal());
        assert!(JobStatus::Cancelled.is_terminal());
    }
}
