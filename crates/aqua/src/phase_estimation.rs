//! Quantum phase estimation.
//!
//! Estimates the eigenphase `φ` of a unitary `U|ψ⟩ = e^{2πiφ}|ψ⟩` to
//! `t`-bit precision using controlled powers of `U` and an inverse QFT —
//! the primitive underlying Shor's algorithm and quantum chemistry
//! eigensolvers.

use crate::circuits::append_iqft;
use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::error::Result;
use std::f64::consts::TAU;

/// Builds a QPE circuit estimating the phase of the single-qubit phase
/// gate `P(2πφ)` on eigenstate `|1⟩`, using `t` counting qubits.
///
/// Layout: counting qubits `0..t` (qubit 0 = least significant output
/// bit), eigenstate qubit `t`. The counting register is measured into
/// classical bits `0..t`.
///
/// # Errors
///
/// Propagates operand-validation errors.
pub fn qpe_phase_gate_circuit(t: usize, phi: f64) -> Result<QuantumCircuit> {
    let mut circ = QuantumCircuit::with_size(t + 1, t);
    circ.set_name(format!("qpe_{t}"));
    // Eigenstate |1⟩ of P(λ).
    circ.x(t)?;
    for q in 0..t {
        circ.h(q)?;
    }
    // Controlled-U^{2^q}: controlled phase by 2πφ·2^q.
    for q in 0..t {
        let angle = TAU * phi * ((1u64 << q) as f64);
        circ.cp(angle, q, t)?;
    }
    let counting: Vec<usize> = (0..t).collect();
    append_iqft(&mut circ, &counting)?;
    for q in 0..t {
        circ.measure(q, q)?;
    }
    Ok(circ)
}

/// Converts a measured counting-register value to the estimated phase.
pub fn estimate_from_outcome(outcome: u64, t: usize) -> f64 {
    outcome as f64 / (1u64 << t) as f64
}

/// Runs QPE and returns the most likely phase estimate.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn estimate_phase(t: usize, phi: f64, shots: usize, seed: u64) -> Result<f64> {
    let circ = qpe_phase_gate_circuit(t, phi)?;
    let counts = qukit_aer::simulator::QasmSimulator::new()
        .with_seed(seed)
        .run(&circ, shots)
        .map_err(|e| qukit_terra::error::TerraError::Transpile { msg: e.to_string() })?;
    let best = counts.most_frequent().unwrap_or(0);
    Ok(estimate_from_outcome(best, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_representable_phase_is_recovered_deterministically() {
        // φ = 3/8 with t = 3 counting qubits: exact.
        let circ = qpe_phase_gate_circuit(3, 0.375).unwrap();
        let counts =
            qukit_aer::simulator::QasmSimulator::new().with_seed(1).run(&circ, 200).unwrap();
        assert_eq!(counts.get_value(3), 200, "must always read 011 = 3");
    }

    #[test]
    fn t_gate_phase_one_eighth() {
        // T = P(π/4) has eigenphase φ = 1/8.
        let estimate = estimate_phase(3, 0.125, 100, 2).unwrap();
        assert!((estimate - 0.125).abs() < 1e-12);
    }

    #[test]
    fn non_representable_phase_is_approximated() {
        let phi = 0.2; // not a multiple of 1/2^t
        let estimate = estimate_phase(5, phi, 500, 3).unwrap();
        assert!((estimate - phi).abs() < 1.0 / 32.0, "estimate {estimate}");
    }

    #[test]
    fn precision_improves_with_counting_qubits() {
        let phi = 0.3141;
        let coarse = estimate_phase(3, phi, 400, 4).unwrap();
        let fine = estimate_phase(7, phi, 400, 4).unwrap();
        assert!((fine - phi).abs() <= (coarse - phi).abs() + 1e-12, "coarse {coarse}, fine {fine}");
        assert!((fine - phi).abs() < 1.0 / 128.0);
    }

    #[test]
    fn outcome_conversion() {
        assert_eq!(estimate_from_outcome(0, 4), 0.0);
        assert_eq!(estimate_from_outcome(8, 4), 0.5);
        assert_eq!(estimate_from_outcome(15, 4), 0.9375);
    }
}
