//! Deutsch-Jozsa and Bernstein-Vazirani.
//!
//! The two textbook oracle-separation algorithms — minimal end-to-end
//! demonstrations of quantum parallelism (the concept Section II-A of the
//! paper introduces), each deciding with a single oracle query what
//! classically takes many.

use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::error::Result;

/// The hidden function given to Deutsch-Jozsa.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DjOracle {
    /// `f(x) = bit` for all inputs.
    Constant(bool),
    /// `f(x) = parity(x & mask)` with a nonzero mask — balanced.
    BalancedParity(u64),
}

/// Builds the Deutsch-Jozsa circuit over `n` input qubits plus one ancilla
/// (qubit `n`), measuring the input register into classical bits `0..n`.
///
/// # Errors
///
/// Propagates operand-validation errors.
///
/// # Panics
///
/// Panics if a balanced mask is zero or does not fit in `n` bits.
pub fn deutsch_jozsa_circuit(n: usize, oracle: &DjOracle) -> Result<QuantumCircuit> {
    let mut circ = QuantumCircuit::with_size(n + 1, n);
    circ.set_name(format!("deutsch_jozsa_{n}"));
    // Ancilla in |−⟩.
    circ.x(n)?;
    circ.h(n)?;
    for q in 0..n {
        circ.h(q)?;
    }
    // Oracle: |x⟩|y⟩ → |x⟩|y ⊕ f(x)⟩.
    match oracle {
        DjOracle::Constant(true) => {
            circ.x(n)?;
        }
        DjOracle::Constant(false) => {}
        DjOracle::BalancedParity(mask) => {
            assert!(*mask != 0, "a zero mask is constant, not balanced");
            assert!((*mask as u128) < (1u128 << n), "mask does not fit in {n} input qubits");
            for q in 0..n {
                if (mask >> q) & 1 == 1 {
                    circ.cx(q, n)?;
                }
            }
        }
    }
    for q in 0..n {
        circ.h(q)?;
    }
    for q in 0..n {
        circ.measure(q, q)?;
    }
    Ok(circ)
}

/// Interprets Deutsch-Jozsa counts: all-zeros ⇒ constant.
pub fn deutsch_jozsa_is_constant(counts: &qukit_aer::counts::Counts) -> bool {
    counts.most_frequent() == Some(0)
}

/// Builds the Bernstein-Vazirani circuit recovering the hidden bitstring
/// `secret` in a single query.
///
/// # Errors
///
/// Propagates operand-validation errors.
///
/// # Panics
///
/// Panics if `secret` does not fit in `n` bits.
pub fn bernstein_vazirani_circuit(n: usize, secret: u64) -> Result<QuantumCircuit> {
    assert!((secret as u128) < (1u128 << n), "secret does not fit in {n} qubits");
    let mut circ = QuantumCircuit::with_size(n + 1, n);
    circ.set_name(format!("bernstein_vazirani_{n}"));
    circ.x(n)?;
    circ.h(n)?;
    for q in 0..n {
        circ.h(q)?;
    }
    for q in 0..n {
        if (secret >> q) & 1 == 1 {
            circ.cx(q, n)?;
        }
    }
    for q in 0..n {
        circ.h(q)?;
    }
    for q in 0..n {
        circ.measure(q, q)?;
    }
    Ok(circ)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qukit_aer::simulator::QasmSimulator;

    fn run(circ: &QuantumCircuit) -> qukit_aer::counts::Counts {
        QasmSimulator::new().with_seed(4).run(circ, 256).unwrap()
    }

    #[test]
    fn constant_oracles_report_constant() {
        for bit in [false, true] {
            let circ = deutsch_jozsa_circuit(4, &DjOracle::Constant(bit)).unwrap();
            let counts = run(&circ);
            assert_eq!(counts.get_value(0), 256, "constant({bit}) must yield |0…0⟩");
            assert!(deutsch_jozsa_is_constant(&counts));
        }
    }

    #[test]
    fn balanced_oracles_report_balanced() {
        for mask in [0b1u64, 0b1010, 0b1111] {
            let circ = deutsch_jozsa_circuit(4, &DjOracle::BalancedParity(mask)).unwrap();
            let counts = run(&circ);
            assert_eq!(counts.get_value(0), 0, "balanced({mask:b}) must never yield 0");
            assert!(!deutsch_jozsa_is_constant(&counts));
            // For a parity oracle the outcome is deterministic: the mask.
            assert_eq!(counts.get_value(mask), 256);
        }
    }

    #[test]
    fn bernstein_vazirani_recovers_secret_in_one_query() {
        for secret in [0u64, 1, 0b1011, 0b11111] {
            let circ = bernstein_vazirani_circuit(5, secret).unwrap();
            let counts = run(&circ);
            assert_eq!(counts.get_value(secret), 256, "secret {secret:b} not recovered");
        }
    }

    #[test]
    fn bv_oracle_query_count_is_one_layer_of_cx() {
        let circ = bernstein_vazirani_circuit(6, 0b101010).unwrap();
        assert_eq!(circ.count_ops()["cx"], 3, "one CX per set secret bit");
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_secret_panics() {
        let _ = bernstein_vazirani_circuit(2, 8);
    }

    #[test]
    #[should_panic(expected = "constant, not balanced")]
    fn zero_mask_panics() {
        let _ = deutsch_jozsa_circuit(3, &DjOracle::BalancedParity(0));
    }
}
