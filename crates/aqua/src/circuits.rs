//! Reusable circuit-construction blocks.
//!
//! The building blocks the application algorithms are assembled from:
//! GHZ/Bell preparation, the quantum Fourier transform, and
//! multi-controlled phase/X gates (decomposed recursively to the standard
//! gate set without ancilla qubits).

use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::error::Result;
use std::f64::consts::PI;

/// Builds an `n`-qubit GHZ state preparation circuit
/// (`H` on qubit 0, then a CNOT chain).
///
/// # Examples
///
/// ```
/// let ghz = qukit_aqua::circuits::ghz_circuit(4);
/// assert_eq!(ghz.count_ops()["cx"], 3);
/// ```
pub fn ghz_circuit(n: usize) -> QuantumCircuit {
    let mut circ = QuantumCircuit::new(n);
    circ.set_name(format!("ghz_{n}"));
    if n == 0 {
        return circ;
    }
    circ.h(0).expect("qubit 0 exists");
    for q in 1..n {
        circ.cx(q - 1, q).expect("valid chain");
    }
    circ
}

/// Builds a Bell-pair circuit (`(|00⟩ + |11⟩)/√2`).
pub fn bell_circuit() -> QuantumCircuit {
    let mut circ = ghz_circuit(2);
    circ.set_name("bell");
    circ
}

/// Builds a uniform-superposition circuit (`H` on every qubit).
pub fn superposition_circuit(n: usize) -> QuantumCircuit {
    let mut circ = QuantumCircuit::new(n);
    circ.set_name(format!("superposition_{n}"));
    for q in 0..n {
        circ.h(q).expect("valid qubit");
    }
    circ
}

/// Appends the quantum Fourier transform on the given qubits
/// (with the final bit-reversal swaps).
///
/// Convention: maps `|x⟩ → (1/√N) Σ_y e^{2πi·xy/N}|y⟩` with qubit
/// `qubits[0]` the least significant bit of `x`.
///
/// # Errors
///
/// Propagates operand-validation errors from the circuit.
pub fn append_qft(circ: &mut QuantumCircuit, qubits: &[usize]) -> Result<()> {
    let n = qubits.len();
    // Process from the most significant qubit downwards.
    for i in (0..n).rev() {
        circ.h(qubits[i])?;
        for j in (0..i).rev() {
            let angle = PI / ((1 << (i - j)) as f64);
            circ.cp(angle, qubits[j], qubits[i])?;
        }
    }
    for i in 0..n / 2 {
        circ.swap(qubits[i], qubits[n - 1 - i])?;
    }
    Ok(())
}

/// Appends the inverse QFT on the given qubits.
///
/// # Errors
///
/// Propagates operand-validation errors from the circuit.
pub fn append_iqft(circ: &mut QuantumCircuit, qubits: &[usize]) -> Result<()> {
    let n = qubits.len();
    for i in 0..n / 2 {
        circ.swap(qubits[i], qubits[n - 1 - i])?;
    }
    for i in 0..n {
        for j in 0..i {
            let angle = -PI / ((1 << (i - j)) as f64);
            circ.cp(angle, qubits[j], qubits[i])?;
        }
        circ.h(qubits[i])?;
    }
    Ok(())
}

/// Builds the full `n`-qubit QFT as a standalone circuit.
pub fn qft_circuit(n: usize) -> QuantumCircuit {
    let mut circ = QuantumCircuit::new(n);
    circ.set_name(format!("qft_{n}"));
    let qubits: Vec<usize> = (0..n).collect();
    append_qft(&mut circ, &qubits).expect("indices valid by construction");
    circ
}

/// Appends a multi-controlled phase gate `diag(1, …, 1, e^{iλ})` that
/// applies the phase only when *all* of `controls ∪ {target}` are `|1⟩`.
///
/// Recursive ancilla-free decomposition; gate count grows exponentially in
/// the control count, which is acceptable for the ≤6-control oracles used
/// by the algorithm library.
///
/// # Errors
///
/// Propagates operand-validation errors from the circuit.
pub fn append_mcp(
    circ: &mut QuantumCircuit,
    lambda: f64,
    controls: &[usize],
    target: usize,
) -> Result<()> {
    match controls {
        [] => {
            circ.p(lambda, target)?;
        }
        [c] => {
            circ.cp(lambda, *c, target)?;
        }
        [rest @ .., last] => {
            circ.cp(lambda / 2.0, *last, target)?;
            append_mcx(circ, rest, *last)?;
            circ.cp(-lambda / 2.0, *last, target)?;
            append_mcx(circ, rest, *last)?;
            append_mcp(circ, lambda / 2.0, rest, target)?;
        }
    }
    Ok(())
}

/// Appends a multi-controlled X (Toffoli generalization) without ancillas.
///
/// # Errors
///
/// Propagates operand-validation errors from the circuit.
pub fn append_mcx(circ: &mut QuantumCircuit, controls: &[usize], target: usize) -> Result<()> {
    match controls {
        [] => {
            circ.x(target)?;
        }
        [c] => {
            circ.cx(*c, target)?;
        }
        [c0, c1] => {
            circ.ccx(*c0, *c1, target)?;
        }
        _ => {
            circ.h(target)?;
            append_mcp(circ, PI, controls, target)?;
            circ.h(target)?;
        }
    }
    Ok(())
}

/// Appends a multi-controlled Z (phase flip of `|1…1⟩` over
/// `qubits`).
///
/// # Errors
///
/// Propagates operand-validation errors from the circuit. Requires at
/// least one qubit.
pub fn append_mcz(circ: &mut QuantumCircuit, qubits: &[usize]) -> Result<()> {
    let (target, controls) = qubits.split_last().expect("mcz needs at least one qubit");
    append_mcp(circ, PI, controls, *target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qukit_terra::complex::Complex;
    use qukit_terra::matrix::Matrix;
    use qukit_terra::reference;
    use std::f64::consts::TAU;

    #[test]
    fn ghz_produces_cat_state() {
        let state = reference::statevector(&ghz_circuit(5)).unwrap();
        assert!((state[0].norm_sqr() - 0.5).abs() < 1e-12);
        assert!((state[31].norm_sqr() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ghz_edge_cases() {
        assert_eq!(ghz_circuit(0).size(), 0);
        let one = ghz_circuit(1);
        assert_eq!(one.count_ops()["h"], 1);
        assert!(!one.count_ops().contains_key("cx"));
    }

    #[test]
    fn superposition_is_uniform() {
        let state = reference::statevector(&superposition_circuit(3)).unwrap();
        for amp in &state {
            assert!((amp.norm_sqr() - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    fn qft_matches_dft_matrix() {
        let n = 3;
        let dim = 1usize << n;
        let u = reference::unitary(&qft_circuit(n)).unwrap();
        // DFT matrix: F[y][x] = ω^{xy} / √N with ω = e^{2πi/N}.
        let mut dft = Matrix::zeros(dim, dim);
        let scale = 1.0 / (dim as f64).sqrt();
        for y in 0..dim {
            for x in 0..dim {
                dft[(y, x)] = Complex::cis(TAU * (x * y) as f64 / dim as f64).scale(scale);
            }
        }
        assert!(u.approx_eq_eps(&dft, 1e-9), "QFT is not the DFT");
    }

    #[test]
    fn iqft_inverts_qft() {
        let n = 4;
        let mut circ = qft_circuit(n);
        let qubits: Vec<usize> = (0..n).collect();
        append_iqft(&mut circ, &qubits).unwrap();
        let u = reference::unitary(&circ).unwrap();
        assert!(u.phase_equal_to(&Matrix::identity(1 << n)).is_some());
    }

    #[test]
    fn mcx_truth_table() {
        for num_controls in 0..=4usize {
            let n = num_controls + 1;
            let mut circ = QuantumCircuit::new(n);
            let controls: Vec<usize> = (0..num_controls).collect();
            append_mcx(&mut circ, &controls, num_controls).unwrap();
            let u = reference::unitary(&circ).unwrap();
            // Expected: X on target iff all controls set.
            let dim = 1usize << n;
            let mut expected = Matrix::identity(dim);
            let all_controls = (1usize << num_controls) - 1;
            let a = all_controls; // target 0
            let b = all_controls | (1 << num_controls); // target 1
            expected[(a, a)] = Complex::ZERO;
            expected[(b, b)] = Complex::ZERO;
            expected[(a, b)] = Complex::ONE;
            expected[(b, a)] = Complex::ONE;
            assert!(
                u.phase_equal_to(&expected).is_some(),
                "mcx with {num_controls} controls wrong"
            );
        }
    }

    #[test]
    fn mcz_flips_only_all_ones() {
        for n in 1..=4usize {
            let mut circ = QuantumCircuit::new(n);
            let qubits: Vec<usize> = (0..n).collect();
            append_mcz(&mut circ, &qubits).unwrap();
            let u = reference::unitary(&circ).unwrap();
            let dim = 1usize << n;
            let mut expected = Matrix::identity(dim);
            expected[(dim - 1, dim - 1)] = -Complex::ONE;
            assert!(u.phase_equal_to(&expected).is_some(), "mcz on {n} qubits wrong");
        }
    }

    #[test]
    fn mcp_applies_phase_conditionally() {
        let lambda = 0.9;
        let mut circ = QuantumCircuit::new(3);
        append_mcp(&mut circ, lambda, &[0, 1], 2).unwrap();
        let u = reference::unitary(&circ).unwrap();
        let mut expected = Matrix::identity(8);
        expected[(7, 7)] = Complex::cis(lambda);
        assert!(u.phase_equal_to(&expected).is_some());
    }
}

/// Builds an `n`-qubit W-state preparation circuit
/// (`(|10…0⟩ + |01…0⟩ + … + |0…01⟩)/√n`) by amplitude peeling with
/// controlled-Ry rotations.
///
/// # Panics
///
/// Panics when `n == 0`.
pub fn w_state_circuit(n: usize) -> QuantumCircuit {
    assert!(n > 0, "W state needs at least one qubit");
    let mut circ = QuantumCircuit::new(n);
    circ.set_name(format!("w_{n}"));
    circ.x(0).expect("qubit 0 exists");
    for i in 0..n - 1 {
        let theta = 2.0 * (1.0 / ((n - i) as f64).sqrt()).acos();
        circ.append(qukit_terra::gate::Gate::Cry(theta), &[i, i + 1]).expect("valid pair");
        circ.cx(i + 1, i).expect("valid pair");
    }
    circ
}

#[cfg(test)]
mod w_state_tests {
    use super::*;
    use qukit_terra::reference;

    #[test]
    fn w_state_amplitudes_are_uniform_single_excitations() {
        for n in [1usize, 2, 3, 4, 5] {
            let state = reference::statevector(&w_state_circuit(n)).unwrap();
            let expected = 1.0 / (n as f64).sqrt();
            for (idx, amp) in state.iter().enumerate() {
                if idx.count_ones() == 1 {
                    assert!((amp.norm() - expected).abs() < 1e-9, "n={n} idx={idx:b}: {amp}");
                } else {
                    assert!(amp.is_approx_zero(), "n={n} idx={idx:b} should be zero");
                }
            }
        }
    }

    #[test]
    fn w_state_dd_stays_small() {
        // W states are structured: the DD grows linearly, like GHZ.
        let n = 10;
        let state = qukit_dd::simulator::DdSimulator::new().run(&w_state_circuit(n)).unwrap();
        assert!(state.node_count() <= 3 * n, "nodes {}", state.node_count());
    }
}
