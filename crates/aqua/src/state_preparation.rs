//! Arbitrary state preparation.
//!
//! Synthesizes a circuit mapping `|0…0⟩` to any given amplitude vector
//! (Shende-Bullock-Markov style): the state is *disentangled* qubit by
//! qubit with uniformly-controlled Ry/Rz rotations, which decompose
//! recursively into CNOTs and single-qubit rotations; the prepared circuit
//! is the inverse of that disentangler. Gate count is `O(2^n)`, which is
//! optimal for generic states.

use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::complex::Complex;
use qukit_terra::error::Result;
use qukit_terra::gate::Gate;

/// Appends a uniformly-controlled rotation: applies `R(angles[k])` to
/// `target` where `k` is the basis value of `controls` (little-endian:
/// `controls[0]` is bit 0 of `k`).
///
/// The recursive decomposition halves the angle set per control using
/// `X·Ry(θ)·X = Ry(−θ)` (likewise for Rz), yielding `2^m` rotations and
/// `2^m` CNOTs for `m` controls.
///
/// # Errors
///
/// Propagates operand-validation errors.
///
/// # Panics
///
/// Panics if `angles.len() != 2^controls.len()` or `axis` is not `'Y'`/`'Z'`.
pub fn append_multiplexed_rotation(
    circ: &mut QuantumCircuit,
    axis: char,
    angles: &[f64],
    controls: &[usize],
    target: usize,
) -> Result<()> {
    assert_eq!(angles.len(), 1usize << controls.len(), "need one angle per control pattern");
    let make = |theta: f64| match axis {
        'Y' => Gate::Ry(theta),
        'Z' => Gate::Rz(theta),
        other => panic!("unsupported rotation axis '{other}'"),
    };
    if controls.is_empty() {
        if angles[0].abs() > 1e-12 {
            circ.append(make(angles[0]), &[target])?;
        }
        return Ok(());
    }
    // Split on the most significant control.
    let (rest, last) = (&controls[..controls.len() - 1], controls[controls.len() - 1]);
    let half = angles.len() / 2;
    let (low, high) = angles.split_at(half); // last-control = 0 / 1
    let sum: Vec<f64> = low.iter().zip(high).map(|(a, b)| (a + b) / 2.0).collect();
    let diff: Vec<f64> = low.iter().zip(high).map(|(a, b)| (a - b) / 2.0).collect();
    // Appending [R(sum), CX, R(diff), CX] yields the operator
    // CX·R(diff)·CX·R(sum): for control 0 it is R(sum+diff) = R(low);
    // for control 1 the conjugation flips diff, giving R(sum−diff) = R(high).
    append_multiplexed_rotation(circ, axis, &sum, rest, target)?;
    circ.cx(last, target)?;
    append_multiplexed_rotation(circ, axis, &diff, rest, target)?;
    circ.cx(last, target)?;
    Ok(())
}

/// Builds a circuit preparing the given (normalized) amplitude vector from
/// `|0…0⟩`, exactly (including global phase).
///
/// # Errors
///
/// Propagates operand-validation errors.
///
/// # Panics
///
/// Panics if the length is not a power of two or the vector norm deviates
/// from 1 by more than 1e-6.
pub fn prepare_state(amplitudes: &[Complex]) -> Result<QuantumCircuit> {
    assert!(amplitudes.len().is_power_of_two(), "length must be a power of two");
    let n = amplitudes.len().trailing_zeros() as usize;
    let norm: f64 = amplitudes.iter().map(|a| a.norm_sqr()).sum();
    assert!((norm - 1.0).abs() < 1e-6, "state must be normalized (norm² = {norm})");

    let mut circ = QuantumCircuit::new(n.max(1));
    circ.set_name("prepare_state");
    if n == 0 {
        circ.add_global_phase(amplitudes[0].arg());
        return Ok(circ);
    }
    // Disentangle from the top qubit down, recording the rotations; the
    // preparation circuit applies them inverted, in reverse order.
    let mut state = amplitudes.to_vec();
    // (axis, angles, controls, target) of each disentangling multiplexor.
    let mut steps: Vec<(char, Vec<f64>, Vec<usize>, usize)> = Vec::new();
    for qubit in (0..n).rev() {
        // The qubits above `qubit` are already |0⟩; the live block has
        // 2^(qubit+1) amplitudes, viewed as pairs over bit `qubit`.
        let block = 1usize << qubit;
        let mut ry_angles = Vec::with_capacity(block);
        let mut rz_angles = Vec::with_capacity(block);
        for k in 0..block {
            let a0 = state[k];
            let a1 = state[k + block];
            let r0 = a0.norm();
            let r1 = a1.norm();
            // Ry(-θ) zeroes the |1⟩ branch, with θ = 2·atan2(r1, r0).
            let theta = 2.0 * r1.atan2(r0);
            // Phase difference removed by Rz(-φ) beforehand.
            let phi = if r0 > 1e-12 && r1 > 1e-12 { a1.arg() - a0.arg() } else { 0.0 };
            ry_angles.push(theta);
            rz_angles.push(phi);
            // Update the residual amplitude: the multiplexed Rz(-φ) shifts
            // the surviving branch's phase by +φ/2 (Rz is symmetric), so
            // the residual phase is arg(a0) + φ/2.
            let merged = (r0 * r0 + r1 * r1).sqrt();
            let phase = if r0 > 1e-12 && r1 > 1e-12 {
                a0.arg() + phi / 2.0
            } else if r0 > 1e-12 {
                a0.arg()
            } else {
                a1.arg()
            };
            state[k] = Complex::from_polar(merged, phase);
        }
        let controls: Vec<usize> = (0..qubit).collect();
        // Disentangling applies Rz(-φ) then Ry(-θ); preparation will invert.
        steps.push(('Z', rz_angles, controls.clone(), qubit));
        steps.push(('Y', ry_angles, controls, qubit));
    }
    // Remaining scalar: the global phase of the target state.
    let residual_phase = state[0].arg();

    // Preparation = inverse of disentangling: reverse order, same angles
    // (the disentangler used the negated angles, so the inverse uses them
    // as recorded).
    circ.add_global_phase(residual_phase);
    for (axis, angles, controls, target) in steps.into_iter().rev() {
        if angles.iter().all(|a| a.abs() < 1e-12) {
            continue;
        }
        append_multiplexed_rotation(&mut circ, axis, &angles, &controls, target)?;
    }
    // The Rz multiplexors shift phases symmetrically (Rz(φ) = diag(e^{-iφ/2},
    // e^{iφ/2})), leaving a residual relative phase handled by comparing
    // against the target below — correct it with a final global-phase-exact
    // fix-up pass: compute the prepared state and rotate.
    let prepared = qukit_terra::reference::statevector(&circ)?;
    // Find the largest-amplitude component to anchor the phase.
    let (mut best, mut best_idx) = (0.0f64, 0usize);
    for (idx, amp) in prepared.iter().enumerate() {
        if amp.norm_sqr() > best {
            best = amp.norm_sqr();
            best_idx = idx;
        }
    }
    if best > 1e-12 && amplitudes[best_idx].norm_sqr() > 1e-12 {
        let correction = amplitudes[best_idx].arg() - prepared[best_idx].arg();
        circ.add_global_phase(correction);
    }
    Ok(circ)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qukit_terra::complex::c64;
    use qukit_terra::matrix::state_fidelity;
    use qukit_terra::reference;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_prepares(target: &[Complex]) {
        let circ = prepare_state(target).expect("synthesizable");
        let produced = reference::statevector(&circ).expect("simulable");
        let f = state_fidelity(&produced, target);
        assert!(f > 1.0 - 1e-9, "fidelity {f} for {target:?}");
        // Exact including global phase.
        for (a, b) in produced.iter().zip(target) {
            assert!(a.approx_eq_eps(*b, 1e-8), "exact amplitude mismatch: {a} vs {b}");
        }
    }

    #[test]
    fn prepares_basis_states() {
        for n in 1..=3usize {
            for idx in 0..(1usize << n) {
                let mut target = vec![Complex::ZERO; 1 << n];
                target[idx] = Complex::ONE;
                assert_prepares(&target);
            }
        }
    }

    #[test]
    fn prepares_bell_and_ghz() {
        let h = std::f64::consts::FRAC_1_SQRT_2;
        assert_prepares(&[c64(h, 0.0), Complex::ZERO, Complex::ZERO, c64(h, 0.0)]);
        let mut ghz = vec![Complex::ZERO; 8];
        ghz[0] = c64(h, 0.0);
        ghz[7] = c64(h, 0.0);
        assert_prepares(&ghz);
    }

    #[test]
    fn prepares_states_with_phases() {
        let h = std::f64::consts::FRAC_1_SQRT_2;
        assert_prepares(&[c64(h, 0.0), c64(0.0, h)]); // |+i⟩
        assert_prepares(&[c64(0.5, 0.0), c64(0.0, 0.5), c64(-0.5, 0.0), c64(0.0, -0.5)]);
    }

    #[test]
    fn prepares_random_states() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in 1..=4usize {
            for _ in 0..3 {
                let target = reference::random_state(n, &mut rng);
                assert_prepares(&target);
            }
        }
    }

    #[test]
    fn prepares_w_state() {
        let n = 3;
        let amp = 1.0 / (n as f64).sqrt();
        let mut target = vec![Complex::ZERO; 1 << n];
        for q in 0..n {
            target[1 << q] = c64(amp, 0.0);
        }
        assert_prepares(&target);
    }

    #[test]
    fn multiplexed_rotation_truth_table() {
        // 2 controls, 4 angles: each control pattern selects its angle.
        let angles = [0.3, -0.7, 1.1, 2.0];
        for pattern in 0..4usize {
            let mut circ = QuantumCircuit::new(3);
            for c in 0..2 {
                if (pattern >> c) & 1 == 1 {
                    circ.x(c).unwrap();
                }
            }
            append_multiplexed_rotation(&mut circ, 'Y', &angles, &[0, 1], 2).unwrap();
            let state = reference::statevector(&circ).unwrap();
            // Target qubit rotated by angles[pattern] from |0⟩:
            // amplitude of |1⟩ is sin(θ/2), sign included.
            let base = pattern; // control qubits' basis index
            let amp0 = state[base];
            let amp1 = state[base | (1 << 2)];
            let expected0 = (angles[pattern] / 2.0).cos();
            let expected1 = (angles[pattern] / 2.0).sin();
            assert!(
                (amp0.re - expected0).abs() < 1e-9 && amp0.im.abs() < 1e-9,
                "pattern {pattern}: amp0 {amp0} vs {expected0}"
            );
            assert!(
                (amp1.re - expected1).abs() < 1e-9 && amp1.im.abs() < 1e-9,
                "pattern {pattern}: amp1 {amp1} vs {expected1} (sign matters)"
            );
        }
    }

    #[test]
    fn gate_count_is_exponential_but_bounded() {
        let mut rng = StdRng::seed_from_u64(7);
        let target = reference::random_state(4, &mut rng);
        let circ = prepare_state(&target).unwrap();
        // Bound: ~2 multiplexors per qubit, each ≤ 2·2^k gates.
        assert!(circ.num_gates() < 150, "gates {}", circ.num_gates());
    }

    #[test]
    #[should_panic(expected = "normalized")]
    fn unnormalized_input_panics() {
        let _ = prepare_state(&[Complex::ONE, Complex::ONE]);
    }

    #[test]
    fn single_amplitude_scalar_case() {
        let circ = prepare_state(&[Complex::cis(0.9)]).unwrap();
        assert!((circ.global_phase() - 0.9).abs() < 1e-12);
    }
}
