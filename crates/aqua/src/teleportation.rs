//! Quantum teleportation.
//!
//! The canonical demonstration of entanglement + classical communication,
//! exercising the toolchain's mid-circuit measurement and classically
//! conditioned corrections (OpenQASM `if`).

use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::error::Result;
use qukit_terra::gate::Gate;

/// Builds the 3-qubit teleportation circuit.
///
/// Qubit 0 holds the message state (prepared by `prepare`), qubits 1-2 the
/// Bell pair. After Bell measurement of qubits 0-1 into classical
/// registers `m0`/`m1` and conditioned X/Z corrections, qubit 2 holds the
/// message; it is measured into register `out`.
///
/// # Errors
///
/// Propagates operand-validation errors from circuit construction.
pub fn teleport_circuit(prepare: &[(Gate, usize)]) -> Result<QuantumCircuit> {
    let mut circ = QuantumCircuit::empty();
    circ.set_name("teleport");
    circ.add_qreg("q", 3)?;
    circ.add_creg("m0", 1)?;
    circ.add_creg("m1", 1)?;
    circ.add_creg("out", 1)?;
    // Message preparation on qubit 0.
    for &(gate, q) in prepare {
        assert_eq!(q, 0, "message preparation must act on qubit 0");
        circ.append(gate, &[0])?;
    }
    // Bell pair between 1 and 2.
    circ.h(1)?;
    circ.cx(1, 2)?;
    // Bell measurement of 0 and 1.
    circ.cx(0, 1)?;
    circ.h(0)?;
    circ.measure(0, 0)?; // m0
    circ.measure(1, 1)?; // m1
                         // Conditioned corrections on qubit 2.
    circ.append_conditional(Gate::X, &[2], "m1", 1)?;
    circ.append_conditional(Gate::Z, &[2], "m0", 1)?;
    // Read out the teleported state.
    circ.measure(2, 2)?; // out
    Ok(circ)
}

/// Probability that the teleported qubit measures `1`, estimated with the
/// shot-based simulator.
///
/// # Errors
///
/// Returns simulator errors as terra transpile errors for a uniform error
/// type.
pub fn teleported_one_probability(
    prepare: &[(Gate, usize)],
    shots: usize,
    seed: u64,
) -> Result<f64> {
    let circ = teleport_circuit(prepare)?;
    let counts = qukit_aer::simulator::QasmSimulator::new()
        .with_seed(seed)
        .run(&circ, shots)
        .map_err(|e| qukit_terra::error::TerraError::Transpile { msg: e.to_string() })?;
    // Classical bit 2 is the output register.
    let ones: usize =
        counts.iter().filter(|(outcome, _)| (outcome >> 2) & 1 == 1).map(|(_, c)| c).sum();
    Ok(ones as f64 / shots as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn teleporting_zero_and_one_is_deterministic() {
        let p = teleported_one_probability(&[], 400, 1).unwrap();
        assert_eq!(p, 0.0, "teleported |0⟩ must read 0");
        let p = teleported_one_probability(&[(Gate::X, 0)], 400, 2).unwrap();
        assert_eq!(p, 1.0, "teleported |1⟩ must read 1");
    }

    #[test]
    fn teleporting_plus_state_is_balanced() {
        let p = teleported_one_probability(&[(Gate::H, 0)], 4000, 3).unwrap();
        assert!((p - 0.5).abs() < 0.05, "teleported |+⟩ probability {p}");
    }

    #[test]
    fn teleporting_rotated_state_preserves_statistics() {
        // Ry(θ)|0⟩ has P(1) = sin²(θ/2).
        let theta = 1.1f64;
        let p = teleported_one_probability(&[(Gate::Ry(theta), 0)], 6000, 4).unwrap();
        let expected = (theta / 2.0).sin().powi(2);
        assert!((p - expected).abs() < 0.03, "{p} vs {expected}");
    }

    #[test]
    fn corrections_are_actually_needed() {
        // Without the conditioned corrections the output is random for |1⟩.
        let mut circ = QuantumCircuit::empty();
        circ.add_qreg("q", 3).unwrap();
        circ.add_creg("m0", 1).unwrap();
        circ.add_creg("m1", 1).unwrap();
        circ.add_creg("out", 1).unwrap();
        circ.x(0).unwrap();
        circ.h(1).unwrap();
        circ.cx(1, 2).unwrap();
        circ.cx(0, 1).unwrap();
        circ.h(0).unwrap();
        circ.measure(0, 0).unwrap();
        circ.measure(1, 1).unwrap();
        circ.measure(2, 2).unwrap();
        let counts =
            qukit_aer::simulator::QasmSimulator::new().with_seed(5).run(&circ, 2000).unwrap();
        let ones: usize =
            counts.iter().filter(|(outcome, _)| (outcome >> 2) & 1 == 1).map(|(_, c)| c).sum();
        let p = ones as f64 / 2000.0;
        assert!((p - 0.5).abs() < 0.05, "uncorrected output must be random, got {p}");
    }

    #[test]
    fn circuit_structure() {
        let circ = teleport_circuit(&[]).unwrap();
        assert_eq!(circ.num_qubits(), 3);
        assert_eq!(circ.num_clbits(), 3);
        assert_eq!(circ.count_ops()["measure"], 3);
        let conditioned = circ.instructions().iter().filter(|i| i.condition.is_some()).count();
        assert_eq!(conditioned, 2);
    }
}
