//! # qukit-aqua
//!
//! Application-level quantum algorithms for the **qukit** toolchain — the
//! analogue of Qiskit's Aqua element in the DATE 2019 paper: "high-level
//! quantum algorithms for a multitude of applications", exposing
//! push-button interfaces that construct the underlying circuits from
//! problem descriptions.
//!
//! * [`operator`] — Pauli-string observables, the H2 molecular Hamiltonian
//!   and transverse-field Ising chains;
//! * [`vqe`] — the Variational Quantum Eigensolver (the algorithm the
//!   paper highlights as "at the basis of many of Aqua's applications");
//! * [`qaoa`] — QAOA for MaxCut;
//! * [`grover`] — Grover search with oracle and diffusion builders;
//! * [`oracle_algorithms`] — Deutsch-Jozsa and Bernstein-Vazirani;
//! * [`phase_estimation`] — quantum phase estimation;
//! * [`teleportation`] — teleportation with conditioned corrections;
//! * [`circuits`] — QFT, GHZ and multi-controlled gate builders;
//! * [`optimizers`] — Nelder-Mead and SPSA classical optimizers;
//! * [`linalg`] — exact Hermitian eigenvalues for classical references.
//!
//! # Examples
//!
//! ```
//! use qukit_aqua::operator::h2_hamiltonian;
//! use qukit_aqua::optimizers::NelderMead;
//! use qukit_aqua::vqe::{HardwareEfficientAnsatz, Vqe};
//!
//! # fn main() -> Result<(), qukit_terra::error::TerraError> {
//! let h2 = h2_hamiltonian();
//! let vqe = Vqe::new(&h2, HardwareEfficientAnsatz::new(2, 1));
//! let result = vqe.run(&NelderMead::new(), &[0.1; 8])?;
//! assert!((result.energy - h2.min_eigenvalue()).abs() < 1e-2);
//! # Ok(())
//! # }
//! ```

pub mod arithmetic;
pub mod circuits;
pub mod counting;
pub mod evolution;
pub mod grover;
pub mod linalg;
pub mod measurement;
pub mod operator;
pub mod optimizers;
pub mod oracle_algorithms;
pub mod phase_estimation;
pub mod qaoa;
pub mod simon;
pub mod state_preparation;
pub mod teleportation;
pub mod vqe;

pub use operator::{PauliOperator, PauliTerm};
pub use optimizers::{NelderMead, Optimizer, Spsa};
pub use qaoa::{Graph, Qaoa};
pub use vqe::{HardwareEfficientAnsatz, Vqe};
