//! Quantum counting (amplitude estimation).
//!
//! Estimates the *number* of marked states `M` among `N = 2^n` by running
//! phase estimation on the Grover iteration operator `G`, whose
//! eigenphases are `±2θ` with `sin²θ = M/N` — the canonical composition of
//! the Grover and QPE primitives, and a direct demonstration of amplitude
//! estimation's quadratic advantage over sampling.

use crate::circuits::append_iqft;
use crate::grover::{append_diffusion, append_phase_oracle};
use qukit_aer::simulator::QasmSimulator;
use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::controlled::controlled_circuit;
use qukit_terra::error::{Result, TerraError};
use std::f64::consts::PI;

/// Builds one Grover iteration `G = D·O` over `n` qubits for the marked
/// set.
///
/// # Errors
///
/// Propagates operand-validation errors.
pub fn grover_operator(n: usize, marked: &[u64]) -> Result<QuantumCircuit> {
    let mut circ = QuantumCircuit::new(n);
    circ.set_name("grover_operator");
    append_phase_oracle(&mut circ, marked)?;
    append_diffusion(&mut circ)?;
    // The H·X·MCZ·X·H diffusion realizes −(2|s⟩⟨s|−I); that global sign is
    // irrelevant for Grover search but becomes a physical π phase once the
    // operator is *controlled* (it would flip the counting estimate to
    // N−M). Cancel it explicitly.
    circ.add_global_phase(PI);
    Ok(circ)
}

/// Builds the quantum counting circuit: `t` counting qubits (indices
/// `0..t`, measured into clbits `0..t`) controlling powers of `G` on the
/// search register (indices `t..t+n`).
///
/// # Errors
///
/// Propagates circuit-construction errors.
pub fn counting_circuit(n: usize, marked: &[u64], t: usize) -> Result<QuantumCircuit> {
    let mut circ = QuantumCircuit::with_size(t + n, t);
    circ.set_name(format!("counting_{n}q_{t}bits"));
    for q in 0..t + n {
        circ.h(q)?;
    }
    // Controlled-G over the search register, control rewired per counting
    // qubit. controlled_circuit puts the control last (index n of the
    // operator's space); map operator qubit i -> t + i, control -> k.
    let controlled_g = controlled_circuit(&grover_operator(n, marked)?)?;
    for k in 0..t {
        let mut mapping: Vec<usize> = (t..t + n).collect();
        mapping.push(k);
        let repetitions = 1usize << k;
        for _ in 0..repetitions {
            circ.compose_mapped(&controlled_g, &mapping)?;
        }
    }
    let counting: Vec<usize> = (0..t).collect();
    append_iqft(&mut circ, &counting)?;
    for q in 0..t {
        circ.measure(q, q)?;
    }
    Ok(circ)
}

/// Converts a counting-register outcome to an estimate of `M`.
pub fn outcome_to_count(outcome: u64, t: usize, n: usize) -> f64 {
    let phase = outcome as f64 / (1u64 << t) as f64; // φ ∈ [0, 1)
    let theta = PI * phase; // eigenphase 2πφ = 2θ
    (1u64 << n) as f64 * theta.sin().powi(2)
}

/// Runs quantum counting end to end and returns the estimated number of
/// marked states (mode of the outcome distribution).
///
/// # Errors
///
/// Propagates circuit and simulation errors.
pub fn estimate_count(n: usize, marked: &[u64], t: usize, shots: usize, seed: u64) -> Result<f64> {
    let circ = counting_circuit(n, marked, t)?;
    let counts = QasmSimulator::new()
        .with_seed(seed)
        .run(&circ, shots)
        .map_err(|e| TerraError::Transpile { msg: e.to_string() })?;
    let best = counts.most_frequent().unwrap_or(0);
    Ok(outcome_to_count(best, t, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grover_operator_eigenstructure() {
        // G restricted to the 2D search space rotates by 2θ; applying it to
        // the uniform superposition advances the amplitude exactly as the
        // closed-form predicts.
        let n = 3;
        let marked = [5u64];
        let g = grover_operator(n, &marked).unwrap();
        let mut circ = crate::circuits::superposition_circuit(n);
        circ.compose(&g).unwrap();
        let p = crate::grover::success_probability(&circ, &marked).unwrap();
        let theta = (1.0f64 / 8.0).sqrt().asin();
        let expected = (3.0 * theta).sin().powi(2);
        assert!((p - expected).abs() < 1e-9, "{p} vs {expected}");
    }

    #[test]
    fn counts_single_marked_state() {
        let estimate = estimate_count(3, &[6], 4, 200, 1).unwrap();
        assert!((estimate - 1.0).abs() < 0.7, "estimate {estimate}");
    }

    #[test]
    fn counts_multiple_marked_states() {
        let estimate = estimate_count(3, &[1, 4, 6, 7], 4, 200, 2).unwrap();
        assert!((estimate - 4.0).abs() < 1.0, "estimate {estimate}");
    }

    #[test]
    fn counts_zero_marked_states() {
        let estimate = estimate_count(3, &[], 4, 200, 3).unwrap();
        assert!(estimate < 0.5, "estimate {estimate}");
    }

    #[test]
    fn outcome_conversion_symmetry() {
        // y and 2^t − y encode the same M (phases ±2θ).
        let (t, n) = (5usize, 4usize);
        for y in 1..(1u64 << t) / 2 {
            let a = outcome_to_count(y, t, n);
            let b = outcome_to_count((1u64 << t) - y, t, n);
            assert!((a - b).abs() < 1e-9, "y = {y}");
        }
        assert_eq!(outcome_to_count(0, t, n), 0.0);
    }

    #[test]
    fn more_counting_bits_tighten_the_estimate() {
        // M = 2 of N = 8: θ = asin(1/2) = π/6, not exactly representable;
        // accuracy should improve with t.
        let coarse = estimate_count(3, &[2, 5], 3, 300, 4).unwrap();
        let fine = estimate_count(3, &[2, 5], 5, 300, 4).unwrap();
        assert!((fine - 2.0).abs() <= (coarse - 2.0).abs() + 0.25, "coarse {coarse}, fine {fine}");
        assert!((fine - 2.0).abs() < 0.4, "fine {fine}");
    }
}
