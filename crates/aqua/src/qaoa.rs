//! QAOA for MaxCut.
//!
//! The second flagship hybrid algorithm of the Aqua layer: the Quantum
//! Approximate Optimization Algorithm applied to MaxCut, with the cost
//! Hamiltonian built from graph edges and the standard alternating
//! cost/mixer ansatz.

use crate::operator::PauliOperator;
use crate::optimizers::Optimizer;
use qukit_aer::simulator::{QasmSimulator, StatevectorSimulator};
use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::error::Result;

/// An undirected weighted graph for MaxCut.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    num_vertices: usize,
    edges: Vec<(usize, usize, f64)>,
}

impl Graph {
    /// Creates a graph; edges are `(u, v, weight)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range vertices or self-loops.
    pub fn new(num_vertices: usize, edges: &[(usize, usize, f64)]) -> Self {
        for &(u, v, _) in edges {
            assert!(u < num_vertices && v < num_vertices, "edge out of range");
            assert_ne!(u, v, "self-loops are not allowed");
        }
        Self { num_vertices, edges: edges.to_vec() }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// The edges.
    pub fn edges(&self) -> &[(usize, usize, f64)] {
        &self.edges
    }

    /// The cut value of an assignment (bit `v` of `assignment` = side of
    /// vertex `v`).
    pub fn cut_value(&self, assignment: u64) -> f64 {
        self.edges
            .iter()
            .filter(|&&(u, v, _)| ((assignment >> u) ^ (assignment >> v)) & 1 == 1)
            .map(|&(_, _, w)| w)
            .sum()
    }

    /// Exhaustive maximum cut (exponential; small graphs).
    pub fn max_cut_brute_force(&self) -> (u64, f64) {
        let mut best = (0u64, f64::NEG_INFINITY);
        for assignment in 0..(1u64 << self.num_vertices) {
            let value = self.cut_value(assignment);
            if value > best.1 {
                best = (assignment, value);
            }
        }
        best
    }

    /// The MaxCut cost Hamiltonian
    /// `C = Σ w/2 (1 - Z_u Z_v)`, returned with the sign flipped so that
    /// *minimizing* the operator maximizes the cut.
    pub fn cost_hamiltonian(&self) -> PauliOperator {
        let mut op = PauliOperator::default();
        let n = self.num_vertices;
        for &(u, v, w) in &self.edges {
            let mut label = vec!['I'; n];
            label[u] = 'Z';
            label[v] = 'Z';
            // -w/2 (1 - Z Z) = -w/2 + w/2 ZZ
            op.add_term(w / 2.0, label.into_iter().collect::<String>());
            op.add_term(-w / 2.0, "I".repeat(n));
        }
        op
    }
}

/// The QAOA ansatz: `p` alternating cost/mixer layers on a uniform
/// superposition. Parameters: `[γ_1..γ_p, β_1..β_p]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Qaoa<'a> {
    graph: &'a Graph,
    layers: usize,
}

/// Outcome of a QAOA run.
#[derive(Debug, Clone, PartialEq)]
pub struct QaoaResult {
    /// Best sampled assignment.
    pub assignment: u64,
    /// Its cut value.
    pub cut_value: f64,
    /// Optimal variational parameters `[γ…, β…]`.
    pub parameters: Vec<f64>,
    /// Approximation ratio vs the brute-force optimum.
    pub approximation_ratio: f64,
}

impl<'a> Qaoa<'a> {
    /// Creates a QAOA instance with `layers` rounds.
    ///
    /// # Panics
    ///
    /// Panics when `layers == 0`.
    pub fn new(graph: &'a Graph, layers: usize) -> Self {
        assert!(layers > 0, "QAOA needs at least one layer");
        Self { graph, layers }
    }

    /// Number of variational parameters (`2p`).
    pub fn num_parameters(&self) -> usize {
        2 * self.layers
    }

    /// Builds the bound QAOA circuit.
    ///
    /// # Errors
    ///
    /// Propagates circuit-construction errors.
    ///
    /// # Panics
    ///
    /// Panics on a wrong parameter count.
    pub fn circuit(&self, parameters: &[f64]) -> Result<QuantumCircuit> {
        assert_eq!(parameters.len(), self.num_parameters(), "expected 2p parameters");
        let n = self.graph.num_vertices();
        let (gammas, betas) = parameters.split_at(self.layers);
        let mut circ = QuantumCircuit::new(n);
        circ.set_name(format!("qaoa_p{}", self.layers));
        for q in 0..n {
            circ.h(q)?;
        }
        for layer in 0..self.layers {
            // Cost layer: e^{-iγ w Z_u Z_v / ...} per edge via Rzz.
            for &(u, v, w) in self.graph.edges() {
                circ.append(qukit_terra::gate::Gate::Rzz(gammas[layer] * w), &[u, v])?;
            }
            // Mixer layer.
            for q in 0..n {
                circ.rx(2.0 * betas[layer], q)?;
            }
        }
        Ok(circ)
    }

    /// Exact expectation of the (negated-cut) cost Hamiltonian for the
    /// given parameters.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn expectation(&self, parameters: &[f64]) -> Result<f64> {
        let circ = self.circuit(parameters)?;
        let state = StatevectorSimulator::new()
            .run(&circ)
            .map_err(|e| qukit_terra::error::TerraError::Transpile { msg: e.to_string() })?;
        Ok(self.graph.cost_hamiltonian().expectation(&state))
    }

    /// Runs the full hybrid loop: optimize parameters, then sample the best
    /// assignment.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn run(
        &self,
        optimizer: &dyn Optimizer,
        initial: &[f64],
        shots: usize,
        seed: u64,
    ) -> Result<QaoaResult> {
        let mut failure = None;
        let mut objective = |params: &[f64]| -> f64 {
            match self.expectation(params) {
                Ok(v) => v,
                Err(e) => {
                    failure = Some(e);
                    f64::INFINITY
                }
            }
        };
        let opt = optimizer.minimize(&mut objective, initial);
        if let Some(e) = failure {
            return Err(e);
        }
        // Sample the optimized circuit; pick the best observed cut.
        let mut circ = self.circuit(&opt.parameters)?;
        circ.measure_all();
        let counts = QasmSimulator::new()
            .with_seed(seed)
            .run(&circ, shots)
            .map_err(|e| qukit_terra::error::TerraError::Transpile { msg: e.to_string() })?;
        let mut best = (0u64, f64::NEG_INFINITY);
        for (outcome, _) in counts.iter() {
            let value = self.graph.cut_value(outcome);
            if value > best.1 {
                best = (outcome, value);
            }
        }
        let (_, optimum) = self.graph.max_cut_brute_force();
        Ok(QaoaResult {
            assignment: best.0,
            cut_value: best.1,
            parameters: opt.parameters,
            approximation_ratio: if optimum > 0.0 { best.1 / optimum } else { 1.0 },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizers::NelderMead;

    fn square_graph() -> Graph {
        Graph::new(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)])
    }

    #[test]
    fn cut_values_and_brute_force() {
        let g = square_graph();
        assert_eq!(g.cut_value(0b0101), 4.0);
        assert_eq!(g.cut_value(0b0011), 2.0);
        assert_eq!(g.cut_value(0), 0.0);
        let (best, value) = g.max_cut_brute_force();
        assert_eq!(value, 4.0);
        assert!(best == 0b0101 || best == 0b1010);
    }

    #[test]
    fn cost_hamiltonian_reproduces_negative_cut_on_basis_states() {
        let g = square_graph();
        let h = g.cost_hamiltonian();
        let m = h.to_matrix();
        // Diagonal entry for basis state |x⟩ must be -cut(x).
        for x in 0..16usize {
            let diag = m.get(x, x).unwrap().re;
            assert!(
                (diag + g.cut_value(x as u64)).abs() < 1e-12,
                "state {x:04b}: {diag} vs cut {}",
                g.cut_value(x as u64)
            );
        }
    }

    #[test]
    fn qaoa_finds_square_maxcut() {
        let g = square_graph();
        let qaoa = Qaoa::new(&g, 2);
        let optimizer = NelderMead { max_evaluations: 800, ..NelderMead::new() };
        let result = qaoa.run(&optimizer, &[0.4, 0.4, 0.4, 0.4], 512, 3).unwrap();
        assert_eq!(result.cut_value, 4.0, "must find the perfect cut");
        assert!((result.approximation_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn qaoa_on_weighted_triangle() {
        let g = Graph::new(3, &[(0, 1, 2.0), (1, 2, 1.0), (0, 2, 1.0)]);
        let (_, optimum) = g.max_cut_brute_force();
        assert_eq!(optimum, 3.0); // separate vertex 0 or 1
        let qaoa = Qaoa::new(&g, 2);
        let optimizer = NelderMead { max_evaluations: 800, ..NelderMead::new() };
        let result = qaoa.run(&optimizer, &[0.3, 0.5, 0.2, 0.6], 512, 5).unwrap();
        assert!(result.approximation_ratio > 0.99, "ratio {}", result.approximation_ratio);
    }

    #[test]
    fn deeper_ansatz_does_not_hurt_expectation() {
        let g = square_graph();
        let q1 = Qaoa::new(&g, 1);
        let optimizer = NelderMead { max_evaluations: 600, ..NelderMead::new() };
        let mut obj1 = |p: &[f64]| q1.expectation(p).unwrap();
        let e1 = optimizer.minimize(&mut obj1, &[0.4, 0.4]).value;
        let q2 = Qaoa::new(&g, 2);
        let mut obj2 = |p: &[f64]| q2.expectation(p).unwrap();
        let e2 = optimizer.minimize(&mut obj2, &[0.4, 0.4, 0.4, 0.4]).value;
        assert!(e2 <= e1 + 1e-6, "p=2 ({e2}) must reach at least p=1 ({e1})");
    }

    #[test]
    fn graph_validation() {
        assert!(std::panic::catch_unwind(|| Graph::new(2, &[(0, 5, 1.0)])).is_err());
        assert!(std::panic::catch_unwind(|| Graph::new(2, &[(1, 1, 1.0)])).is_err());
    }
}
