//! The Variational Quantum Eigensolver.
//!
//! The paper singles VQE out as the algorithm "at the basis of many of
//! Aqua's applications" [15]: a hardware-efficient parameterized ansatz is
//! executed on the quantum backend while a conventional optimizer tunes
//! the parameters to minimize the energy `⟨ψ(θ)|H|ψ(θ)⟩` — the archetypal
//! conventional-quantum hybrid algorithm.

use crate::operator::PauliOperator;
use crate::optimizers::{OptimizationResult, Optimizer};
use qukit_aer::simulator::StatevectorSimulator;
use qukit_aer::statevector::Statevector;
use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::error::Result;

/// The hardware-efficient ansatz of Kandala et al. (Nature 2017): layers
/// of single-qubit `Ry`/`Rz` rotations interleaved with a linear CX
/// entangler, finishing with a final rotation layer.
///
/// Parameter count: `2 · n · (layers + 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardwareEfficientAnsatz {
    /// Number of qubits.
    pub num_qubits: usize,
    /// Number of entangling layers.
    pub layers: usize,
}

impl HardwareEfficientAnsatz {
    /// Creates an ansatz description.
    pub fn new(num_qubits: usize, layers: usize) -> Self {
        Self { num_qubits, layers }
    }

    /// Number of free parameters.
    pub fn num_parameters(&self) -> usize {
        2 * self.num_qubits * (self.layers + 1)
    }

    /// Builds the bound circuit for a parameter vector.
    ///
    /// # Errors
    ///
    /// Propagates circuit-construction errors.
    ///
    /// # Panics
    ///
    /// Panics if `parameters.len() != self.num_parameters()`.
    pub fn circuit(&self, parameters: &[f64]) -> Result<QuantumCircuit> {
        assert_eq!(
            parameters.len(),
            self.num_parameters(),
            "expected {} parameters",
            self.num_parameters()
        );
        let mut circ = QuantumCircuit::new(self.num_qubits);
        circ.set_name("hardware_efficient_ansatz");
        let mut idx = 0;
        let rotation_layer = |circ: &mut QuantumCircuit, idx: &mut usize| -> Result<()> {
            for q in 0..self.num_qubits {
                circ.ry(parameters[*idx], q)?;
                circ.rz(parameters[*idx + 1], q)?;
                *idx += 2;
            }
            Ok(())
        };
        rotation_layer(&mut circ, &mut idx)?;
        for _ in 0..self.layers {
            for q in 0..self.num_qubits.saturating_sub(1) {
                circ.cx(q, q + 1)?;
            }
            rotation_layer(&mut circ, &mut idx)?;
        }
        Ok(circ)
    }
}

/// VQE driver: ansatz + Hamiltonian + optimizer.
#[derive(Debug)]
pub struct Vqe<'a> {
    hamiltonian: &'a PauliOperator,
    ansatz: HardwareEfficientAnsatz,
}

/// Outcome of a VQE run.
#[derive(Debug, Clone, PartialEq)]
pub struct VqeResult {
    /// The minimized energy.
    pub energy: f64,
    /// The optimal ansatz parameters.
    pub parameters: Vec<f64>,
    /// Objective evaluations consumed.
    pub evaluations: usize,
}

impl<'a> Vqe<'a> {
    /// Creates a VQE instance.
    ///
    /// # Panics
    ///
    /// Panics if ansatz and Hamiltonian widths differ.
    pub fn new(hamiltonian: &'a PauliOperator, ansatz: HardwareEfficientAnsatz) -> Self {
        assert_eq!(
            hamiltonian.num_qubits(),
            ansatz.num_qubits,
            "ansatz and Hamiltonian widths differ"
        );
        Self { hamiltonian, ansatz }
    }

    /// The exact energy for a given parameter vector (statevector
    /// expectation — the "clean simulator" evaluation mode).
    ///
    /// # Errors
    ///
    /// Propagates circuit or simulation errors.
    pub fn energy(&self, parameters: &[f64]) -> Result<f64> {
        let circ = self.ansatz.circuit(parameters)?;
        let state: Statevector = StatevectorSimulator::new()
            .run(&circ)
            .map_err(|e| qukit_terra::error::TerraError::Transpile { msg: e.to_string() })?;
        Ok(self.hamiltonian.expectation(&state))
    }

    /// Shot-based energy estimate (the hardware-realistic evaluation mode):
    /// measures each qubit-wise-commuting term group with `shots` samples,
    /// optionally under a noise model.
    ///
    /// # Errors
    ///
    /// Propagates circuit or simulation errors.
    pub fn sampled_energy(
        &self,
        parameters: &[f64],
        shots: usize,
        seed: u64,
        noise: Option<&qukit_aer::noise::NoiseModel>,
    ) -> Result<f64> {
        let circ = self.ansatz.circuit(parameters)?;
        crate::measurement::estimate_expectation(self.hamiltonian, &circ, shots, seed, noise)
    }

    /// Runs the hybrid loop on the *sampled* objective — the full
    /// conventional-quantum loop as it runs against hardware, with shot
    /// noise. SPSA-style optimizers are recommended.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn run_sampled(
        &self,
        optimizer: &dyn Optimizer,
        initial: &[f64],
        shots: usize,
        seed: u64,
    ) -> Result<VqeResult> {
        let mut failure: Option<qukit_terra::error::TerraError> = None;
        let mut evaluation = 0u64;
        let mut objective = |params: &[f64]| -> f64 {
            evaluation += 1;
            match self.sampled_energy(params, shots, seed.wrapping_add(evaluation), None) {
                Ok(e) => e,
                Err(e) => {
                    failure = Some(e);
                    f64::INFINITY
                }
            }
        };
        let OptimizationResult { parameters, value: _, evaluations } =
            optimizer.minimize(&mut objective, initial);
        if let Some(e) = failure {
            return Err(e);
        }
        // Re-evaluate the final point exactly for an unbiased report.
        let energy = self.energy(&parameters)?;
        Ok(VqeResult { energy, parameters, evaluations })
    }

    /// Runs the hybrid loop with the given optimizer and starting point.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors (surfaced as panics inside the
    /// optimizer closure would otherwise be lost; evaluation errors abort
    /// with the first parameter set that failed).
    pub fn run(&self, optimizer: &dyn Optimizer, initial: &[f64]) -> Result<VqeResult> {
        let mut failure: Option<qukit_terra::error::TerraError> = None;
        let mut objective = |params: &[f64]| -> f64 {
            match self.energy(params) {
                Ok(e) => e,
                Err(e) => {
                    failure = Some(e);
                    f64::INFINITY
                }
            }
        };
        let OptimizationResult { parameters, value, evaluations } =
            optimizer.minimize(&mut objective, initial);
        if let Some(e) = failure {
            return Err(e);
        }
        Ok(VqeResult { energy: value, parameters, evaluations })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{h2_hamiltonian, transverse_field_ising, PauliOperator};
    use crate::optimizers::{NelderMead, Spsa};

    #[test]
    fn ansatz_parameter_count_and_structure() {
        let ansatz = HardwareEfficientAnsatz::new(3, 2);
        assert_eq!(ansatz.num_parameters(), 18);
        let circ = ansatz.circuit(&[0.1; 18]).unwrap();
        assert_eq!(circ.count_ops()["cx"], 4);
        assert_eq!(circ.count_ops()["ry"], 9);
        assert_eq!(circ.count_ops()["rz"], 9);
    }

    #[test]
    #[should_panic(expected = "expected 4 parameters")]
    fn wrong_parameter_count_panics() {
        let ansatz = HardwareEfficientAnsatz::new(1, 1);
        let _ = ansatz.circuit(&[0.0]);
    }

    #[test]
    fn zero_parameters_give_zero_state_energy() {
        // All-zero parameters leave |00⟩; H2 expectation there is the sum of
        // the diagonal terms' values on |00⟩.
        let h2 = h2_hamiltonian();
        let vqe = Vqe::new(&h2, HardwareEfficientAnsatz::new(2, 1));
        let e = vqe.energy(&[0.0; 8]).unwrap();
        // ⟨00|H|00⟩ = -1.0524 + 0.3979 - 0.3979 - 0.0113 = -1.0636
        assert!((e - (-1.06365)).abs() < 1e-3, "energy {e}");
    }

    #[test]
    fn vqe_reaches_h2_ground_state() {
        let h2 = h2_hamiltonian();
        let exact = h2.min_eigenvalue();
        let vqe = Vqe::new(&h2, HardwareEfficientAnsatz::new(2, 1));
        let optimizer = NelderMead { max_evaluations: 4000, ..NelderMead::new() };
        let initial = vec![0.1; 8];
        let result = vqe.run(&optimizer, &initial).unwrap();
        assert!((result.energy - exact).abs() < 1e-3, "VQE {} vs exact {exact}", result.energy);
    }

    #[test]
    fn vqe_with_spsa_approaches_ground_state() {
        let h2 = h2_hamiltonian();
        let exact = h2.min_eigenvalue();
        let vqe = Vqe::new(&h2, HardwareEfficientAnsatz::new(2, 1));
        let optimizer = Spsa { iterations: 1000, a: 1.0, c: 0.2, seed: 11 };
        let result = vqe.run(&optimizer, &[0.2; 8]).unwrap();
        assert!(
            (result.energy - exact).abs() < 0.05,
            "SPSA VQE {} vs exact {exact}",
            result.energy
        );
    }

    #[test]
    fn vqe_on_ising_chain() {
        let ising = transverse_field_ising(3, 1.0, 0.7);
        let exact = ising.min_eigenvalue();
        let vqe = Vqe::new(&ising, HardwareEfficientAnsatz::new(3, 2));
        let optimizer = NelderMead { max_evaluations: 6000, ..NelderMead::new() };
        let result = vqe.run(&optimizer, &[0.3; 18]).unwrap();
        assert!(
            (result.energy - exact).abs() < 0.02,
            "Ising VQE {} vs exact {exact}",
            result.energy
        );
    }

    #[test]
    fn energy_is_above_ground_state_always() {
        // Variational principle: any parameters give E >= E0.
        let h2 = h2_hamiltonian();
        let exact = h2.min_eigenvalue();
        let vqe = Vqe::new(&h2, HardwareEfficientAnsatz::new(2, 1));
        for seed in 0..5 {
            let params: Vec<f64> =
                (0..8).map(|i| ((seed * 8 + i) as f64 * 0.77).sin() * 2.0).collect();
            let e = vqe.energy(&params).unwrap();
            assert!(e >= exact - 1e-9, "variational bound violated: {e} < {exact}");
        }
    }

    #[test]
    fn sampled_vqe_approaches_ground_state() {
        let h2 = h2_hamiltonian();
        let exact = h2.min_eigenvalue();
        let vqe = Vqe::new(&h2, HardwareEfficientAnsatz::new(2, 1));
        let optimizer = Spsa { iterations: 300, a: 1.0, c: 0.3, seed: 11 };
        let result = vqe.run_sampled(&optimizer, &[0.2; 8], 512, 77).unwrap();
        assert!(
            (result.energy - exact).abs() < 0.1,
            "sampled VQE {} vs exact {exact}",
            result.energy
        );
    }

    #[test]
    fn sampled_energy_tracks_exact_energy() {
        let h2 = h2_hamiltonian();
        let vqe = Vqe::new(&h2, HardwareEfficientAnsatz::new(2, 1));
        let params = vec![0.3, -0.2, 0.7, 0.1, -0.4, 0.5, 0.2, -0.1];
        let exact = vqe.energy(&params).unwrap();
        let sampled = vqe.sampled_energy(&params, 20_000, 3, None).unwrap();
        assert!((sampled - exact).abs() < 0.03, "{sampled} vs {exact}");
    }

    #[test]
    #[should_panic(expected = "widths differ")]
    fn width_mismatch_panics() {
        let op = PauliOperator::from_terms(&[(1.0, "ZZZ")]);
        let _ = Vqe::new(&op, HardwareEfficientAnsatz::new(2, 1));
    }
}
