//! Small dense linear-algebra routines for Hermitian operators.
//!
//! Exact references for the variational algorithms: extremal eigenvalues
//! of Hamiltonian matrices via shifted power iteration with deflation.
//! Dimensions stay small (`≤ 2^10`), so simplicity beats sophistication.

use qukit_terra::complex::Complex;
use qukit_terra::matrix::Matrix;

/// An upper bound on the spectral radius via the Gershgorin circle theorem.
pub fn gershgorin_bound(m: &Matrix) -> f64 {
    let mut bound = 0.0f64;
    for i in 0..m.rows() {
        let mut radius = 0.0;
        for j in 0..m.cols() {
            if i != j {
                radius += m[(i, j)].norm();
            }
        }
        bound = bound.max(m[(i, i)].norm() + radius);
    }
    bound
}

/// The largest eigenvalue of a Hermitian matrix (power iteration).
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn max_eigenvalue_hermitian(m: &Matrix) -> f64 {
    assert!(m.is_square(), "eigenvalue of a non-square matrix");
    // Shift to make the target eigenvalue the one of largest magnitude:
    // A + cI has spectrum shifted by +c; with c = gershgorin bound all
    // eigenvalues are >= 0 and the max is dominant.
    let c = gershgorin_bound(m) + 1.0;
    let shifted = m.add(&Matrix::identity(m.rows()).scale(Complex::from_real(c)));
    dominant_eigenvalue(&shifted) - c
}

/// The smallest eigenvalue of a Hermitian matrix.
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn min_eigenvalue_hermitian(m: &Matrix) -> f64 {
    -max_eigenvalue_hermitian(&m.scale(Complex::from_real(-1.0)))
}

/// Power iteration for the dominant (largest-magnitude, here largest
/// positive) eigenvalue of a positive semidefinite Hermitian matrix.
fn dominant_eigenvalue(m: &Matrix) -> f64 {
    let n = m.rows();
    // Deterministic pseudo-random start vector (no RNG dependency here).
    let mut v: Vec<Complex> = (0..n)
        .map(|i| {
            Complex::new(((i * 2654435761) % 1000) as f64 / 1000.0 + 0.1, 0.3 / (i + 1) as f64)
        })
        .collect();
    qukit_terra::matrix::normalize(&mut v);
    let mut eigenvalue = 0.0;
    for _ in 0..10_000 {
        let mut next = m.matvec(&v);
        let norm = qukit_terra::matrix::normalize(&mut next);
        let delta = (norm - eigenvalue).abs();
        eigenvalue = norm;
        v = next;
        if delta < 1e-12 * (1.0 + eigenvalue) {
            break;
        }
    }
    // Rayleigh quotient for the final estimate (more accurate than the
    // norm when convergence is slow).
    let mv = m.matvec(&v);
    qukit_terra::matrix::inner_product(&v, &mv).re
}

/// All eigenvalues of a small Hermitian matrix by repeated deflation
/// (ascending order). Intended for dimensions up to ~64.
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn eigenvalues_hermitian(m: &Matrix) -> Vec<f64> {
    assert!(m.is_square(), "eigenvalues of a non-square matrix");
    let n = m.rows();
    // Shift to positive definite, then repeatedly extract the dominant
    // eigenpair and deflate: A' = A - λ v v†.
    let c = gershgorin_bound(m) + 1.0;
    let mut work = m.add(&Matrix::identity(n).scale(Complex::from_real(c)));
    let mut values = Vec::with_capacity(n);
    let mut found: Vec<Vec<Complex>> = Vec::with_capacity(n);
    for round in 0..n {
        let (lambda, v) = dominant_eigenpair(&work, &found, round as u64);
        values.push(lambda - c);
        // Deflate.
        for i in 0..n {
            for j in 0..n {
                let update = v[i] * v[j].conj() * lambda;
                work[(i, j)] -= update;
            }
        }
        found.push(v);
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite eigenvalues"));
    values
}

/// Projects out previously found eigenvectors (Gram-Schmidt step).
fn orthogonalize(v: &mut [Complex], found: &[Vec<Complex>]) {
    for f in found {
        let overlap = qukit_terra::matrix::inner_product(f, v);
        for (vi, fi) in v.iter_mut().zip(f) {
            *vi -= overlap * *fi;
        }
    }
}

/// Power iteration for the dominant eigenpair, kept orthogonal to the
/// already-extracted eigenvectors. A fixed start vector could be exactly
/// orthogonal to the remaining dominant eigenspace (this happens
/// systematically for degenerate spectra after deflation), so the start is
/// salted per deflation round.
fn dominant_eigenpair(m: &Matrix, found: &[Vec<Complex>], salt: u64) -> (f64, Vec<Complex>) {
    let n = m.rows();
    let s = salt as f64 + 1.0;
    let mut v: Vec<Complex> = (0..n)
        .map(|i| {
            Complex::new(1.0 + (i as f64 * 0.7 + s * 1.9).sin(), (i as f64 * 1.3 + s * 0.41).cos())
        })
        .collect();
    orthogonalize(&mut v, found);
    qukit_terra::matrix::normalize(&mut v);
    for _ in 0..20_000 {
        let mut next = m.matvec(&v);
        orthogonalize(&mut next, found);
        let norm = qukit_terra::matrix::normalize(&mut next);
        let diff: f64 = next.iter().zip(&v).map(|(a, b)| (*a - *b).norm_sqr()).sum();
        v = next;
        if norm <= 1e-12 {
            break;
        }
        if diff < 1e-24 {
            break;
        }
    }
    let mv = m.matvec(&v);
    let lambda = qukit_terra::matrix::inner_product(&v, &mv).re;
    (lambda, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qukit_terra::complex::c64;

    fn diag(values: &[f64]) -> Matrix {
        let n = values.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &v) in values.iter().enumerate() {
            m[(i, i)] = c64(v, 0.0);
        }
        m
    }

    #[test]
    fn extremal_eigenvalues_of_diagonal() {
        let m = diag(&[3.0, -5.0, 1.0, 2.0]);
        assert!((max_eigenvalue_hermitian(&m) - 3.0).abs() < 1e-8);
        assert!((min_eigenvalue_hermitian(&m) + 5.0).abs() < 1e-8);
    }

    #[test]
    fn eigenvalues_of_pauli_x() {
        let x =
            Matrix::from_vec(2, 2, vec![Complex::ZERO, Complex::ONE, Complex::ONE, Complex::ZERO]);
        let values = eigenvalues_hermitian(&x);
        assert!((values[0] + 1.0).abs() < 1e-8);
        assert!((values[1] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn eigenvalues_with_complex_entries() {
        // Pauli Y: eigenvalues ±1.
        let y = Matrix::from_vec(2, 2, vec![Complex::ZERO, -Complex::I, Complex::I, Complex::ZERO]);
        let values = eigenvalues_hermitian(&y);
        assert!((values[0] + 1.0).abs() < 1e-8);
        assert!((values[1] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn degenerate_spectrum() {
        let m = diag(&[2.0, 2.0, -1.0]);
        let values = eigenvalues_hermitian(&m);
        assert!((values[0] + 1.0).abs() < 1e-6);
        assert!((values[1] - 2.0).abs() < 1e-6);
        assert!((values[2] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn gershgorin_bounds_spectrum() {
        let m = diag(&[3.0, -4.0]);
        assert!(gershgorin_bound(&m) >= 4.0);
    }

    #[test]
    fn full_spectrum_sums_to_trace() {
        // Random-ish Hermitian 4x4.
        let mut m = Matrix::zeros(4, 4);
        let entries = [
            (0, 0, 1.0, 0.0),
            (1, 1, -2.0, 0.0),
            (2, 2, 0.5, 0.0),
            (3, 3, 3.0, 0.0),
            (0, 1, 0.3, 0.1),
            (0, 2, -0.2, 0.4),
            (1, 3, 0.7, -0.6),
        ];
        for &(i, j, re, im) in &entries {
            m[(i, j)] = c64(re, im);
            if i != j {
                m[(j, i)] = c64(re, -im);
            }
        }
        let values = eigenvalues_hermitian(&m);
        let sum: f64 = values.iter().sum();
        assert!((sum - m.trace().re).abs() < 1e-6, "sum {sum} vs trace {}", m.trace().re);
    }
}
