//! Classical optimizers for variational quantum algorithms.
//!
//! Hybrid conventional-quantum algorithms like VQE (Section III "Aqua")
//! loop a classical optimizer around a quantum expectation evaluation.
//! Two complementary optimizers are provided:
//!
//! * [`NelderMead`] — derivative-free simplex search, robust on exact
//!   (noise-free) objectives;
//! * [`Spsa`] — simultaneous-perturbation stochastic approximation, the
//!   standard choice for shot-noise objectives on hardware.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of an optimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizationResult {
    /// Optimal parameters found.
    pub parameters: Vec<f64>,
    /// Objective value at the optimum.
    pub value: f64,
    /// Number of objective evaluations used.
    pub evaluations: usize,
}

/// A minimizer of `f: R^n → R`.
pub trait Optimizer {
    /// Minimizes `objective` starting from `initial`.
    fn minimize(
        &self,
        objective: &mut dyn FnMut(&[f64]) -> f64,
        initial: &[f64],
    ) -> OptimizationResult;
}

/// Derivative-free Nelder-Mead simplex minimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NelderMead {
    /// Maximum objective evaluations.
    pub max_evaluations: usize,
    /// Convergence tolerance on the simplex value spread.
    pub tolerance: f64,
    /// Initial simplex step per coordinate.
    pub initial_step: f64,
}

impl Default for NelderMead {
    fn default() -> Self {
        Self { max_evaluations: 2000, tolerance: 1e-9, initial_step: 0.5 }
    }
}

impl NelderMead {
    /// Creates the optimizer with default settings.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Optimizer for NelderMead {
    fn minimize(
        &self,
        objective: &mut dyn FnMut(&[f64]) -> f64,
        initial: &[f64],
    ) -> OptimizationResult {
        let n = initial.len();
        let mut evals = 0usize;
        let mut eval = |x: &[f64], evals: &mut usize| {
            *evals += 1;
            objective(x)
        };
        // Initial simplex: x0 plus a step along each axis.
        let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
        let f0 = eval(initial, &mut evals);
        simplex.push((initial.to_vec(), f0));
        for i in 0..n {
            let mut p = initial.to_vec();
            p[i] += self.initial_step;
            let fp = eval(&p, &mut evals);
            simplex.push((p, fp));
        }
        let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
        while evals < self.max_evaluations {
            simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite objective"));
            let spread = simplex[n].1 - simplex[0].1;
            if spread.abs() < self.tolerance {
                break;
            }
            // Centroid of all but the worst.
            let mut centroid = vec![0.0; n];
            for (p, _) in &simplex[..n] {
                for (c, &v) in centroid.iter_mut().zip(p) {
                    *c += v / n as f64;
                }
            }
            let worst = simplex[n].clone();
            let reflect: Vec<f64> =
                centroid.iter().zip(&worst.0).map(|(&c, &w)| c + alpha * (c - w)).collect();
            let f_reflect = eval(&reflect, &mut evals);
            if f_reflect < simplex[0].1 {
                // Expand.
                let expand: Vec<f64> =
                    centroid.iter().zip(&reflect).map(|(&c, &r)| c + gamma * (r - c)).collect();
                let f_expand = eval(&expand, &mut evals);
                simplex[n] =
                    if f_expand < f_reflect { (expand, f_expand) } else { (reflect, f_reflect) };
            } else if f_reflect < simplex[n - 1].1 {
                simplex[n] = (reflect, f_reflect);
            } else {
                // Contract.
                let contract: Vec<f64> =
                    centroid.iter().zip(&worst.0).map(|(&c, &w)| c + rho * (w - c)).collect();
                let f_contract = eval(&contract, &mut evals);
                if f_contract < worst.1 {
                    simplex[n] = (contract, f_contract);
                } else {
                    // Shrink towards the best vertex.
                    let best = simplex[0].0.clone();
                    for entry in simplex.iter_mut().skip(1) {
                        let shrunk: Vec<f64> =
                            best.iter().zip(&entry.0).map(|(&b, &p)| b + sigma * (p - b)).collect();
                        let f_shrunk = eval(&shrunk, &mut evals);
                        *entry = (shrunk, f_shrunk);
                    }
                }
            }
        }
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite objective"));
        OptimizationResult {
            parameters: simplex[0].0.clone(),
            value: simplex[0].1,
            evaluations: evals,
        }
    }
}

/// Simultaneous-perturbation stochastic approximation.
///
/// Estimates the gradient from two objective evaluations per iteration
/// regardless of dimension, tolerating substantial evaluation noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spsa {
    /// Number of iterations.
    pub iterations: usize,
    /// Initial step size `a`.
    pub a: f64,
    /// Initial perturbation size `c`.
    pub c: f64,
    /// RNG seed for the perturbation directions.
    pub seed: u64,
}

impl Default for Spsa {
    fn default() -> Self {
        Self { iterations: 200, a: 0.2, c: 0.1, seed: 42 }
    }
}

impl Spsa {
    /// Creates the optimizer with default settings.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Optimizer for Spsa {
    fn minimize(
        &self,
        objective: &mut dyn FnMut(&[f64]) -> f64,
        initial: &[f64],
    ) -> OptimizationResult {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = initial.len();
        let mut x = initial.to_vec();
        let mut evals = 0usize;
        // Standard gain schedules (Spall 1998).
        let big_a = 0.1 * self.iterations as f64;
        let (alpha, gamma) = (0.602, 0.101);
        for k in 0..self.iterations {
            let ak = self.a / (k as f64 + 1.0 + big_a).powf(alpha);
            let ck = self.c / (k as f64 + 1.0).powf(gamma);
            let delta: Vec<f64> =
                (0..n).map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 }).collect();
            let plus: Vec<f64> = x.iter().zip(&delta).map(|(&v, &d)| v + ck * d).collect();
            let minus: Vec<f64> = x.iter().zip(&delta).map(|(&v, &d)| v - ck * d).collect();
            let f_plus = objective(&plus);
            let f_minus = objective(&minus);
            evals += 2;
            let scale = (f_plus - f_minus) / (2.0 * ck);
            for (xi, &d) in x.iter_mut().zip(&delta) {
                *xi -= ak * scale / d;
            }
        }
        let value = objective(&x);
        evals += 1;
        OptimizationResult { parameters: x, value, evaluations: evals }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic(x: &[f64]) -> f64 {
        (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2) + 0.5
    }

    #[test]
    fn nelder_mead_finds_quadratic_minimum() {
        let mut f = |x: &[f64]| quadratic(x);
        let result = NelderMead::new().minimize(&mut f, &[0.0, 0.0]);
        assert!((result.parameters[0] - 3.0).abs() < 1e-4);
        assert!((result.parameters[1] + 1.0).abs() < 1e-4);
        assert!((result.value - 0.5).abs() < 1e-6);
        assert!(result.evaluations <= 2000);
    }

    #[test]
    fn nelder_mead_on_rosenbrock() {
        let mut f = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let opt = NelderMead { max_evaluations: 5000, ..NelderMead::new() };
        let result = opt.minimize(&mut f, &[-1.2, 1.0]);
        assert!(result.value < 1e-5, "rosenbrock value {}", result.value);
    }

    #[test]
    fn nelder_mead_respects_budget() {
        let mut count = 0usize;
        let mut f = |x: &[f64]| {
            count += 1;
            x[0] * x[0]
        };
        let opt = NelderMead { max_evaluations: 50, ..NelderMead::new() };
        let result = opt.minimize(&mut f, &[10.0]);
        assert!(count <= 55, "evaluations {count}"); // small overshoot in final iteration
        assert_eq!(result.evaluations, count);
    }

    #[test]
    fn spsa_minimizes_noisy_quadratic() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut f = |x: &[f64]| quadratic(x) + 0.01 * (rng.gen::<f64>() - 0.5);
        let opt = Spsa { iterations: 400, ..Spsa::new() };
        let result = opt.minimize(&mut f, &[0.0, 0.0]);
        assert!((result.parameters[0] - 3.0).abs() < 0.2, "{:?}", result.parameters);
        assert!((result.parameters[1] + 1.0).abs() < 0.2);
    }

    #[test]
    fn spsa_evaluation_count() {
        let mut f = |x: &[f64]| x[0].powi(2);
        let opt = Spsa { iterations: 10, ..Spsa::new() };
        let result = opt.minimize(&mut f, &[1.0]);
        assert_eq!(result.evaluations, 21);
    }
}
