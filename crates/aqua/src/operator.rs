//! Pauli-operator observables.
//!
//! Hamiltonians for the application-level algorithms (VQE, QAOA) are
//! expressed as real-weighted sums of Pauli strings — the form in which
//! quantum chemistry and optimization problems reach the quantum computer.

use qukit_aer::statevector::Statevector;
use qukit_terra::complex::Complex;
use qukit_terra::matrix::Matrix;
use std::fmt;

/// A single Pauli string (one `I`/`X`/`Y`/`Z` per qubit) with a real
/// coefficient.
///
/// Character `i` of the label acts on qubit `i` (little-endian, consistent
/// with the rest of the toolchain).
#[derive(Debug, Clone, PartialEq)]
pub struct PauliTerm {
    /// Coefficient of the term.
    pub coefficient: f64,
    /// The Pauli label, e.g. `"XXIZ"`.
    pub label: String,
}

impl PauliTerm {
    /// Creates a term, validating the label.
    ///
    /// # Panics
    ///
    /// Panics if the label contains characters other than `IXYZ`.
    pub fn new(coefficient: f64, label: impl Into<String>) -> Self {
        let label = label.into();
        assert!(
            label.chars().all(|c| matches!(c, 'I' | 'X' | 'Y' | 'Z')),
            "invalid Pauli label '{label}'"
        );
        Self { coefficient, label }
    }

    /// Number of qubits the term spans.
    pub fn num_qubits(&self) -> usize {
        self.label.len()
    }

    /// Qubits on which the term acts non-trivially.
    pub fn support(&self) -> Vec<usize> {
        self.label.chars().enumerate().filter(|(_, c)| *c != 'I').map(|(q, _)| q).collect()
    }

    /// The dense matrix of the (unweighted) Pauli string.
    pub fn matrix(&self) -> Matrix {
        let mut acc = Matrix::identity(1);
        // Little-endian: qubit 0 is the rightmost tensor factor, so build
        // left-to-right as P_{n-1} ⊗ … ⊗ P_0 by prepending.
        for c in self.label.chars() {
            let p = pauli_matrix(c);
            acc = p.kron(&acc);
        }
        acc
    }
}

fn pauli_matrix(c: char) -> Matrix {
    let o = Complex::ZERO;
    let l = Complex::ONE;
    let i = Complex::I;
    match c {
        'I' => Matrix::identity(2),
        'X' => Matrix::from_vec(2, 2, vec![o, l, l, o]),
        'Y' => Matrix::from_vec(2, 2, vec![o, -i, i, o]),
        'Z' => Matrix::from_vec(2, 2, vec![l, o, o, -l]),
        other => panic!("invalid Pauli character '{other}'"),
    }
}

/// A Hermitian observable as a sum of weighted Pauli strings.
///
/// # Examples
///
/// ```
/// use qukit_aqua::operator::PauliOperator;
///
/// // H = 0.5·Z₀ + 0.5·Z₁  (label char i acts on qubit i)
/// let h = PauliOperator::from_terms(&[(0.5, "ZI"), (0.5, "IZ")]);
/// assert_eq!(h.num_qubits(), 2);
/// // Exact spectrum of this operator is {-1, 0, 0, 1}.
/// assert!((h.min_eigenvalue() + 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PauliOperator {
    terms: Vec<PauliTerm>,
}

impl PauliOperator {
    /// Creates an operator from `(coefficient, label)` pairs.
    ///
    /// # Panics
    ///
    /// Panics on invalid labels or inconsistent lengths.
    pub fn from_terms(terms: &[(f64, &str)]) -> Self {
        let built: Vec<PauliTerm> = terms.iter().map(|&(c, l)| PauliTerm::new(c, l)).collect();
        if let Some(first) = built.first() {
            let n = first.num_qubits();
            assert!(
                built.iter().all(|t| t.num_qubits() == n),
                "all Pauli labels must have the same length"
            );
        }
        Self { terms: built }
    }

    /// The terms of the operator.
    pub fn terms(&self) -> &[PauliTerm] {
        &self.terms
    }

    /// Number of qubits (0 for the empty operator).
    pub fn num_qubits(&self) -> usize {
        self.terms.first().map_or(0, PauliTerm::num_qubits)
    }

    /// Adds a term in place.
    ///
    /// # Panics
    ///
    /// Panics if the label length differs from existing terms.
    pub fn add_term(&mut self, coefficient: f64, label: impl Into<String>) {
        let term = PauliTerm::new(coefficient, label);
        if let Some(first) = self.terms.first() {
            assert_eq!(term.num_qubits(), first.num_qubits(), "label length mismatch");
        }
        self.terms.push(term);
    }

    /// Exact expectation value `⟨ψ|H|ψ⟩` on a statevector.
    pub fn expectation(&self, state: &Statevector) -> f64 {
        self.terms.iter().map(|t| t.coefficient * state.expectation_pauli(&t.label)).sum()
    }

    /// The dense matrix of the operator (exponential; small systems).
    pub fn to_matrix(&self) -> Matrix {
        let dim = 1usize << self.num_qubits();
        let mut acc = Matrix::zeros(dim, dim);
        for t in &self.terms {
            acc = acc.add(&t.matrix().scale(Complex::from_real(t.coefficient)));
        }
        acc
    }

    /// The exact smallest eigenvalue, by shifted power iteration on the
    /// dense matrix — the classical reference VQE is compared against.
    ///
    /// # Panics
    ///
    /// Panics for operators wider than 10 qubits (dense diagonalization).
    pub fn min_eigenvalue(&self) -> f64 {
        assert!(self.num_qubits() <= 10, "exact eigenvalue limited to 10 qubits");
        crate::linalg::min_eigenvalue_hermitian(&self.to_matrix())
    }
}

impl fmt::Display for PauliOperator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " {} ", if t.coefficient >= 0.0 { "+" } else { "-" })?;
                write!(f, "{}·{}", t.coefficient.abs(), t.label)?;
            } else {
                write!(f, "{}·{}", t.coefficient, t.label)?;
            }
        }
        Ok(())
    }
}

/// The 2-qubit H2 molecular Hamiltonian at the equilibrium bond distance
/// (0.735 Å, STO-3G basis, parity mapping) — the flagship VQE benchmark
/// named in the paper's Aqua discussion (the Kandala et al. Nature 2017
/// hardware-efficient VQE [15]).
///
/// Its exact ground-state energy is ≈ -1.85727503 Hartree.
pub fn h2_hamiltonian() -> PauliOperator {
    PauliOperator::from_terms(&[
        (-1.052373245772859, "II"),
        (0.39793742484318045, "ZI"),
        (-0.39793742484318045, "IZ"),
        (-0.01128010425623538, "ZZ"),
        (0.18093119978423156, "XX"),
    ])
}

/// A transverse-field Ising chain
/// `H = -J Σ Z_i Z_{i+1} - h Σ X_i` on `n` qubits — the scalable many-body
/// benchmark used for the VQE parameter sweeps.
pub fn transverse_field_ising(n: usize, coupling: f64, field: f64) -> PauliOperator {
    let mut op = PauliOperator::default();
    let label_with = |positions: &[(usize, char)]| -> String {
        let mut chars = vec!['I'; n];
        for &(q, c) in positions {
            chars[q] = c;
        }
        chars.into_iter().collect()
    };
    for i in 0..n.saturating_sub(1) {
        op.add_term(-coupling, label_with(&[(i, 'Z'), (i + 1, 'Z')]));
    }
    for i in 0..n {
        op.add_term(-field, label_with(&[(i, 'X')]));
    }
    op
}

#[cfg(test)]
mod tests {
    use super::*;
    use qukit_terra::gate::Gate;

    #[test]
    fn term_validation_and_support() {
        let t = PauliTerm::new(0.5, "XIZ");
        assert_eq!(t.num_qubits(), 3);
        assert_eq!(t.support(), vec![0, 2]);
        assert!(std::panic::catch_unwind(|| PauliTerm::new(1.0, "XQ")).is_err());
    }

    #[test]
    fn term_matrix_is_hermitian_and_unitary() {
        for label in ["X", "Y", "Z", "XY", "ZZ", "XIZ"] {
            let m = PauliTerm::new(1.0, label).matrix();
            assert!(m.is_hermitian(), "{label}");
            assert!(m.is_unitary(), "{label}");
        }
    }

    #[test]
    fn term_matrix_ordering_is_little_endian() {
        // "XI" means X on qubit 0: must equal I ⊗ X (qubit 1 ⊗ qubit 0).
        let m = PauliTerm::new(1.0, "XI").matrix();
        let expected = Matrix::identity(2).kron(&pauli_matrix('X'));
        assert!(m.approx_eq(&expected));
    }

    #[test]
    fn operator_expectation_matches_dense() {
        let op = PauliOperator::from_terms(&[(0.3, "XZ"), (-0.7, "YY"), (0.1, "II")]);
        let mut state = Statevector::new(2);
        state.apply_gate(Gate::H, &[0]);
        state.apply_gate(Gate::T, &[0]);
        state.apply_gate(Gate::CX, &[0, 1]);
        let fast = op.expectation(&state);
        // Dense reference: <ψ|M|ψ>.
        let m = op.to_matrix();
        let mv = m.matvec(state.amplitudes());
        let dense = qukit_terra::matrix::inner_product(state.amplitudes(), &mv).re;
        assert!((fast - dense).abs() < 1e-10, "{fast} vs {dense}");
    }

    #[test]
    fn h2_ground_energy_matches_literature() {
        let h2 = h2_hamiltonian();
        let e = h2.min_eigenvalue();
        assert!((e - (-1.85727503)).abs() < 1e-5, "H2 energy {e}");
    }

    #[test]
    fn ising_chain_term_count() {
        let op = transverse_field_ising(5, 1.0, 0.5);
        assert_eq!(op.terms().len(), 4 + 5);
        assert_eq!(op.num_qubits(), 5);
        // Ferromagnetic ground state at h=0: energy -(n-1)·J.
        let classical = transverse_field_ising(4, 1.0, 0.0);
        assert!((classical.min_eigenvalue() + 3.0).abs() < 1e-6);
    }

    #[test]
    fn operator_to_matrix_is_hermitian() {
        let op = h2_hamiltonian();
        assert!(op.to_matrix().is_hermitian());
    }

    #[test]
    fn mismatched_labels_rejected() {
        let mut op = PauliOperator::from_terms(&[(1.0, "XX")]);
        assert!(std::panic::catch_unwind(move || op.add_term(1.0, "X")).is_err());
    }

    #[test]
    fn display_renders_terms() {
        let op = PauliOperator::from_terms(&[(0.5, "XX"), (-0.25, "ZZ")]);
        let text = op.to_string();
        assert!(text.contains("XX"));
        assert!(text.contains('-'));
        assert_eq!(PauliOperator::default().to_string(), "0");
    }
}
