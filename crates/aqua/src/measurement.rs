//! Shot-based expectation estimation.
//!
//! On real hardware (and the shot-based simulator) expectation values are
//! estimated from measurement counts: each Pauli term is rotated into the
//! Z basis, measured, and its expectation read off as a parity average.
//! Terms that are *qubit-wise commuting* (agree on every non-identity
//! position) share one measurement setting, reducing the number of circuit
//! executions — the standard measurement-grouping optimization of
//! variational workloads.

use crate::operator::{PauliOperator, PauliTerm};
use qukit_aer::counts::Counts;
use qukit_aer::noise::NoiseModel;
use qukit_aer::simulator::QasmSimulator;
use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::error::{Result, TerraError};

/// A measurement setting: one basis character (`X`/`Y`/`Z`) per qubit.
pub type Setting = Vec<char>;

/// Groups the operator's terms into qubit-wise commuting families, each
/// with a single measurement [`Setting`]. `I` positions default to `Z`.
pub fn group_qubit_wise_commuting(op: &PauliOperator) -> Vec<(Setting, Vec<PauliTerm>)> {
    let n = op.num_qubits();
    let mut groups: Vec<(Setting, Vec<PauliTerm>)> = Vec::new();
    for term in op.terms() {
        let label: Vec<char> = term.label.chars().collect();
        let mut placed = false;
        for (setting, members) in groups.iter_mut() {
            let compatible = label.iter().zip(setting.iter()).all(|(&p, &s)| p == 'I' || p == s);
            if compatible {
                members.push(term.clone());
                placed = true;
                break;
            }
        }
        if !placed {
            let setting: Setting = label.iter().map(|&p| if p == 'I' { 'Z' } else { p }).collect();
            // Widen earlier-compatible entries: a new group absorbs terms
            // not needed — keep it simple, just add the group.
            groups.push((setting, vec![term.clone()]));
        }
    }
    let _ = n;
    groups
}

/// Appends basis rotations for a setting followed by full measurement.
///
/// # Errors
///
/// Propagates operand-validation errors.
pub fn append_setting_measurement(circ: &mut QuantumCircuit, setting: &[char]) -> Result<()> {
    if circ.num_clbits() < setting.len() {
        let missing = setting.len() - circ.num_clbits();
        circ.add_creg("est", missing)?;
    }
    for (q, &basis) in setting.iter().enumerate() {
        match basis {
            'X' => {
                circ.h(q)?;
            }
            'Y' => {
                circ.sdg(q)?;
                circ.h(q)?;
            }
            'Z' => {}
            other => panic!("invalid basis character '{other}'"),
        }
    }
    for q in 0..setting.len() {
        circ.measure(q, q)?;
    }
    Ok(())
}

/// Reads a term's expectation from counts measured in a compatible
/// setting: the parity average over the term's support.
pub fn term_expectation_from_counts(term: &PauliTerm, counts: &Counts) -> f64 {
    let support = term.support();
    if support.is_empty() {
        return 1.0;
    }
    counts.parity_expectation(&support)
}

/// Estimates `⟨ψ|H|ψ⟩` for the state prepared by `preparation`, entirely
/// from `shots` measurements per commuting group — the hardware-realistic
/// estimation mode (optionally under a noise model).
///
/// # Errors
///
/// Propagates circuit and simulation errors.
pub fn estimate_expectation(
    op: &PauliOperator,
    preparation: &QuantumCircuit,
    shots: usize,
    seed: u64,
    noise: Option<&NoiseModel>,
) -> Result<f64> {
    let groups = group_qubit_wise_commuting(op);
    let mut total = 0.0;
    for (i, (setting, terms)) in groups.iter().enumerate() {
        // Identity-only groups need no measurement.
        if terms.iter().all(|t| t.support().is_empty()) {
            total += terms.iter().map(|t| t.coefficient).sum::<f64>();
            continue;
        }
        let mut circ = preparation.clone();
        append_setting_measurement(&mut circ, setting)?;
        let mut sim = QasmSimulator::new().with_seed(seed.wrapping_add(i as u64));
        if let Some(model) = noise {
            sim = sim.with_noise(model.clone());
        }
        let counts =
            sim.run(&circ, shots).map_err(|e| TerraError::Transpile { msg: e.to_string() })?;
        for term in terms {
            total += term.coefficient * term_expectation_from_counts(term, &counts);
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::h2_hamiltonian;
    use qukit_aer::statevector::Statevector;

    #[test]
    fn grouping_merges_compatible_terms() {
        // H2: II, ZI, IZ, ZZ all share the Z…Z setting; XX needs its own.
        let groups = group_qubit_wise_commuting(&h2_hamiltonian());
        assert_eq!(groups.len(), 2, "H2 needs exactly two settings");
        let sizes: Vec<usize> = groups.iter().map(|(_, t)| t.len()).collect();
        assert!(sizes.contains(&4));
        assert!(sizes.contains(&1));
    }

    #[test]
    fn grouping_keeps_incompatible_apart() {
        let op = PauliOperator::from_terms(&[(1.0, "XZ"), (1.0, "ZX"), (1.0, "XX")]);
        let groups = group_qubit_wise_commuting(&op);
        assert_eq!(groups.len(), 3);
    }

    #[test]
    fn sampled_expectation_matches_exact_on_bell_state() {
        let mut bell = QuantumCircuit::new(2);
        bell.h(0).unwrap();
        bell.cx(0, 1).unwrap();
        let op = PauliOperator::from_terms(&[(0.5, "ZZ"), (0.5, "XX"), (-0.25, "YY"), (0.1, "II")]);
        // Exact: 0.5·1 + 0.5·1 − 0.25·(−1) + 0.1 = 1.35.
        let sampled = estimate_expectation(&op, &bell, 20_000, 3, None).unwrap();
        assert!((sampled - 1.35).abs() < 0.03, "sampled {sampled}");
    }

    #[test]
    fn sampled_h2_energy_close_to_statevector() {
        let ansatz = crate::vqe::HardwareEfficientAnsatz::new(2, 1);
        let params = vec![0.4, -0.3, 0.8, 0.2, 0.1, 0.9, -0.5, 0.3];
        let circ = ansatz.circuit(&params).unwrap();
        let h2 = h2_hamiltonian();
        let exact = {
            let sv = qukit_terra::reference::statevector(&circ).unwrap();
            h2.expectation(&Statevector::from_amplitudes(sv))
        };
        let sampled = estimate_expectation(&h2, &circ, 30_000, 9, None).unwrap();
        assert!((sampled - exact).abs() < 0.02, "sampled {sampled} vs exact {exact}");
    }

    #[test]
    fn identity_only_operator_needs_no_shots() {
        let op = PauliOperator::from_terms(&[(2.5, "II")]);
        let circ = QuantumCircuit::new(2);
        let value = estimate_expectation(&op, &circ, 1, 0, None).unwrap();
        assert!((value - 2.5).abs() < 1e-12);
    }

    #[test]
    fn noise_biases_the_estimate() {
        let mut circ = QuantumCircuit::new(1);
        circ.x(0).unwrap();
        let op = PauliOperator::from_terms(&[(1.0, "Z")]);
        let mut noise = NoiseModel::new();
        noise.set_readout_error(qukit_aer::noise::ReadoutError::symmetric(0.2));
        let clean = estimate_expectation(&op, &circ, 10_000, 5, None).unwrap();
        let noisy = estimate_expectation(&op, &circ, 10_000, 5, Some(&noise)).unwrap();
        assert!((clean + 1.0).abs() < 0.01);
        // Readout flip p shifts <Z> towards 0 by a factor (1-2p).
        assert!((noisy + 0.6).abs() < 0.05, "noisy {noisy}");
    }
}
