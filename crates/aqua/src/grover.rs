//! Grover's search algorithm.
//!
//! One of the canonical "quadratic speedup" applications the paper's
//! introduction motivates. The implementation builds phase oracles for
//! arbitrary sets of marked bitstrings and the standard diffusion operator,
//! entirely from the toolchain's gate set.

use crate::circuits::{append_mcz, superposition_circuit};
use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::error::Result;
use std::f64::consts::FRAC_PI_4;

/// Appends a phase oracle flipping the sign of each `marked` basis state.
///
/// Each marked state costs one multi-controlled Z conjugated by X gates on
/// the zero-bits.
///
/// # Errors
///
/// Propagates operand-validation errors.
///
/// # Panics
///
/// Panics if a marked value does not fit in the circuit width.
pub fn append_phase_oracle(circ: &mut QuantumCircuit, marked: &[u64]) -> Result<()> {
    let n = circ.num_qubits();
    for &m in marked {
        assert!((m as u128) < (1u128 << n), "marked state {m} does not fit in {n} qubits");
        let zero_bits: Vec<usize> = (0..n).filter(|&q| (m >> q) & 1 == 0).collect();
        for &q in &zero_bits {
            circ.x(q)?;
        }
        let all: Vec<usize> = (0..n).collect();
        append_mcz(circ, &all)?;
        for &q in &zero_bits {
            circ.x(q)?;
        }
    }
    Ok(())
}

/// Appends the Grover diffusion operator (inversion about the mean).
///
/// # Errors
///
/// Propagates operand-validation errors.
pub fn append_diffusion(circ: &mut QuantumCircuit) -> Result<()> {
    let n = circ.num_qubits();
    let all: Vec<usize> = (0..n).collect();
    for &q in &all {
        circ.h(q)?;
    }
    for &q in &all {
        circ.x(q)?;
    }
    append_mcz(circ, &all)?;
    for &q in &all {
        circ.x(q)?;
    }
    for &q in &all {
        circ.h(q)?;
    }
    Ok(())
}

/// The optimal Grover iteration count for `num_marked` of `2^n` states:
/// `round(π/4 · √(N/M) - 1/2)`, at least 1.
pub fn optimal_iterations(n: usize, num_marked: usize) -> usize {
    assert!(num_marked > 0, "at least one marked state required");
    let ratio = ((1usize << n) as f64 / num_marked as f64).sqrt();
    ((FRAC_PI_4 * ratio - 0.5).round() as isize).max(1) as usize
}

/// Builds the full Grover search circuit for the marked states, using the
/// optimal iteration count (or an explicit one).
///
/// # Errors
///
/// Propagates operand-validation errors.
pub fn grover_circuit(
    n: usize,
    marked: &[u64],
    iterations: Option<usize>,
) -> Result<QuantumCircuit> {
    let mut circ = superposition_circuit(n);
    circ.set_name(format!("grover_{n}"));
    let iterations = iterations.unwrap_or_else(|| optimal_iterations(n, marked.len()));
    for _ in 0..iterations {
        append_phase_oracle(&mut circ, marked)?;
        append_diffusion(&mut circ)?;
    }
    Ok(circ)
}

/// The exact success probability of measuring one of the `marked` states
/// after running `circuit` (via statevector simulation).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn success_probability(circuit: &QuantumCircuit, marked: &[u64]) -> Result<f64> {
    let state = qukit_terra::reference::statevector(circuit)?;
    Ok(marked.iter().map(|&m| state[m as usize].norm_sqr()).sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_marked_state_is_amplified() {
        let n = 4;
        let marked = [0b1011u64];
        let circ = grover_circuit(n, &marked, None).unwrap();
        let p = success_probability(&circ, &marked).unwrap();
        assert!(p > 0.9, "success probability {p}");
    }

    #[test]
    fn three_qubit_search_hits_hard() {
        // N=8, M=1: 2 iterations give ~94.5%.
        let circ = grover_circuit(3, &[6], None).unwrap();
        let p = success_probability(&circ, &[6]).unwrap();
        assert!((p - 0.945).abs() < 0.01, "p = {p}");
    }

    #[test]
    fn multiple_marked_states() {
        let n = 4;
        let marked = [3u64, 12u64];
        let circ = grover_circuit(n, &marked, None).unwrap();
        let p = success_probability(&circ, &marked).unwrap();
        assert!(p > 0.9, "success probability {p}");
    }

    #[test]
    fn oracle_only_flips_marked_amplitudes() {
        let n = 3;
        let mut circ = superposition_circuit(n);
        append_phase_oracle(&mut circ, &[5]).unwrap();
        let state = qukit_terra::reference::statevector(&circ).unwrap();
        let amp = 1.0 / (8.0f64).sqrt();
        for (idx, a) in state.iter().enumerate() {
            let expected = if idx == 5 { -amp } else { amp };
            assert!((a.re - expected).abs() < 1e-9 && a.im.abs() < 1e-9, "amplitude {idx}: {a}");
        }
    }

    #[test]
    fn iteration_counts() {
        assert_eq!(optimal_iterations(2, 1), 1);
        assert_eq!(optimal_iterations(3, 1), 2);
        assert_eq!(optimal_iterations(4, 1), 3);
        assert_eq!(optimal_iterations(10, 1), 25);
        assert_eq!(optimal_iterations(4, 4), 1);
    }

    #[test]
    fn over_rotation_reduces_success() {
        // Running twice the optimal iterations overshoots.
        let n = 4;
        let marked = [7u64];
        let optimal = grover_circuit(n, &marked, None).unwrap();
        let over = grover_circuit(n, &marked, Some(2 * optimal_iterations(n, 1))).unwrap();
        let p_opt = success_probability(&optimal, &marked).unwrap();
        let p_over = success_probability(&over, &marked).unwrap();
        assert!(p_opt > p_over, "over-rotation must hurt: {p_opt} vs {p_over}");
    }

    #[test]
    fn sampled_execution_finds_the_needle() {
        let n = 3;
        let marked = [2u64];
        let mut circ = grover_circuit(n, &marked, None).unwrap();
        circ.measure_all();
        let counts =
            qukit_aer::simulator::QasmSimulator::new().with_seed(13).run(&circ, 500).unwrap();
        assert_eq!(counts.most_frequent(), Some(2));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_marked_state_panics() {
        let mut circ = QuantumCircuit::new(2);
        let _ = append_phase_oracle(&mut circ, &[9]);
    }
}
