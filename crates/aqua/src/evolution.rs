//! Hamiltonian time evolution (Trotterization).
//!
//! Quantum simulation — "systems of linear equations, quantum chemistry,
//! quantum simulation" in the paper's opening list of applications —
//! approximates `e^{-iHt}` for a Pauli-sum Hamiltonian by Trotter product
//! formulas. Each Pauli-string exponential `e^{-iθP}` is exact: basis
//! rotations onto Z, a CX parity ladder, one `Rz`, and the uncomputation.

use crate::operator::{PauliOperator, PauliTerm};
use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::complex::Complex;
use qukit_terra::error::Result;
use qukit_terra::matrix::Matrix;

/// Appends `e^{-i angle P}` for a single Pauli string, exactly.
///
/// Identity strings contribute a global phase `e^{-i angle}`.
///
/// # Errors
///
/// Propagates operand-validation errors.
pub fn append_pauli_exponential(
    circ: &mut QuantumCircuit,
    term: &PauliTerm,
    angle: f64,
) -> Result<()> {
    let support = term.support();
    if support.is_empty() {
        circ.add_global_phase(-angle);
        return Ok(());
    }
    let label: Vec<char> = term.label.chars().collect();
    // Rotate X/Y factors onto Z.
    for &q in &support {
        match label[q] {
            'X' => {
                circ.h(q)?;
            }
            'Y' => {
                // Rotate Y→Z: apply Rx(π/2)-like basis change H·S†.
                circ.sdg(q)?;
                circ.h(q)?;
            }
            _ => {}
        }
    }
    // Parity ladder onto the last support qubit.
    for w in support.windows(2) {
        circ.cx(w[0], w[1])?;
    }
    let target = *support.last().expect("nonempty support");
    circ.rz(2.0 * angle, target)?;
    for w in support.windows(2).rev() {
        circ.cx(w[0], w[1])?;
    }
    for &q in &support {
        match label[q] {
            'X' => {
                circ.h(q)?;
            }
            'Y' => {
                circ.h(q)?;
                circ.s(q)?;
            }
            _ => {}
        }
    }
    Ok(())
}

/// Builds a first-order Trotter approximation of `e^{-iHt}` with `steps`
/// repetitions: `(Π_k e^{-i c_k P_k t/steps})^steps`.
///
/// # Errors
///
/// Propagates circuit-construction errors.
///
/// # Panics
///
/// Panics when `steps == 0`.
pub fn trotter_evolution(
    hamiltonian: &PauliOperator,
    time: f64,
    steps: usize,
) -> Result<QuantumCircuit> {
    assert!(steps > 0, "at least one Trotter step required");
    let n = hamiltonian.num_qubits();
    let mut circ = QuantumCircuit::new(n.max(1));
    circ.set_name(format!("trotter_{steps}"));
    let dt = time / steps as f64;
    for _ in 0..steps {
        for term in hamiltonian.terms() {
            append_pauli_exponential(&mut circ, term, term.coefficient * dt)?;
        }
    }
    Ok(circ)
}

/// Builds a second-order (symmetric) Trotter-Suzuki approximation:
/// half-steps forward then backward per repetition, with error `O(dt³)`
/// per step instead of `O(dt²)`.
///
/// # Errors
///
/// Propagates circuit-construction errors.
///
/// # Panics
///
/// Panics when `steps == 0`.
pub fn suzuki_evolution(
    hamiltonian: &PauliOperator,
    time: f64,
    steps: usize,
) -> Result<QuantumCircuit> {
    assert!(steps > 0, "at least one Trotter step required");
    let n = hamiltonian.num_qubits();
    let mut circ = QuantumCircuit::new(n.max(1));
    circ.set_name(format!("suzuki2_{steps}"));
    let dt = time / steps as f64;
    for _ in 0..steps {
        for term in hamiltonian.terms() {
            append_pauli_exponential(&mut circ, term, term.coefficient * dt / 2.0)?;
        }
        for term in hamiltonian.terms().iter().rev() {
            append_pauli_exponential(&mut circ, term, term.coefficient * dt / 2.0)?;
        }
    }
    Ok(circ)
}

/// Dense matrix exponential `e^{-iHt}` by scaling-and-squaring with a
/// Taylor series — the exact reference the Trotter circuits are tested
/// against (small systems only).
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn exact_evolution_matrix(hamiltonian: &Matrix, time: f64) -> Matrix {
    assert!(hamiltonian.is_square(), "Hamiltonian must be square");
    let dim = hamiltonian.rows();
    // A = -i H t, scaled down so ‖A/2^s‖ is small.
    let a = hamiltonian.scale(Complex::new(0.0, -time));
    let norm_estimate: f64 =
        (0..dim).map(|i| (0..dim).map(|j| a[(i, j)].norm()).sum::<f64>()).fold(0.0, f64::max);
    let scalings = norm_estimate.log2().ceil().max(0.0) as u32 + 1;
    let scaled = a.scale(Complex::from_real(1.0 / (1u64 << scalings) as f64));
    // Taylor series of e^{scaled}.
    let mut result = Matrix::identity(dim);
    let mut term = Matrix::identity(dim);
    for k in 1..=24 {
        term = term.matmul(&scaled).scale(Complex::from_real(1.0 / k as f64));
        result = result.add(&term);
    }
    for _ in 0..scalings {
        result = result.matmul(&result);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{transverse_field_ising, PauliOperator};
    use qukit_terra::matrix::state_fidelity;
    use qukit_terra::reference;

    fn evolved_fidelity(circ: &QuantumCircuit, h: &PauliOperator, time: f64) -> f64 {
        // Start from a non-trivial product state.
        let n = h.num_qubits();
        let mut prep = QuantumCircuit::new(n);
        for q in 0..n {
            prep.ry(0.4 + 0.3 * q as f64, q).unwrap();
        }
        let initial = reference::statevector(&prep).unwrap();
        let exact_u = exact_evolution_matrix(&h.to_matrix(), time);
        let exact = exact_u.matvec(&initial);
        let approx = reference::evolve(circ, &initial).unwrap();
        state_fidelity(&approx, &exact)
    }

    #[test]
    fn exact_exponential_is_unitary_and_correct_for_z() {
        // e^{-iZt} = diag(e^{-it}, e^{it}).
        let z = PauliOperator::from_terms(&[(1.0, "Z")]).to_matrix();
        let u = exact_evolution_matrix(&z, 0.7);
        assert!(u.is_unitary());
        assert!(u.get(0, 0).unwrap().approx_eq_eps(Complex::cis(-0.7), 1e-10));
        assert!(u.get(1, 1).unwrap().approx_eq_eps(Complex::cis(0.7), 1e-10));
    }

    #[test]
    fn single_term_exponentials_are_exact() {
        for label in ["Z", "X", "Y", "ZZ", "XY", "ZIX", "YYZ"] {
            let h = PauliOperator::from_terms(&[(0.9, label)]);
            let circ = trotter_evolution(&h, 0.63, 1).unwrap();
            let f = evolved_fidelity(&circ, &h, 0.63);
            assert!(f > 1.0 - 1e-9, "{label}: fidelity {f}");
        }
    }

    #[test]
    fn identity_term_contributes_global_phase() {
        let h = PauliOperator::from_terms(&[(2.0, "II")]);
        let circ = trotter_evolution(&h, 0.5, 1).unwrap();
        let state = reference::statevector(&circ).unwrap();
        // e^{-i·2·0.5}|00⟩.
        assert!(state[0].approx_eq_eps(Complex::cis(-1.0), 1e-10));
    }

    #[test]
    fn commuting_terms_need_one_step() {
        // All-Z Hamiltonians commute term-wise: one step is exact.
        let h = PauliOperator::from_terms(&[(0.8, "ZI"), (-0.3, "IZ"), (0.5, "ZZ")]);
        let circ = trotter_evolution(&h, 1.3, 1).unwrap();
        let f = evolved_fidelity(&circ, &h, 1.3);
        assert!(f > 1.0 - 1e-9, "fidelity {f}");
    }

    #[test]
    fn trotter_error_shrinks_with_steps() {
        let h = transverse_field_ising(3, 1.0, 0.8);
        let time = 1.0;
        let f1 = evolved_fidelity(&trotter_evolution(&h, time, 1).unwrap(), &h, time);
        let f4 = evolved_fidelity(&trotter_evolution(&h, time, 4).unwrap(), &h, time);
        let f16 = evolved_fidelity(&trotter_evolution(&h, time, 16).unwrap(), &h, time);
        assert!(f4 > f1, "{f1} -> {f4}");
        assert!(f16 > f4, "{f4} -> {f16}");
        assert!(f16 > 0.995, "f16 = {f16}");
    }

    #[test]
    fn second_order_beats_first_order() {
        let h = transverse_field_ising(3, 1.0, 1.2);
        let time = 1.2;
        let steps = 4;
        let first = evolved_fidelity(&trotter_evolution(&h, time, steps).unwrap(), &h, time);
        let second = evolved_fidelity(&suzuki_evolution(&h, time, steps).unwrap(), &h, time);
        assert!(second > first, "suzuki {second} must beat trotter {first} at equal steps");
        assert!(second > 0.99, "suzuki fidelity {second}");
    }

    #[test]
    fn evolution_circuit_is_unitary_size_linear_in_steps() {
        let h = transverse_field_ising(4, 1.0, 0.5);
        let one = trotter_evolution(&h, 0.3, 1).unwrap().num_gates();
        let ten = trotter_evolution(&h, 0.3, 10).unwrap().num_gates();
        assert_eq!(ten, 10 * one);
    }
}
