//! Quantum arithmetic circuits.
//!
//! The ripple-carry adder of Cuccaro et al. (quant-ph/0410184): computes
//! `b ← a + b` in place using a single ancilla — a staple of the circuit
//! libraries the design-automation community optimizes, and a deep,
//! Toffoli-heavy workload for the transpiler benchmarks.

use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::error::Result;

/// Appends the MAJ (majority) block on `(c, b, a)`.
fn maj(circ: &mut QuantumCircuit, c: usize, b: usize, a: usize) -> Result<()> {
    circ.cx(a, b)?;
    circ.cx(a, c)?;
    circ.ccx(c, b, a)?;
    Ok(())
}

/// Appends the UMA (unmajority-and-add) block on `(c, b, a)`.
fn uma(circ: &mut QuantumCircuit, c: usize, b: usize, a: usize) -> Result<()> {
    circ.ccx(c, b, a)?;
    circ.cx(a, c)?;
    circ.cx(c, b)?;
    Ok(())
}

/// Qubit layout of an `n`-bit Cuccaro adder.
///
/// Total width `2n + 2`: carry-in ancilla at 0, interleaved `a`/`b`
/// registers, carry-out at the top.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdderLayout {
    /// Bit width of each operand.
    pub bits: usize,
}

impl AdderLayout {
    /// Creates the layout.
    pub fn new(bits: usize) -> Self {
        Self { bits }
    }

    /// Total qubits: `2·bits + 2`.
    pub fn num_qubits(&self) -> usize {
        2 * self.bits + 2
    }

    /// Qubit holding bit `i` of operand `a`.
    pub fn a(&self, i: usize) -> usize {
        2 * i + 2
    }

    /// Qubit holding bit `i` of operand `b` (the in-place sum output).
    pub fn b(&self, i: usize) -> usize {
        2 * i + 1
    }

    /// The carry-in ancilla.
    pub fn carry_in(&self) -> usize {
        0
    }

    /// The carry-out qubit.
    pub fn carry_out(&self) -> usize {
        self.num_qubits() - 1
    }
}

/// Appends the Cuccaro ripple-carry adder to `circ`: computes
/// `b ← a + b (mod 2^n)` with the overflow bit in the carry-out qubit.
///
/// # Errors
///
/// Propagates operand-validation errors (the circuit must be at least
/// `layout.num_qubits()` wide).
pub fn append_cuccaro_adder(circ: &mut QuantumCircuit, layout: AdderLayout) -> Result<()> {
    let n = layout.bits;
    if n == 0 {
        return Ok(());
    }
    // Forward MAJ ladder.
    maj(circ, layout.carry_in(), layout.b(0), layout.a(0))?;
    for i in 1..n {
        maj(circ, layout.a(i - 1), layout.b(i), layout.a(i))?;
    }
    // Copy the high carry out.
    circ.cx(layout.a(n - 1), layout.carry_out())?;
    // Backward UMA ladder.
    for i in (1..n).rev() {
        uma(circ, layout.a(i - 1), layout.b(i), layout.a(i))?;
    }
    uma(circ, layout.carry_in(), layout.b(0), layout.a(0))?;
    Ok(())
}

/// Builds a complete adder demonstration circuit: loads classical values
/// `a` and `b`, adds, and measures the sum (including carry) into the
/// classical register.
///
/// # Errors
///
/// Propagates operand-validation errors.
///
/// # Panics
///
/// Panics if the operands do not fit in `bits`.
pub fn adder_circuit(bits: usize, a: u64, b: u64) -> Result<QuantumCircuit> {
    assert!((a as u128) < (1u128 << bits), "a does not fit in {bits} bits");
    assert!((b as u128) < (1u128 << bits), "b does not fit in {bits} bits");
    let layout = AdderLayout::new(bits);
    let mut circ = QuantumCircuit::with_size(layout.num_qubits(), bits + 1);
    circ.set_name(format!("adder_{bits}"));
    for i in 0..bits {
        if (a >> i) & 1 == 1 {
            circ.x(layout.a(i))?;
        }
        if (b >> i) & 1 == 1 {
            circ.x(layout.b(i))?;
        }
    }
    append_cuccaro_adder(&mut circ, layout)?;
    for i in 0..bits {
        circ.measure(layout.b(i), i)?;
    }
    circ.measure(layout.carry_out(), bits)?;
    Ok(circ)
}

/// Executes the adder circuit and returns the measured sum (with carry).
///
/// # Errors
///
/// Propagates circuit and simulation errors.
pub fn run_adder(bits: usize, a: u64, b: u64) -> Result<u64> {
    let circ = adder_circuit(bits, a, b)?;
    let counts = qukit_aer::simulator::QasmSimulator::new()
        .with_seed(1)
        .run(&circ, 1)
        .map_err(|e| qukit_terra::error::TerraError::Transpile { msg: e.to_string() })?;
    Ok(counts.most_frequent().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_geometry() {
        let l = AdderLayout::new(3);
        assert_eq!(l.num_qubits(), 8);
        assert_eq!(l.carry_in(), 0);
        assert_eq!(l.carry_out(), 7);
        assert_eq!(l.a(0), 2);
        assert_eq!(l.b(0), 1);
        assert_eq!(l.a(2), 6);
        assert_eq!(l.b(2), 5);
    }

    #[test]
    fn exhaustive_two_bit_addition() {
        for a in 0..4u64 {
            for b in 0..4u64 {
                let sum = run_adder(2, a, b).unwrap();
                assert_eq!(sum, a + b, "{a} + {b}");
            }
        }
    }

    #[test]
    fn three_bit_spot_checks() {
        for (a, b) in [(0u64, 0u64), (7, 7), (5, 3), (6, 1), (4, 4)] {
            let sum = run_adder(3, a, b).unwrap();
            assert_eq!(sum, a + b, "{a} + {b}");
        }
    }

    #[test]
    fn adder_preserves_operand_a() {
        // a must be restored by the UMA ladder: measure the a register too.
        let layout = AdderLayout::new(3);
        let mut circ = QuantumCircuit::with_size(layout.num_qubits(), 3);
        for i in 0..3 {
            if (5 >> i) & 1 == 1 {
                circ.x(layout.a(i)).unwrap();
            }
            if (6 >> i) & 1 == 1 {
                circ.x(layout.b(i)).unwrap();
            }
        }
        append_cuccaro_adder(&mut circ, layout).unwrap();
        for i in 0..3 {
            circ.measure(layout.a(i), i).unwrap();
        }
        let counts = qukit_aer::simulator::QasmSimulator::new().with_seed(2).run(&circ, 1).unwrap();
        assert_eq!(counts.most_frequent(), Some(5), "operand a must survive");
    }

    #[test]
    fn adder_works_on_superpositions() {
        // Put a0 into |+⟩: the sum register becomes entangled with it.
        let layout = AdderLayout::new(2);
        let mut circ = QuantumCircuit::with_size(layout.num_qubits(), 3);
        circ.h(layout.a(0)).unwrap(); // a ∈ {0, 1}
        circ.x(layout.b(0)).unwrap(); // b = 1
        append_cuccaro_adder(&mut circ, layout).unwrap();
        for i in 0..2 {
            circ.measure(layout.b(i), i).unwrap();
        }
        circ.measure(layout.carry_out(), 2).unwrap();
        let counts =
            qukit_aer::simulator::QasmSimulator::new().with_seed(3).run(&circ, 600).unwrap();
        // Outcomes: 1 (a=0) or 2 (a=1), roughly balanced.
        assert_eq!(counts.get_value(1) + counts.get_value(2), 600);
        assert!(counts.get_value(1) > 200);
        assert!(counts.get_value(2) > 200);
    }

    #[test]
    fn toffoli_count_scales_linearly() {
        let circ = adder_circuit(4, 0, 0).unwrap();
        assert_eq!(circ.count_ops()["ccx"], 8, "2 Toffolis per bit");
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_operand_panics() {
        let _ = adder_circuit(2, 4, 0);
    }
}

/// Appends the Draper QFT adder: adds the classical constant `value` into
/// the `bits`-wide register starting at qubit `offset`, modulo `2^bits`,
/// using only phase rotations inside a QFT frame (no ancillas, no carries).
///
/// # Errors
///
/// Propagates operand-validation errors.
pub fn append_draper_add_constant(
    circ: &mut QuantumCircuit,
    offset: usize,
    bits: usize,
    value: u64,
) -> Result<()> {
    let qubits: Vec<usize> = (offset..offset + bits).collect();
    crate::circuits::append_qft(circ, &qubits)?;
    // In the Fourier frame, adding `value` is a phase `2π·value·2^j / 2^bits`
    // on the qubit carrying weight 2^j of the transformed register. After
    // our QFT (with its final bit reversal), qubit j carries the phase
    // gradient of output bit j.
    for (j, &q) in qubits.iter().enumerate() {
        let angle =
            std::f64::consts::TAU * (value as f64) * (1u64 << j) as f64 / (1u64 << bits) as f64;
        let angle = angle % std::f64::consts::TAU;
        if angle.abs() > 1e-12 {
            circ.p(angle, q)?;
        }
    }
    crate::circuits::append_iqft(circ, &qubits)?;
    Ok(())
}

#[cfg(test)]
mod draper_tests {
    use super::*;

    fn run_draper(bits: usize, start: u64, add: u64) -> u64 {
        let mut circ = QuantumCircuit::with_size(bits, bits);
        for i in 0..bits {
            if (start >> i) & 1 == 1 {
                circ.x(i).unwrap();
            }
        }
        append_draper_add_constant(&mut circ, 0, bits, add).unwrap();
        for i in 0..bits {
            circ.measure(i, i).unwrap();
        }
        let counts = qukit_aer::simulator::QasmSimulator::new().with_seed(1).run(&circ, 1).unwrap();
        counts.most_frequent().unwrap_or(0)
    }

    #[test]
    fn adds_constants_mod_2n() {
        for (bits, start, add) in [
            (3usize, 0u64, 5u64),
            (3, 3, 4),
            (3, 7, 1), // wraps to 0
            (3, 6, 7), // wraps to 5
            (4, 9, 9), // wraps to 2
            (2, 1, 2),
        ] {
            let result = run_draper(bits, start, add);
            let expected = (start + add) % (1 << bits);
            assert_eq!(result, expected, "{start} + {add} mod 2^{bits}");
        }
    }

    #[test]
    fn adding_zero_is_identity() {
        for start in 0..8u64 {
            assert_eq!(run_draper(3, start, 0), start);
        }
    }

    #[test]
    fn works_on_superposed_registers() {
        // |+⟩ on bit 0 (values 0 and 1), add 3: outcomes 3 and 4 only.
        let mut circ = QuantumCircuit::with_size(3, 3);
        circ.h(0).unwrap();
        append_draper_add_constant(&mut circ, 0, 3, 3).unwrap();
        for i in 0..3 {
            circ.measure(i, i).unwrap();
        }
        let counts =
            qukit_aer::simulator::QasmSimulator::new().with_seed(2).run(&circ, 600).unwrap();
        assert_eq!(counts.get_value(3) + counts.get_value(4), 600);
        assert!(counts.get_value(3) > 200 && counts.get_value(4) > 200);
    }

    #[test]
    fn agrees_with_cuccaro_adder() {
        for (a, b) in [(2u64, 5u64), (7, 6), (0, 3)] {
            let cuccaro = run_adder(3, a, b).unwrap() % 8; // drop the carry
            let draper = run_draper(3, b, a);
            assert_eq!(cuccaro, draper, "{a} + {b}");
        }
    }
}
