//! Simon's algorithm.
//!
//! Finds the hidden period `s` of a 2-to-1 function `f(x) = f(x ⊕ s)` with
//! `O(n)` quantum queries — the first exponential oracle separation and a
//! direct showcase of the quantum parallelism described in the paper's
//! Section II-A. Each quantum query yields a random `y` with `y·s = 0`
//! (mod 2); the classical post-processing solves the resulting GF(2)
//! system.

use qukit_aer::simulator::QasmSimulator;
use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::error::{Result, TerraError};

/// Builds one Simon-query circuit for hidden string `secret` over `n`-bit
/// inputs: input register qubits `0..n`, output register `n..2n`, input
/// register measured into clbits `0..n`.
///
/// The oracle realizes `f(x) = x ⊕ (x_p · secret)` where `p` is the lowest
/// set bit of `secret` — a 2-to-1 function with period `secret` (or the
/// identity when `secret == 0`, which is 1-to-1).
///
/// # Errors
///
/// Propagates operand-validation errors.
///
/// # Panics
///
/// Panics if `secret` does not fit in `n` bits.
pub fn simon_circuit(n: usize, secret: u64) -> Result<QuantumCircuit> {
    assert!((secret as u128) < (1u128 << n), "secret does not fit in {n} bits");
    let mut circ = QuantumCircuit::with_size(2 * n, n);
    circ.set_name(format!("simon_{n}"));
    for q in 0..n {
        circ.h(q)?;
    }
    // Oracle: copy x into y, then conditionally XOR the secret.
    for q in 0..n {
        circ.cx(q, n + q)?;
    }
    if secret != 0 {
        let pivot = secret.trailing_zeros() as usize;
        for q in 0..n {
            if (secret >> q) & 1 == 1 {
                circ.cx(pivot, n + q)?;
            }
        }
    }
    for q in 0..n {
        circ.h(q)?;
    }
    for q in 0..n {
        circ.measure(q, q)?;
    }
    Ok(circ)
}

/// Solves for the nonzero null-space vector of a set of GF(2) constraints
/// `y·s = 0`: returns `Some(s)` when the constraints pin down a unique
/// nonzero solution (rank `n-1`), `None` otherwise.
pub fn solve_gf2_nullspace(constraints: &[u64], n: usize) -> Option<u64> {
    // Gaussian elimination over GF(2).
    let mut rows: Vec<u64> = constraints.to_vec();
    let mut pivots: Vec<usize> = Vec::new(); // bit position per pivot row
    let mut reduced: Vec<u64> = Vec::new();
    for bit in (0..n).rev() {
        let mut found = None;
        for (i, &row) in rows.iter().enumerate() {
            if (row >> bit) & 1 == 1 {
                found = Some(i);
                break;
            }
        }
        let Some(i) = found else { continue };
        let pivot_row = rows.swap_remove(i);
        for row in rows.iter_mut() {
            if (*row >> bit) & 1 == 1 {
                *row ^= pivot_row;
            }
        }
        for row in reduced.iter_mut() {
            if (*row >> bit) & 1 == 1 {
                *row ^= pivot_row;
            }
        }
        reduced.push(pivot_row);
        pivots.push(bit);
    }
    if reduced.len() != n - 1 {
        return None; // under- or (impossibly) over-determined
    }
    // The single free bit determines s: set it to 1, back-substitute.
    let free_bit = (0..n).find(|b| !pivots.contains(b))?;
    let mut s = 1u64 << free_bit;
    for (row, &bit) in reduced.iter().zip(&pivots) {
        // Row is  bit ⊕ (other bits) = 0  ⇒  s_bit = parity of row ∧ s.
        let parity = ((row & s).count_ones() & 1) as u64;
        if parity == 1 {
            s |= 1 << bit;
        }
    }
    Some(s)
}

/// Evaluates the oracle classically on one basis input by running the
/// circuit's oracle block with `x` loaded — the standard verification
/// query distinguishing a genuine period from a spurious rank-(n-1)
/// solution (which occurs when the hidden string is 0, i.e. f is 1-to-1).
fn oracle_query(n: usize, secret: u64, x: u64) -> Result<u64> {
    let mut circ = QuantumCircuit::with_size(2 * n, n);
    for q in 0..n {
        if (x >> q) & 1 == 1 {
            circ.x(q)?;
        }
    }
    for q in 0..n {
        circ.cx(q, n + q)?;
    }
    if secret != 0 {
        let pivot = secret.trailing_zeros() as usize;
        for q in 0..n {
            if (secret >> q) & 1 == 1 {
                circ.cx(pivot, n + q)?;
            }
        }
    }
    for q in 0..n {
        circ.measure(n + q, q)?;
    }
    let counts = QasmSimulator::new()
        .with_seed(0)
        .run(&circ, 1)
        .map_err(|e| TerraError::Transpile { msg: e.to_string() })?;
    Ok(counts.most_frequent().unwrap_or(0))
}

/// Runs Simon's algorithm end to end: repeated quantum queries until the
/// constraint system determines a candidate, which is then *verified* with
/// two classical oracle queries (`f(0) == f(candidate)`).
///
/// # Errors
///
/// Returns an error when no verified secret is found within `max_queries`
/// (which is the expected outcome for a 1-to-1 oracle, i.e. hidden string
/// 0), or on simulator failure.
pub fn run_simon(n: usize, secret: u64, seed: u64, max_queries: usize) -> Result<u64> {
    let circ = simon_circuit(n, secret)?;
    let mut constraints: Vec<u64> = Vec::new();
    for query in 0..max_queries {
        let counts = QasmSimulator::new()
            .with_seed(seed.wrapping_add(query as u64))
            .run(&circ, 1)
            .map_err(|e| TerraError::Transpile { msg: e.to_string() })?;
        let y = counts.most_frequent().unwrap_or(0);
        if y != 0 && !constraints.contains(&y) {
            constraints.push(y);
        }
        if let Some(candidate) = solve_gf2_nullspace(&constraints, n) {
            if oracle_query(n, secret, 0)? == oracle_query(n, secret, candidate)? {
                return Ok(candidate);
            }
            // Spurious candidate (possible only when f is 1-to-1): keep
            // collecting constraints until the rank rules everything out.
        }
    }
    Err(TerraError::Transpile {
        msg: format!("simon: secret not determined after {max_queries} queries"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_constraint_property() {
        // Every measured y must satisfy y·s = 0 (mod 2).
        let n = 4;
        let secret = 0b1010u64;
        let circ = simon_circuit(n, secret).unwrap();
        let counts = QasmSimulator::new().with_seed(5).run(&circ, 500).unwrap();
        for (y, count) in counts.iter() {
            if count > 0 {
                assert_eq!((y & secret).count_ones() % 2, 0, "y = {y:04b} violates y·s = 0");
            }
        }
    }

    #[test]
    fn recovers_various_secrets() {
        for (n, secret) in [(3usize, 0b101u64), (4, 0b1100), (4, 0b0001), (5, 0b10110)] {
            let found = run_simon(n, secret, 17, 200).unwrap();
            assert_eq!(found, secret, "n = {n}");
        }
    }

    #[test]
    fn gf2_solver_on_known_system() {
        // s = 101: constraints orthogonal to it.
        let s = solve_gf2_nullspace(&[0b010, 0b101], 3);
        assert_eq!(s, Some(0b101));
        // Underdetermined.
        assert_eq!(solve_gf2_nullspace(&[0b010], 3), None);
        assert_eq!(solve_gf2_nullspace(&[], 2), None);
    }

    #[test]
    fn gf2_solver_with_redundant_constraints() {
        // Duplicates and linear combinations must not break the rank logic.
        let s = solve_gf2_nullspace(&[0b0110, 0b0110, 0b1001, 0b1111, 0b0011], 4);
        // Constraints: y1⊕y2=0-type rows; solution must satisfy all.
        let found = s.expect("unique solution");
        for c in [0b0110u64, 0b1001, 0b1111, 0b0011] {
            assert_eq!((found & c).count_ones() % 2, 0);
        }
    }

    #[test]
    fn zero_secret_never_resolves() {
        // f is 1-to-1 for s = 0: the y's span the full space, so no unique
        // nonzero null vector exists — run_simon must keep failing.
        let result = run_simon(3, 0, 23, 30);
        assert!(result.is_err());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_secret_panics() {
        let _ = simon_circuit(2, 4);
    }
}
