//! GC stress acceptance test for the rebuilt QMDD core (PR 5).
//!
//! A long random circuit (≥10k gates at 8 qubits) would have grown the old
//! append-only node arenas without bound; the refcounted arena must keep
//! peak live nodes bounded by collecting dead intermediates, report the
//! reclaims through the observability gauges, and still produce final
//! amplitudes that match the dense statevector reference to 1e-10.

use qukit::dd::simulator::DdSimulator;
use qukit::terra::circuit::QuantumCircuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const QUBITS: usize = 8;
const GATES: usize = 10_000;

/// Seeded measurement-free random circuit over the Clifford+T set. The
/// discrete gate set keeps every edge weight a product of exact constants,
/// so 10k gates of floating-point accumulation stay within the 1e-10
/// equivalence budget.
fn stress_circuit(seed: u64) -> QuantumCircuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut circ = QuantumCircuit::new(QUBITS);
    for _ in 0..GATES {
        match rng.gen_range(0..6) {
            0 => {
                circ.h(rng.gen_range(0..QUBITS)).expect("valid");
            }
            1 => {
                circ.t(rng.gen_range(0..QUBITS)).expect("valid");
            }
            2 => {
                circ.s(rng.gen_range(0..QUBITS)).expect("valid");
            }
            3 => {
                circ.x(rng.gen_range(0..QUBITS)).expect("valid");
            }
            4 => {
                circ.z(rng.gen_range(0..QUBITS)).expect("valid");
            }
            _ => {
                let a = rng.gen_range(0..QUBITS);
                let b = (a + rng.gen_range(1..QUBITS)) % QUBITS;
                circ.cx(a, b).expect("valid");
            }
        }
    }
    circ
}

#[test]
fn long_random_circuit_is_gc_bounded_and_amplitude_exact() {
    let circ = stress_circuit(0xDD5);
    assert!(circ.num_gates() >= GATES);

    qukit_obs::set_enabled(true);
    qukit_obs::reset();
    let state = DdSimulator::new().run(&circ).expect("dd run");
    let snapshot = qukit_obs::registry().snapshot();
    qukit_obs::set_enabled(false);

    // The GC actually ran and reclaimed dead nodes.
    let stats = state.package.stats();
    assert!(stats.gc_runs > 0, "10k gates must cross the GC threshold");
    assert!(stats.gc_reclaimed > 0, "collections must reclaim garbage");

    // Peak live nodes are bounded: an 8-qubit state DD holds < 2^8 nodes
    // and the gate/intermediate working set is threshold-bounded, far
    // below the hundreds of thousands of nodes 10k gates allocate in
    // total. (The adaptive threshold starts at 16384 and only doubles
    // when a collection fails to free half the arena.)
    let peak = state.package.peak_live_nodes();
    let total_allocated = stats.unique_misses as usize;
    assert!(peak < 65_536, "peak live nodes {peak} must stay bounded");
    assert!(
        peak < total_allocated / 2,
        "peak live {peak} must be well below total allocations {total_allocated}"
    );

    // The reclaims are visible through the new observability gauges.
    let counter = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
    let gauge = |name: &str| snapshot.gauges.get(name).copied().unwrap_or(0.0);
    assert_eq!(counter("qukit_dd_gc_runs_total"), stats.gc_runs);
    assert_eq!(counter("qukit_dd_gc_reclaimed_total"), stats.gc_reclaimed);
    assert!(gauge("qukit_dd_peak_live_nodes") >= gauge("qukit_dd_live_nodes"));
    assert!((gauge("qukit_dd_peak_live_nodes") - peak as f64).abs() < 0.5);

    // Final amplitudes match the dense statevector engine to 1e-10.
    let expected = qukit::terra::reference::statevector(&circ).expect("reference");
    let actual = state.to_statevector();
    assert_eq!(actual.len(), expected.len());
    for (i, (a, b)) in actual.iter().zip(&expected).enumerate() {
        assert!(
            a.approx_eq_eps(*b, 1e-10),
            "amplitude {i} diverged after {GATES} gates: {a} vs {b}"
        );
    }
}

#[test]
fn gc_runs_are_deterministic() {
    // Same circuit, two runs: identical stats and identical final state —
    // the GC must not introduce nondeterminism.
    let circ = stress_circuit(77);
    let a = DdSimulator::new().run(&circ).expect("dd run");
    let b = DdSimulator::new().run(&circ).expect("dd run");
    assert_eq!(a.package.stats(), b.package.stats());
    assert_eq!(a.root, b.root);
    let sa = a.to_statevector();
    let sb = b.to_statevector();
    for (x, y) in sa.iter().zip(&sb) {
        assert_eq!(x, y, "GC must be fully deterministic");
    }
}
