//! Property-based tests over the core invariants of the toolchain.
//!
//! Random circuits are generated via a proptest strategy and the
//! system-level invariants checked: norm preservation, transpiler
//! equivalence, simulator agreement, QASM round-tripping, and optimization
//! soundness.

use proptest::prelude::*;
use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::coupling::CouplingMap;
use qukit_terra::gate::Gate;
use qukit_terra::matrix::state_fidelity;
use qukit_terra::reference;
use qukit_terra::transpiler::{
    optimize, satisfies_coupling, transpile, MapperKind, TranspileOptions,
};

/// A single random gate application description.
#[derive(Debug, Clone)]
enum GateChoice {
    H(usize),
    T(usize),
    S(usize),
    X(usize),
    Rx(f64, usize),
    Rz(f64, usize),
    U(f64, f64, f64, usize),
    Cx(usize, usize),
    Cz(usize, usize),
    Swap(usize, usize),
    Ccx(usize, usize, usize),
}

fn gate_strategy(n: usize) -> impl Strategy<Value = GateChoice> {
    let q = 0..n;
    let angle = -3.2f64..3.2f64;
    prop_oneof![
        q.clone().prop_map(GateChoice::H),
        q.clone().prop_map(GateChoice::T),
        q.clone().prop_map(GateChoice::S),
        q.clone().prop_map(GateChoice::X),
        (angle.clone(), 0..n).prop_map(|(a, q)| GateChoice::Rx(a, q)),
        (angle.clone(), 0..n).prop_map(|(a, q)| GateChoice::Rz(a, q)),
        (angle.clone(), angle.clone(), angle.clone(), 0..n)
            .prop_map(|(t, p, l, q)| GateChoice::U(t, p, l, q)),
        (0..n, 0..n).prop_map(|(a, b)| GateChoice::Cx(a, b)),
        (0..n, 0..n).prop_map(|(a, b)| GateChoice::Cz(a, b)),
        (0..n, 0..n).prop_map(|(a, b)| GateChoice::Swap(a, b)),
        (0..n, 0..n, 0..n).prop_map(|(a, b, c)| GateChoice::Ccx(a, b, c)),
    ]
}

/// Builds a circuit from gate choices, silently skipping applications with
/// repeated operands (the strategy may generate them).
fn build_circuit(n: usize, choices: &[GateChoice]) -> QuantumCircuit {
    let mut circ = QuantumCircuit::new(n);
    for choice in choices {
        let result = match *choice {
            GateChoice::H(q) => circ.append(Gate::H, &[q]),
            GateChoice::T(q) => circ.append(Gate::T, &[q]),
            GateChoice::S(q) => circ.append(Gate::S, &[q]),
            GateChoice::X(q) => circ.append(Gate::X, &[q]),
            GateChoice::Rx(a, q) => circ.append(Gate::Rx(a), &[q]),
            GateChoice::Rz(a, q) => circ.append(Gate::Rz(a), &[q]),
            GateChoice::U(t, p, l, q) => circ.append(Gate::U(t, p, l), &[q]),
            GateChoice::Cx(a, b) => circ.append(Gate::CX, &[a, b]),
            GateChoice::Cz(a, b) => circ.append(Gate::CZ, &[a, b]),
            GateChoice::Swap(a, b) => circ.append(Gate::Swap, &[a, b]),
            GateChoice::Ccx(a, b, c) => circ.append(Gate::Ccx, &[a, b, c]),
        };
        let _ = result; // duplicate operands are skipped
    }
    circ
}

fn circuit_strategy(n: usize, max_gates: usize) -> impl Strategy<Value = QuantumCircuit> {
    prop::collection::vec(gate_strategy(n), 1..max_gates)
        .prop_map(move |choices| build_circuit(n, &choices))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn statevector_stays_normalized(circ in circuit_strategy(4, 24)) {
        let state = reference::statevector(&circ).unwrap();
        let norm: f64 = state.iter().map(|z| z.norm_sqr()).sum();
        prop_assert!((norm - 1.0).abs() < 1e-9, "norm {norm}");
    }

    #[test]
    fn dd_simulator_matches_reference(circ in circuit_strategy(4, 20)) {
        let expected = reference::statevector(&circ).unwrap();
        let dd = qukit_dd::simulator::DdSimulator::new().run(&circ).unwrap();
        let actual = dd.to_statevector();
        let f = state_fidelity(&actual, &expected);
        prop_assert!(f > 1.0 - 1e-8, "fidelity {f}");
    }

    #[test]
    fn optimization_preserves_unitary(circ in circuit_strategy(3, 20)) {
        let optimized = optimize::optimize_to_fixpoint(&circ).unwrap();
        prop_assert!(optimized.size() <= circ.size());
        let u1 = reference::unitary(&circ).unwrap();
        let u2 = reference::unitary(&optimized).unwrap();
        prop_assert!(u2.approx_eq_eps(&u1, 1e-7), "optimization changed semantics");
    }

    #[test]
    fn decomposition_preserves_unitary(circ in circuit_strategy(3, 16)) {
        let decomposed =
            qukit_terra::transpiler::decompose::decompose_to_cx_basis(&circ).unwrap();
        for inst in decomposed.instructions() {
            if let Some(g) = inst.as_gate() {
                prop_assert!(g.num_qubits() == 1 || *g == Gate::CX);
            }
        }
        let u1 = reference::unitary(&circ).unwrap();
        let u2 = reference::unitary(&decomposed).unwrap();
        prop_assert!(u2.phase_equal_to(&u1).is_some(), "decomposition changed semantics");
    }

    #[test]
    fn transpilation_to_qx4_is_equivalent(circ in circuit_strategy(4, 14)) {
        let qx4 = CouplingMap::ibm_qx4();
        for mapper in [MapperKind::Basic, MapperKind::Lookahead, MapperKind::AStar] {
            let options = TranspileOptions {
                coupling_map: Some(qx4.clone()),
                mapper,
                optimization_level: 2,
                ..TranspileOptions::default()
            };
            let result = transpile(&circ, &options).unwrap();
            prop_assert!(satisfies_coupling(&result.circuit, &qx4));
            // Semantic check via layout-aware embedding.
            let mut rng = rand::rngs::mock::StepRng::new(0x9E3779B97F4A7C15, 0x5851F42D4C957F2D);
            let input = reference::random_state(circ.num_qubits(), &mut rng);
            let expected = reference::evolve(&circ, &input).unwrap();
            let phys_in =
                reference::embed_state(&input, &result.initial_layout, qx4.num_qubits());
            let phys_out = reference::evolve(&result.circuit, &phys_in).unwrap();
            let expected_phys =
                reference::embed_state(&expected, &result.final_layout, qx4.num_qubits());
            let f = state_fidelity(&phys_out, &expected_phys);
            prop_assert!(f > 1.0 - 1e-7, "{mapper:?} broke the circuit: fidelity {f}");
        }
    }

    #[test]
    fn qasm_round_trip_preserves_semantics(circ in circuit_strategy(3, 16)) {
        let text = qukit_terra::qasm::emit(&circ);
        let reparsed = qukit_terra::qasm::parse(&text).unwrap();
        let u1 = reference::unitary(&circ).unwrap();
        let u2 = reference::unitary(&reparsed).unwrap();
        prop_assert!(u2.approx_eq_eps(&u1, 1e-9), "QASM round trip changed semantics");
    }

    #[test]
    fn counts_marginal_preserves_total(outcomes in prop::collection::vec(0u64..16, 1..200)) {
        let mut counts = qukit_aer::counts::Counts::new(4);
        for o in &outcomes {
            counts.record(*o);
        }
        let marginal = counts.marginal(&[0, 2]);
        prop_assert_eq!(marginal.total(), counts.total());
    }

    #[test]
    fn pauli_expectations_are_bounded(circ in circuit_strategy(3, 16)) {
        let amplitudes = reference::statevector(&circ).unwrap();
        let state = qukit_aer::statevector::Statevector::from_amplitudes(amplitudes);
        for pauli in ["ZZZ", "XIX", "YZI", "XYZ"] {
            let e = state.expectation_pauli(pauli);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&e), "<{pauli}> = {e}");
        }
    }
}

/// Clifford-only gate choices for the stabilizer-engine property.
fn clifford_strategy(n: usize) -> impl Strategy<Value = GateChoice> {
    let q = 0..n;
    prop_oneof![
        q.clone().prop_map(GateChoice::H),
        q.clone().prop_map(GateChoice::S),
        q.clone().prop_map(GateChoice::X),
        (0..n, 0..n).prop_map(|(a, b)| GateChoice::Cx(a, b)),
        (0..n, 0..n).prop_map(|(a, b)| GateChoice::Cz(a, b)),
        (0..n, 0..n).prop_map(|(a, b)| GateChoice::Swap(a, b)),
    ]
}

fn clifford_circuit_strategy(n: usize, max_gates: usize) -> impl Strategy<Value = QuantumCircuit> {
    prop::collection::vec(clifford_strategy(n), 1..max_gates)
        .prop_map(move |choices| build_circuit(n, &choices))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn stabilizer_engine_matches_dense_distributions(
        circ in clifford_circuit_strategy(3, 16),
        seed in 0u64..1000,
    ) {
        let mut measured = circ.clone();
        let _ = measured.add_creg("c", 3);
        for q in 0..3 {
            measured.measure(q, q).unwrap();
        }
        let shots = 1200;
        let dense = qukit_aer::simulator::QasmSimulator::new()
            .with_seed(seed)
            .run(&measured, shots)
            .unwrap();
        let tableau = qukit_aer::stabilizer::StabilizerSimulator::new()
            .with_seed(seed)
            .run(&measured, shots)
            .unwrap();
        let f = dense.hellinger_fidelity(&tableau);
        prop_assert!(f > 0.97, "fidelity {f}");
    }

    #[test]
    fn state_preparation_round_trips(seed in 0u64..500, n in 1usize..4) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let target = reference::random_state(n, &mut rng);
        let circ = qukit_aqua::state_preparation::prepare_state(&target).unwrap();
        let produced = reference::statevector(&circ).unwrap();
        let f = state_fidelity(&produced, &target);
        prop_assert!(f > 1.0 - 1e-8, "fidelity {f}");
    }

    #[test]
    fn controlled_circuits_are_exact(circ in circuit_strategy(2, 10)) {
        let controlled = qukit_terra::controlled::controlled_circuit(&circ).unwrap();
        let u = reference::unitary(&circ).unwrap();
        let cu = reference::unitary(&controlled).unwrap();
        let dim = 1usize << circ.num_qubits();
        for r in 0..dim {
            for c in 0..dim {
                // Control-off block: identity.
                let off = cu.get(r, c).unwrap();
                let expect_off = if r == c { 1.0 } else { 0.0 };
                prop_assert!((off.re - expect_off).abs() < 1e-8 && off.im.abs() < 1e-8);
                // Control-on block: U exactly.
                let on = cu.get(dim + r, dim + c).unwrap();
                prop_assert!(on.approx_eq_eps(u.get(r, c).unwrap(), 1e-8));
            }
        }
    }

    #[test]
    fn dd_inner_products_match_dense(
        a in circuit_strategy(3, 12),
        b in circuit_strategy(3, 12),
    ) {
        let mut package = qukit_dd::package::DdPackage::new(3);
        let run = |circ: &QuantumCircuit,
                       package: &mut qukit_dd::package::DdPackage| {
            let mut edge = package.zero_state();
            for inst in circ.instructions() {
                if let Some(g) = inst.as_gate() {
                    let m = package.gate_matrix(&g.matrix(), &inst.qubits);
                    edge = package.multiply_mv(m, edge);
                }
            }
            edge
        };
        let ea = run(&a, &mut package);
        let eb = run(&b, &mut package);
        let dd_ip = package.inner_product(ea, eb);
        let va = reference::statevector(&a).unwrap();
        let vb = reference::statevector(&b).unwrap();
        let dense_ip = qukit_terra::matrix::inner_product(&va, &vb);
        prop_assert!(dd_ip.approx_eq_eps(dense_ip, 1e-7), "{dd_ip} vs {dense_ip}");
    }

    #[test]
    fn equivalence_checker_accepts_optimized_circuits(circ in circuit_strategy(3, 14)) {
        let optimized =
            qukit_terra::transpiler::optimize::optimize_to_fixpoint(&circ).unwrap();
        prop_assert!(
            qukit_dd::verify::check_equivalence(&circ, &optimized)
                .unwrap()
                .is_equivalent()
        );
    }
}

// ---------------------------------------------------------------------------
// Properties driven by the conformance harness's seeded circuit generator —
// unlike the proptest strategies above it covers the *entire* gate alphabet
// (all fixed gates, every parameterized family, three-qubit gates).
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_generated_gate_matrix_is_unitary(seed in 0u64..10_000) {
        let mut generator = qukit_conformance::CircuitGenerator::new(
            seed,
            qukit_conformance::GeneratorConfig {
                max_qubits: 4,
                max_depth: 12,
                ..Default::default()
            },
        );
        for _ in 0..4 {
            let circ = generator.next_circuit();
            for inst in circ.instructions() {
                if let Some(g) = inst.as_gate() {
                    let m = g.matrix();
                    prop_assert!(m.is_unitary_eps(1e-9), "{} is not unitary", g.name());
                    // The inverse must really invert, as a matrix.
                    let inv = g.inverse().matrix();
                    let product = m.matmul(&inv);
                    let identity =
                        qukit_terra::matrix::Matrix::identity(m.rows());
                    prop_assert!(
                        product.approx_eq_eps(&identity, 1e-9),
                        "{}·{}⁻¹ ≠ I",
                        g.name(),
                        g.name()
                    );
                }
            }
        }
    }

    #[test]
    fn generated_circuits_transpile_onto_couplings(seed in 0u64..10_000) {
        let mut generator = qukit_conformance::CircuitGenerator::new(
            seed,
            qukit_conformance::GeneratorConfig {
                max_qubits: 5,
                max_depth: 10,
                ..Default::default()
            },
        );
        let circ = generator.next_circuit();
        let coupling = CouplingMap::ibm_qx4();
        let options = TranspileOptions::for_device(coupling.clone());
        let result = transpile(&circ, &options).unwrap();
        prop_assert!(satisfies_coupling(&result.circuit, &coupling));
    }

    #[test]
    fn generated_measurement_circuits_conserve_shots(seed in 0u64..10_000) {
        let mut generator = qukit_conformance::CircuitGenerator::new(
            seed,
            qukit_conformance::GeneratorConfig {
                max_qubits: 4,
                max_depth: 10,
                with_measurements: true,
                with_conditionals: true,
                ..Default::default()
            },
        );
        let circ = generator.next_circuit();
        let shots = 128;
        let counts = qukit_aer::simulator::QasmSimulator::new()
            .with_seed(seed)
            .run(&circ, shots)
            .unwrap();
        prop_assert_eq!(counts.total(), shots, "0-noise run lost or invented shots");
    }
}
