//! Transpile-cache integration: bit-identical hits, key separation, obs
//! counters, and executor-level reuse.
//!
//! Lives in its own test binary (single `#[test]`) because it asserts on
//! the process-global transpile cache and metrics registry; unrelated
//! tests sharing the process would race those views.

use qukit::backend::{Backend, FakeDevice};
use qukit::job::{ExecutorConfig, JobExecutor};
use qukit::provider::Provider;
use qukit_aer::noise::NoiseModel;
use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::coupling::CouplingMap;
use qukit_terra::transpiler::{self, transpile_cached, MapperKind, TranspileOptions};

fn workload(n: usize) -> QuantumCircuit {
    let mut circ = QuantumCircuit::new(n);
    for q in 0..n {
        circ.h(q).unwrap();
    }
    for q in 1..n {
        circ.cx(q - 1, q).unwrap();
        circ.t(q).unwrap();
    }
    circ.cx(0, n - 1).unwrap();
    circ
}

#[test]
fn transpile_cache_end_to_end() {
    let cache = transpiler::cache::global();
    cache.clear();
    qukit_obs::set_enabled(true);
    qukit_obs::reset();

    // --- Bit-identical hits --------------------------------------------
    let circ = workload(5);
    let mut opts = TranspileOptions::for_device(CouplingMap::ibm_qx4());
    opts.optimization_level = 3;
    opts.mapper = MapperKind::Sabre;
    let cold = transpile_cached(&circ, &opts).expect("cold transpile");
    let warm = transpile_cached(&circ, &opts).expect("warm transpile");
    assert_eq!(
        format!("{:?}", cold.circuit.instructions()),
        format!("{:?}", warm.circuit.instructions()),
        "cache hit must be bit-identical to the cold result"
    );
    assert_eq!(cold.circuit.global_phase().to_bits(), warm.circuit.global_phase().to_bits());
    assert_eq!(cold.initial_layout, warm.initial_layout);
    assert_eq!(cold.final_layout, warm.final_layout);
    let stats = cache.stats();
    assert_eq!(stats.hits, 1, "exactly one hit: {stats:?}");
    assert_eq!(stats.misses, 1, "exactly one miss: {stats:?}");
    assert_eq!(stats.inserts, 1);

    // --- Key separation across every option dimension -------------------
    // Same circuit at a different opt level, router, basis, and coupling
    // map: all must miss (no collisions), and each result must differ from
    // a plain hit where the pipeline differs.
    let mut variants = Vec::new();
    for level in 0..=3u8 {
        for mapper in [MapperKind::Lookahead, MapperKind::AStar, MapperKind::Sabre] {
            let mut v = opts.clone();
            v.optimization_level = level;
            v.mapper = mapper;
            variants.push(v);
        }
    }
    let mut line = opts.clone();
    line.coupling_map = Some(CouplingMap::line(5));
    variants.push(line);
    let mut flipped_basis = opts.clone();
    flipped_basis.basis_u = !opts.basis_u;
    variants.push(flipped_basis);
    let before = cache.stats();
    for v in &variants {
        transpile_cached(&circ, v).expect("variant transpiles");
    }
    let after = cache.stats();
    // The (level 3, Sabre) variant equals `opts`, which is already cached;
    // every other variant is a distinct key and must miss.
    assert_eq!(after.hits, before.hits + 1, "{after:?}");
    assert_eq!(after.misses, before.misses + (variants.len() as u64 - 1), "{after:?}");

    // --- Obs counters mirror the cache stats -----------------------------
    let snapshot = qukit_obs::registry().snapshot();
    let counter = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
    assert_eq!(counter("qukit_terra_transpile_cache_hits_total"), after.hits);
    assert_eq!(counter("qukit_terra_transpile_cache_misses_total"), after.misses);
    assert_eq!(counter("qukit_terra_transpile_cache_inserts_total"), after.inserts);

    // --- Backend-level reuse --------------------------------------------
    // The same payload through FakeDevice twice: the second run's
    // transpile is a pure cache hit, and seeded counts are identical.
    let device = FakeDevice::ibmqx4().with_noise(NoiseModel::new()).with_seed(77);
    let payload = workload(4);
    let before = cache.stats();
    let counts1 = device.run(&payload, 256).expect("first run");
    let counts2 = device.run(&payload, 256).expect("second run");
    let after = cache.stats();
    assert_eq!(after.misses, before.misses + 1, "first device transpile misses");
    assert!(after.hits > before.hits, "second device transpile hits");
    assert_eq!(
        format!("{counts1:?}"),
        format!("{counts2:?}"),
        "seeded runs through the cache stay deterministic"
    );

    // --- Executor-level reuse -------------------------------------------
    let mut provider = Provider::new();
    provider.register(Box::new(FakeDevice::ibmqx4().with_noise(NoiseModel::new()).with_seed(13)));
    let executor = JobExecutor::with_config(
        provider,
        ExecutorConfig { workers: 1, queue_capacity: 8, ..Default::default() },
    );
    let job_payload = workload(5);
    let before = cache.stats();
    let job1 = executor.submit(&job_payload, "ibmqx4", 128).expect("submit 1");
    let counts1 = job1.result(std::time::Duration::from_secs(30)).expect("job 1");
    let job2 = executor.submit(&job_payload, "ibmqx4", 128).expect("submit 2");
    let counts2 = job2.result(std::time::Duration::from_secs(30)).expect("job 2");
    executor.shutdown();
    let after = cache.stats();
    assert!(after.hits > before.hits, "resubmitted job must hit the transpile cache");
    assert_eq!(
        format!("{counts1:?}"),
        format!("{counts2:?}"),
        "seed-deterministic counts across cache hit"
    );

    qukit_obs::set_enabled(false);

    // --- Profiler determinism -------------------------------------------
    // The per-pass profiler must be a pure observer: transpiling with
    // metrics enabled and disabled yields bit-identical output at every
    // optimization level with both production routers.
    let circ = workload(5);
    for level in 0..=3u8 {
        for mapper in [MapperKind::Sabre, MapperKind::AStar] {
            let mut opts = TranspileOptions::for_device(CouplingMap::ibm_qx4());
            opts.optimization_level = level;
            opts.mapper = mapper;

            qukit_obs::set_enabled(false);
            let unprofiled = transpiler::transpile(&circ, &opts).expect("unprofiled");
            qukit_obs::set_enabled(true);
            qukit_obs::reset();
            let profiled = transpiler::transpile(&circ, &opts).expect("profiled");
            let snapshot = qukit_obs::registry().snapshot();
            qukit_obs::set_enabled(false);

            assert!(
                snapshot
                    .histograms
                    .iter()
                    .any(|(name, h)| name.starts_with("qukit_terra_pass_seconds") && h.count > 0),
                "profiled run must record pass timings (opt {level}, {mapper:?})"
            );
            assert_eq!(
                format!("{:?}", unprofiled.circuit.instructions()),
                format!("{:?}", profiled.circuit.instructions()),
                "profiler changed the transpile output (opt {level}, {mapper:?})"
            );
            assert_eq!(
                unprofiled.circuit.global_phase().to_bits(),
                profiled.circuit.global_phase().to_bits(),
                "profiler changed the global phase (opt {level}, {mapper:?})"
            );
            assert_eq!(unprofiled.initial_layout, profiled.initial_layout);
            assert_eq!(unprofiled.final_layout, profiled.final_layout);
            assert_eq!(unprofiled.num_swaps, profiled.num_swaps);
        }
    }
}
