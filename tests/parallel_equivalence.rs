//! Parallel/fused-kernel equivalence: the gate under which the parallel
//! execution layer ships.
//!
//! 200 seeded random circuits from the conformance generator run on the
//! serial statevector simulator (the legacy path, untouched by the
//! parallel layer) and on the chunked/fused parallel engine at every
//! combination of threads ∈ {1, 2, 4} × fusion on/off × SIMD on/off.
//! Chunks are forced tiny (`chunk_qubits: 2`) so even 2-qubit circuits
//! split across workers. Every amplitude must agree to 1e-10, and the
//! SIMD kernels must agree with the scalar kernels bit for bit.

use qukit::aer::parallel::{ParallelConfig, ParallelStatevectorSimulator};
use qukit::aer::simulator::StatevectorSimulator;
use qukit_conformance::{CircuitGenerator, GateSet, GeneratorConfig};

const CASES: usize = 200;
const TOLERANCE: f64 = 1e-10;

fn generator(seed: u64) -> CircuitGenerator {
    CircuitGenerator::new(
        seed,
        GeneratorConfig {
            gate_set: GateSet::Full,
            min_qubits: 1,
            max_qubits: 5,
            max_depth: 16,
            with_measurements: false,
            with_conditionals: false,
        },
    )
}

#[test]
fn parallel_and_fused_kernels_match_serial_on_200_random_circuits() {
    let mut generator = generator(42);
    for case in 0..CASES {
        let circuit = generator.next_circuit();
        let serial = StatevectorSimulator::new().run(&circuit).expect("serial run");
        for threads in [1, 2, 4] {
            for fusion in [false, true] {
                let scalar = ParallelStatevectorSimulator::with_config(ParallelConfig {
                    threads,
                    chunk_qubits: 2,
                    fusion,
                    simd: false,
                })
                .run(&circuit)
                .expect("parallel run (scalar)");
                let simd = ParallelStatevectorSimulator::with_config(ParallelConfig {
                    threads,
                    chunk_qubits: 2,
                    fusion,
                    simd: true,
                })
                .run(&circuit)
                .expect("parallel run (simd)");
                assert_eq!(serial.num_qubits(), scalar.num_qubits());
                for (idx, (s, p)) in serial.amplitudes().iter().zip(scalar.amplitudes()).enumerate()
                {
                    let err = (*s - *p).norm();
                    assert!(
                        err <= TOLERANCE,
                        "case {case} (threads {threads}, fusion {fusion}): amplitude {idx} \
                         diverges by {err:.3e} ({s} vs {p})\n{circuit:?}"
                    );
                }
                // The SIMD kernels replicate the scalar complex arithmetic
                // exactly, so this comparison is bitwise, not tolerance-based.
                assert_eq!(
                    scalar.amplitudes(),
                    simd.amplitudes(),
                    "case {case} (threads {threads}, fusion {fusion}): SIMD kernels \
                     are not bit-identical to scalar kernels\n{circuit:?}"
                );
            }
        }
    }
}

/// The same sweep through the `QasmSimulator` sampling front-end: the
/// parallel sampled path must see the same distribution the serial path
/// samples from. Seeds differ between the two RNG schemes, so this
/// compares empirical histograms statistically (Hellinger fidelity), not
/// count-for-count.
#[test]
fn sampled_histograms_stay_faithful_under_parallel_execution() {
    use qukit::aer::simulator::QasmSimulator;
    let mut generator = generator(7);
    for case in 0..20 {
        let mut circuit = generator.next_circuit();
        circuit.measure_all();
        let shots = 2048;
        let serial = QasmSimulator::new()
            .with_seed(11)
            .with_parallel(ParallelConfig::serial())
            .run(&circuit, shots)
            .expect("serial run");
        let parallel = QasmSimulator::new()
            .with_seed(11)
            .with_parallel(ParallelConfig { threads: 4, chunk_qubits: 2, fusion: true, simd: true })
            .run(&circuit, shots)
            .expect("parallel run");
        assert_eq!(parallel.total(), shots);
        let fidelity = serial.hellinger_fidelity(&parallel);
        assert!(
            fidelity > 0.97,
            "case {case}: serial/parallel histogram fidelity {fidelity:.4}\n{circuit:?}"
        );
    }
}
