//! Golden-value tests: known circuits with exact expected amplitudes or
//! outcome distributions, checked against **every** engine that can run
//! them — including the parallel chunked/fused kernels. The expected
//! values live as data files in `tests/golden/` so they are reviewable
//! independently of any simulator.

use qukit::aer::density::DensityMatrixSimulator;
use qukit::aer::parallel::{ParallelConfig, ParallelStatevectorSimulator};
use qukit::aer::simulator::{QasmSimulator, StatevectorSimulator};
use qukit::aer::stabilizer::StabilizerSimulator;
use qukit::dd::simulator::DdSimulator;
use qukit::terra::complex::Complex;
use qukit::QuantumCircuit;
use std::path::PathBuf;

const AMP_TOLERANCE: f64 = 1e-10;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden").join(name)
}

/// Parses a `.amps` file into the dense expected statevector.
fn read_amplitudes(name: &str, num_qubits: usize) -> Vec<Complex> {
    let text = std::fs::read_to_string(golden_path(name)).expect("golden file readable");
    let mut amps = vec![Complex::ZERO; 1 << num_qubits];
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let idx: usize = parts.next().expect("index").parse().expect("index parses");
        let re: f64 = parts.next().expect("real part").parse().expect("real parses");
        let im: f64 = parts.next().expect("imag part").parse().expect("imag parses");
        amps[idx] = Complex::new(re, im);
    }
    amps
}

/// Parses a `.counts` file into `(bitstring, probability)` pairs.
fn read_counts(name: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(golden_path(name)).expect("golden file readable");
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|line| {
            let mut parts = line.split_whitespace();
            let bits = parts.next().expect("bitstring").to_owned();
            let p: f64 = parts.next().expect("probability").parse().expect("probability parses");
            (bits, p)
        })
        .collect()
}

/// The parallel engine configurations every golden circuit runs under:
/// serial-with-fusion and fully threaded with forced-tiny chunks.
fn parallel_configs() -> [ParallelConfig; 2] {
    [
        ParallelConfig { threads: 1, chunk_qubits: 13, fusion: true, simd: true },
        ParallelConfig { threads: 4, chunk_qubits: 2, fusion: true, simd: true },
    ]
}

fn assert_amplitudes(engine: &str, expected: &[Complex], actual: &[Complex]) {
    assert_eq!(expected.len(), actual.len(), "{engine}: state width");
    for (idx, (e, a)) in expected.iter().zip(actual).enumerate() {
        let err = (*e - *a).norm();
        assert!(
            err <= AMP_TOLERANCE,
            "{engine}: amplitude {idx} diverges by {err:.3e} (golden {e}, got {a})"
        );
    }
}

/// Runs a unitary circuit on every exact engine and checks the golden
/// amplitudes (probabilities for the density engine).
fn check_unitary_golden(circuit: &QuantumCircuit, expected: &[Complex]) {
    let sv = StatevectorSimulator::new().run(circuit).expect("statevector");
    assert_amplitudes("statevector", expected, sv.amplitudes());

    for (i, config) in parallel_configs().into_iter().enumerate() {
        let psv = ParallelStatevectorSimulator::with_config(config).run(circuit).expect("parallel");
        assert_amplitudes(&format!("parallel[{i}]"), expected, psv.amplitudes());
    }

    let dd = DdSimulator::new().run(circuit).expect("dd");
    assert_amplitudes("dd", expected, &dd.to_statevector());

    let rho = DensityMatrixSimulator::new().run(circuit).expect("density");
    for (idx, (p, amp)) in rho.probabilities().iter().zip(expected).enumerate() {
        assert!(
            (p - amp.norm_sqr()).abs() <= AMP_TOLERANCE,
            "density: probability {idx} is {p}, golden |amp|^2 = {}",
            amp.norm_sqr()
        );
    }
}

#[test]
fn ghz_3_matches_golden_amplitudes_on_every_engine() {
    let circuit = qukit::aqua::circuits::ghz_circuit(3);
    let expected = read_amplitudes("ghz_3.amps", 3);
    check_unitary_golden(&circuit, &expected);

    // GHZ is Clifford: the stabilizer tableau must sample only the two
    // golden outcomes, in near-equal proportion.
    let mut measured = circuit.clone();
    measured.measure_all();
    let shots = 4096;
    let counts = StabilizerSimulator::new().with_seed(3).run(&measured, shots).expect("stabilizer");
    assert_eq!(counts.total(), shots);
    for (outcome, n) in counts.iter() {
        assert!(outcome == 0 || outcome == 7, "stabilizer sampled impossible outcome {outcome}");
        let p = n as f64 / shots as f64;
        assert!((p - 0.5).abs() < 0.05, "outcome {outcome} frequency {p}");
    }
}

#[test]
fn grover_2q_matches_golden_amplitudes_on_every_engine() {
    let circuit = qukit::aqua::grover::grover_circuit(2, &[3], Some(1)).expect("grover circuit");
    let expected = read_amplitudes("grover_2q.amps", 2);
    check_unitary_golden(&circuit, &expected);

    // Sampling must find the marked state every single shot, on the
    // serial and on the parallel sampled path.
    let mut measured = circuit.clone();
    measured.measure_all();
    for config in [
        ParallelConfig::serial(),
        ParallelConfig { threads: 4, chunk_qubits: 2, fusion: true, simd: true },
    ] {
        let counts = QasmSimulator::new()
            .with_seed(9)
            .with_parallel(config)
            .run(&measured, 512)
            .expect("sampled grover");
        assert_eq!(counts.get("11"), 512, "grover must always measure the marked state");
    }
}

#[test]
fn teleporting_one_matches_golden_counts_on_serial_and_parallel_paths() {
    let circuit = qukit::aqua::teleportation::teleport_circuit(&[(qukit::Gate::X, 0)])
        .expect("teleport circuit");
    let golden = read_counts("teleport_x.counts");
    let total_p: f64 = golden.iter().map(|(_, p)| p).sum();
    assert!((total_p - 1.0).abs() < 1e-12, "golden distribution must sum to 1");

    let shots = 4096;
    let configs = [
        ParallelConfig::serial(),
        ParallelConfig { threads: 2, chunk_qubits: 13, fusion: false, simd: false },
        ParallelConfig { threads: 4, chunk_qubits: 2, fusion: true, simd: true },
    ];
    for (i, config) in configs.into_iter().enumerate() {
        let counts = QasmSimulator::new()
            .with_seed(21)
            .with_parallel(config)
            .run(&circuit, shots)
            .expect("teleport run");
        assert_eq!(counts.total(), shots);
        // Only golden outcomes may appear (the teleported bit is always
        // 1), and each must be near its golden probability.
        for (outcome, n) in counts.iter() {
            let bits = counts.to_bitstring(outcome);
            let p = n as f64 / shots as f64;
            let golden_p = golden
                .iter()
                .find(|(b, _)| *b == bits)
                .unwrap_or_else(|| panic!("config {i}: impossible outcome {bits} ({n} shots)"))
                .1;
            assert!(
                (p - golden_p).abs() < 0.05,
                "config {i}: outcome {bits} frequency {p:.4}, golden {golden_p}"
            );
        }
    }
}
