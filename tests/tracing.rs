//! End-to-end trace-propagation tests: one job submission must yield
//! one correctly-nested span waterfall, tenant labels must surface in
//! the Prometheus export, and trace ids must survive a crash/recovery
//! cycle through the journal.
//!
//! These tests toggle the process-global metrics registry, so they
//! serialize on a local lock (same discipline as the bench load tests).

use qukit::fault::{FaultInjectingBackend, FaultMode};
use qukit::job::{ExecutorConfig, JobExecutor, SubmitOptions};
use qukit::journal::{self, JournalRecord};
use qukit::provider::Provider;
use qukit::retry::RetryPolicy;
use qukit::{CacheConfig, QasmSimulatorBackend, QuantumCircuit};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;

fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn bell() -> QuantumCircuit {
    let mut circ = QuantumCircuit::new(2);
    circ.h(0).unwrap();
    circ.cx(0, 1).unwrap();
    circ
}

/// Chain-shaped GHZ: every CX touches adjacent qubits, so a line
/// coupling needs no routing swaps (which would otherwise land between
/// the terminal measurements and push the engine off the sampled path).
fn ghz(n: usize) -> QuantumCircuit {
    let mut circ = QuantumCircuit::new(n);
    circ.h(0).unwrap();
    for q in 1..n {
        circ.cx(q - 1, q).unwrap();
    }
    circ
}

fn seeded_provider(seed: u64) -> Provider {
    let mut provider = Provider::new();
    provider.register(Box::new(QasmSimulatorBackend::new().with_seed(seed)));
    provider
}

/// A self-cleaning temp directory for journal tests.
struct TempDir {
    path: PathBuf,
}

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "qukit_tracing_test_{tag}_{}_{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .as_nanos()
        ));
        Self { path }
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

fn submit_opts(tenant: &str) -> SubmitOptions {
    SubmitOptions { tenant: tenant.to_owned(), ..SubmitOptions::default() }
}

/// The tentpole invariant: one job = one trace = one nested waterfall
/// (submit → queued → attempt → transpile → engine → sample), cache
/// hits swap the attempt subtree for a `job.cache_hit` span carrying
/// the producing job's trace id, and every tenant shows up as a label
/// in the Prometheus export.
#[test]
fn jobs_emit_nested_waterfalls_with_tenant_labels() {
    let _guard = lock();
    qukit_obs::set_enabled(true);
    qukit_obs::reset();

    // A fake device so the waterfall includes the transpiler layer
    // (the plain qasm_simulator accepts circuits untranspiled). The
    // bidirectional line coupling needs no direction-fix gates after
    // the measurements, and ideal noise keeps the engine on the
    // sampled fast path — so the `aer.sample` span appears too.
    let mut provider = Provider::new();
    provider.register(Box::new(
        qukit::backend::FakeDevice::new(
            "line5",
            qukit::CouplingMap::line(5),
            qukit::aer::noise::NoiseModel::new(),
        )
        .with_seed(7),
    ));
    let executor = JobExecutor::with_config(
        provider,
        ExecutorConfig {
            workers: 1,
            queue_capacity: 16,
            retry: RetryPolicy::none(),
            cache: Some(CacheConfig::default()),
            ..Default::default()
        },
    );
    // alice's bell populates the result cache; bob's ghz is a distinct
    // entry; bob's bell re-submits alice's content and must hit.
    let job_a = executor.submit_with(&bell(), "line5", 64, &submit_opts("alice")).expect("a");
    job_a.result(Duration::from_secs(30)).expect("a completes");
    let job_b = executor.submit_with(&ghz(3), "line5", 64, &submit_opts("bob")).expect("b");
    let job_c = executor.submit_with(&bell(), "line5", 32, &submit_opts("bob")).expect("c");
    job_b.result(Duration::from_secs(30)).expect("b completes");
    job_c.result(Duration::from_secs(30)).expect("c completes");
    assert!(job_c.served_from_cache(), "same content must hit the result cache");
    executor.shutdown();

    let snapshot = qukit_obs::registry().snapshot();
    qukit_obs::set_enabled(false);

    let trees: BTreeMap<u64, qukit_obs::SpanTree> = qukit_obs::assemble_trees(&snapshot.trace)
        .into_iter()
        .map(|tree| (tree.trace_id, tree))
        .collect();

    // Distinct jobs got distinct traces.
    assert_ne!(job_a.trace_id(), job_b.trace_id());
    assert_ne!(job_a.trace_id(), job_c.trace_id());

    // Executed jobs: the full waterfall, correctly nested.
    for job in [&job_a, &job_b] {
        let tree = &trees[&job.trace_id()];
        assert!(!tree.partial, "nothing evicted in this tiny run");
        assert_eq!(tree.roots.len(), 1, "one root span per trace");
        let root = &tree.roots[0];
        assert_eq!(root.event.name, "job");
        assert_eq!(root.event.span_id, job.trace_id(), "root span id is the trace id");
        for child in ["job.submit", "job.queued", "job.attempt"] {
            assert!(
                root.children.iter().any(|node| node.event.name == child),
                "'{child}' must sit directly under the job root, got {:?}",
                root.children.iter().map(|n| n.event.name.as_str()).collect::<Vec<_>>()
            );
        }
        let attempt = root
            .children
            .iter()
            .find(|node| node.event.name == "job.attempt")
            .expect("attempt subtree");
        // The worker-side pipeline nests *inside* the attempt span:
        // transpile (with its passes), the engine run, and sampling.
        let mut inside = Vec::new();
        fn walk(node: &qukit_obs::SpanNode, into: &mut Vec<(String, String)>) {
            into.push((node.event.name.clone(), node.event.detail.clone()));
            for child in &node.children {
                walk(child, into);
            }
        }
        walk(attempt, &mut inside);
        for name in ["transpile", "transpile.pass", "aer.qasm_run", "aer.sample"] {
            assert!(
                inside.iter().any(|(n, _)| n == name),
                "'{name}' missing from attempt: {inside:?}"
            );
        }
        assert!(tree.find("job.cache_hit").is_none(), "executed jobs have no hit span");
    }

    // The cache-hit job: a hit span instead of an execution subtree,
    // linked to the producing job's trace.
    let hit_tree = &trees[&job_c.trace_id()];
    let hit = hit_tree.find("job.cache_hit").expect("cache-hit span");
    assert!(
        hit.event.detail.contains(&format!("producer_trace={}", job_a.trace_id())),
        "hit span must link the producing trace: {}",
        hit.event.detail
    );
    assert!(hit_tree.find("job.attempt").is_none(), "no attempt ran");
    assert!(hit_tree.find("aer.qasm_run").is_none(), "no engine ran");

    // Per-tenant series, Prometheus-rendered with label bodies.
    let prometheus = qukit_obs::export::prometheus(&snapshot);
    for tenant in ["alice", "bob"] {
        assert!(
            prometheus.contains(&format!(
                "qukit_core_tenant_jobs_submitted_total{{tenant=\"{tenant}\"}}"
            )),
            "missing per-tenant submit counter for {tenant}:\n{prometheus}"
        );
        assert!(prometheus
            .contains(&format!("qukit_core_tenant_jobs_completed_total{{tenant=\"{tenant}\"}}")));
        assert!(prometheus
            .contains(&format!("qukit_core_tenant_job_seconds_count{{tenant=\"{tenant}\"}}")));
    }
    assert!(prometheus.contains("qukit_core_tenant_cache_hits_total{tenant=\"bob\"}"));

    // The whole buffer exports as a valid Chrome trace.
    let chrome = qukit_obs::export::chrome_trace(&snapshot.trace);
    qukit_obs::export::validate_chrome_trace(&chrome).expect("chrome trace schema-valid");
}

/// Crash/restart keeps trace ids stable: the journal carries each
/// job's trace id, and recovery re-adopts it instead of minting a new
/// one — so a trace started before the crash stays addressable after.
#[test]
fn recovery_preserves_trace_ids_across_crash() {
    let _guard = lock();
    qukit_obs::set_enabled(true);
    qukit_obs::reset();

    let dir = TempDir::new("trace_ids");
    let mut original: BTreeMap<u64, u64> = BTreeMap::new();

    // Phase 1: submit with a stalling backend so most jobs are still
    // in flight, then crash.
    {
        let mut provider = Provider::new();
        provider.register(Box::new(FaultInjectingBackend::new(
            Box::new(QasmSimulatorBackend::new().with_seed(5)),
            FaultMode::Hang(Duration::from_millis(40)),
        )));
        let executor = JobExecutor::try_with_config(
            provider,
            ExecutorConfig {
                workers: 1,
                queue_capacity: 16,
                retry: RetryPolicy::none(),
                journal_dir: Some(dir.path.clone()),
                ..Default::default()
            },
        )
        .expect("journal opens");
        let mut jobs = Vec::new();
        for i in 0..4usize {
            let opts = SubmitOptions {
                idempotency_key: Some(format!("trace-job-{i}")),
                ..SubmitOptions::default()
            };
            let job = executor.submit_with(&bell(), "qasm_simulator", 64, &opts).expect("accepted");
            assert_ne!(job.trace_id(), 0, "every accepted job gets a trace id");
            original.insert(job.id(), job.trace_id());
            jobs.push(job);
        }
        jobs[0].result(Duration::from_secs(30)).expect("first completes");
        executor.crash();
    }

    // The journal's submission records carry the trace ids verbatim.
    let log = journal::replay(&dir.path).expect("journal readable");
    let mut journaled = 0usize;
    for record in &log.records {
        if let JournalRecord::Submitted { job_id, trace, .. } = record {
            assert_eq!(original[job_id], *trace, "journal must persist the minted trace id");
            journaled += 1;
        }
    }
    assert_eq!(journaled, original.len());

    // Phase 2: rebuild; every recovered job keeps its original id.
    let executor = JobExecutor::try_with_config(
        seeded_provider(5),
        ExecutorConfig {
            workers: 2,
            queue_capacity: 16,
            retry: RetryPolicy::none(),
            journal_dir: Some(dir.path.clone()),
            ..Default::default()
        },
    )
    .expect("journal replays");
    let recovered = executor.recovered_jobs();
    assert_eq!(recovered.len(), original.len());
    for job in recovered {
        assert_eq!(
            job.trace_id(),
            original[&job.id()],
            "recovery must keep job {}'s trace id stable",
            job.id()
        );
        job.result(Duration::from_secs(30)).expect("recovered job completes");
    }
    executor.shutdown();

    // The replayed executions record spans under the *original* trace
    // ids, so pre- and post-crash spans stitch into one trace.
    let trace = qukit_obs::snapshot_trace();
    qukit_obs::set_enabled(false);
    let replayed: Vec<&u64> = original
        .values()
        .filter(|id| trace.iter().any(|e| e.trace_id == **id && e.name == "job"))
        .collect();
    assert!(
        replayed.len() >= original.len() - 1,
        "re-run jobs must close their root span under the journaled trace id \
         ({} of {} seen)",
        replayed.len(),
        original.len()
    );
}
