OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
rzz(-0.028859837139941114) q[1],q[0];
