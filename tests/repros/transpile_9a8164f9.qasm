OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
p(pi/4) q[0];
crx(pi/2) q[1],q[0];
