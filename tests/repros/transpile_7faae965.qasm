OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
sxdg q[3];
cp(-1.838171886068538) q[0],q[3];
ccx q[3],q[1],q[2];
