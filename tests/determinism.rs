//! Determinism guarantees of the parallel execution layer.
//!
//! The chunked kernels write every amplitude exactly once per pass from
//! values read in that pass, and shot sampling draws from fixed-size
//! per-batch RNG streams — so for a fixed seed the results are identical
//! whatever the thread count or chunk size. These tests pin that
//! contract, plus a 16-job concurrent stress of the job service running
//! over parallel backends.

use qukit::aer::parallel::ParallelConfig;
use qukit::aer::simulator::QasmSimulator;
use qukit::backend::QasmSimulatorBackend;
use qukit::job::{ExecutorConfig, JobExecutor};
use qukit::provider::Provider;
use qukit::QuantumCircuit;
use std::time::Duration;

/// A non-Clifford 6-qubit workload with terminal measurements (the
/// one-pass sampled path).
fn sampled_circuit() -> QuantumCircuit {
    let mut circ = QuantumCircuit::new(6);
    for q in 0..6 {
        circ.h(q).unwrap();
    }
    for q in 0..5 {
        circ.cx(q, q + 1).unwrap();
    }
    for q in 0..6 {
        circ.rz(0.1 + 0.3 * q as f64, q).unwrap();
        circ.t(q).unwrap();
    }
    circ.ccx(0, 2, 4).unwrap();
    circ.measure_all();
    circ
}

/// A circuit with reset + a conditioned gate: forces the per-shot
/// trajectory path (no one-pass sampling possible).
fn trajectory_circuit() -> QuantumCircuit {
    let mut circ = QuantumCircuit::with_size(3, 3);
    circ.h(0).unwrap();
    circ.cx(0, 1).unwrap();
    circ.measure(0, 0).unwrap();
    circ.reset(0).unwrap();
    circ.append_conditional(qukit::Gate::X, &[2], "c", 1).unwrap();
    circ.h(0).unwrap();
    circ.measure(1, 1).unwrap();
    circ.measure(2, 2).unwrap();
    circ
}

fn counts_vec(counts: &qukit::Counts) -> Vec<(u64, usize)> {
    counts.iter().collect()
}

#[test]
fn sampled_counts_are_identical_across_thread_and_chunk_configurations() {
    let circuit = sampled_circuit();
    let shots = 1024;
    let reference = QasmSimulator::new()
        .with_seed(99)
        .with_parallel(ParallelConfig { threads: 1, chunk_qubits: 13, fusion: true, simd: false })
        .run(&circuit, shots)
        .expect("reference run");
    assert_eq!(reference.total(), shots);
    for threads in [1, 2, 4, 8] {
        for chunk_qubits in [2, 13] {
            for simd in [false, true] {
                let config = ParallelConfig { threads, chunk_qubits, fusion: true, simd };
                let counts = QasmSimulator::new()
                    .with_seed(99)
                    .with_parallel(config)
                    .run(&circuit, shots)
                    .expect("parallel run");
                assert_eq!(
                    counts_vec(&reference),
                    counts_vec(&counts),
                    "counts changed at threads {threads}, chunk_qubits {chunk_qubits}, simd {simd}"
                );
            }
        }
    }
}

#[test]
fn fusion_does_not_change_the_sampled_distribution_stream() {
    // Fusion reorders no gates and changes no amplitudes (to rounding),
    // and sampling depends only on the CDF — so the same seed must give
    // the same counts with fusion on or off.
    let circuit = sampled_circuit();
    let run = |fusion: bool| {
        QasmSimulator::new()
            .with_seed(1234)
            .with_parallel(ParallelConfig { threads: 2, chunk_qubits: 4, fusion, simd: true })
            .run(&circuit, 512)
            .expect("run")
    };
    assert_eq!(counts_vec(&run(false)), counts_vec(&run(true)));
}

#[test]
fn trajectory_counts_are_identical_across_thread_counts() {
    let circuit = trajectory_circuit();
    let shots = 640;
    let reference = QasmSimulator::new()
        .with_seed(5)
        .with_parallel(ParallelConfig { threads: 2, chunk_qubits: 13, fusion: false, simd: true })
        .run(&circuit, shots)
        .expect("reference run");
    assert_eq!(reference.total(), shots);
    for threads in [3, 4, 8] {
        for chunk_qubits in [2, 13] {
            let config = ParallelConfig { threads, chunk_qubits, fusion: false, simd: true };
            let counts = QasmSimulator::new()
                .with_seed(5)
                .with_parallel(config)
                .run(&circuit, shots)
                .expect("trajectory run");
            assert_eq!(
                counts_vec(&reference),
                counts_vec(&counts),
                "trajectory counts changed at threads {threads}, chunk_qubits {chunk_qubits}"
            );
        }
    }
}

/// 16 concurrent submissions through a 4-worker executor whose backends
/// all run the 4-thread parallel kernels: thread-pool-inside-thread-pool
/// stress. Every job must complete with full shot totals and the exact
/// same counts (fixed backend seed, deterministic sampling).
#[test]
fn sixteen_concurrent_jobs_over_parallel_backends_are_deterministic() {
    let mut provider = Provider::new();
    provider.register(Box::new(QasmSimulatorBackend::new().with_seed(77)));
    let executor = JobExecutor::with_config(
        provider,
        ExecutorConfig {
            workers: 4,
            queue_capacity: 32,
            parallel: Some(ParallelConfig {
                threads: 4,
                chunk_qubits: 2,
                fusion: true,
                simd: true,
            }),
            ..Default::default()
        },
    );
    let circuit = sampled_circuit();
    let shots = 256;
    let jobs: Vec<_> = (0..16)
        .map(|_| executor.submit(&circuit, "qasm_simulator", shots).expect("submit"))
        .collect();
    let mut all_counts = Vec::new();
    for job in &jobs {
        let counts = job.result(Duration::from_secs(120)).expect("job completes");
        assert_eq!(counts.total(), shots);
        all_counts.push(counts_vec(&counts));
    }
    for (i, counts) in all_counts.iter().enumerate() {
        assert_eq!(&all_counts[0], counts, "job {i} diverged from job 0");
    }
}
