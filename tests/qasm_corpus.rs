//! An OpenQASM 2.0 corpus: parse, execute, emit, reparse.
//!
//! Every program in the corpus must (a) parse, (b) produce the documented
//! statistics when executed, and (c) survive an emit→reparse round trip
//! with identical instruction streams.

use qukit::backend::{Backend, QasmSimulatorBackend};
use qukit_terra::qasm;

fn roundtrip(src: &str) -> qukit_terra::circuit::QuantumCircuit {
    let circ = qasm::parse(src).unwrap_or_else(|e| panic!("parse failed: {e}\n{src}"));
    let emitted = qasm::emit(&circ);
    let reparsed =
        qasm::parse(&emitted).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{emitted}"));
    assert_eq!(
        reparsed.instructions().len(),
        circ.instructions().len(),
        "round trip changed instruction count"
    );
    for (a, b) in reparsed.instructions().iter().zip(circ.instructions()) {
        assert_eq!(a.op.name(), b.op.name());
        assert_eq!(a.qubits, b.qubits);
        assert_eq!(a.clbits, b.clbits);
    }
    // Emission must be a fixpoint: once normalized, the text is stable.
    assert_eq!(qasm::emit(&reparsed), emitted, "emit is not a fixpoint of parse∘emit");
    circ
}

#[test]
fn superdense_coding() {
    let circ = roundtrip(
        r#"OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
// share a Bell pair
h q[0];
cx q[0],q[1];
// encode the message "11"
z q[0];
x q[0];
// decode
cx q[0],q[1];
h q[0];
measure q -> c;
"#,
    );
    let counts = QasmSimulatorBackend::new().with_seed(1).run(&circ, 300).unwrap();
    assert_eq!(counts.get_value(0b11), 300, "superdense coding must decode 11");
}

#[test]
fn swap_test_program() {
    // SWAP test of two identical states: ancilla always reads 0.
    let circ = roundtrip(
        r#"OPENQASM 2.0;
include "qelib1.inc";
qreg a[1];
qreg s1[1];
qreg s2[1];
creg c[1];
ry(0.7) s1[0];
ry(0.7) s2[0];
h a[0];
cswap a[0],s1[0],s2[0];
h a[0];
measure a[0] -> c[0];
"#,
    );
    let counts = QasmSimulatorBackend::new().with_seed(2).run(&circ, 500).unwrap();
    assert_eq!(counts.get_value(0), 500, "identical states: ancilla stays 0");
}

#[test]
fn user_defined_gate_hierarchy() {
    let circ = roundtrip(
        r#"OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
gate majority_flip a, b { cx a, b; h a; }
gate double(theta) a, b { rx(theta) a; rx(theta*2) b; majority_flip a, b; }
double(pi/4) q[0], q[1];
measure q -> c;
"#,
    );
    let ops = circ.count_ops();
    assert_eq!(ops["rx"], 2);
    assert_eq!(ops["cx"], 1);
    assert_eq!(ops["h"], 1);
}

#[test]
fn conditional_feedback_program() {
    let circ = roundtrip(
        r#"OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg m[1];
creg out[1];
x q[0];
measure q[0] -> m[0];
if (m==1) x q[1];
measure q[1] -> out[0];
"#,
    );
    let counts = QasmSimulatorBackend::new().with_seed(3).run(&circ, 200).unwrap();
    // out bit (clbit 1) must always be 1.
    for (outcome, count) in counts.iter() {
        if count > 0 {
            assert_eq!((outcome >> 1) & 1, 1);
        }
    }
}

#[test]
fn reset_and_reuse() {
    let circ = roundtrip(
        r#"OPENQASM 2.0;
include "qelib1.inc";
qreg q[1];
creg c[1];
x q[0];
reset q[0];
measure q[0] -> c[0];
"#,
    );
    let counts = QasmSimulatorBackend::new().with_seed(4).run(&circ, 150).unwrap();
    assert_eq!(counts.get_value(0), 150);
}

#[test]
fn expression_heavy_parameters() {
    let circ = roundtrip(
        r#"OPENQASM 2.0;
include "qelib1.inc";
qreg q[1];
rz(2*pi/3) q[0];
u3(pi/2, -pi/4, 0.25*pi) q[0];
rx(sin(pi/6)) q[0];
p(2^3/8) q[0];
"#,
    );
    use qukit_terra::gate::Gate;
    match circ.instructions()[0].as_gate() {
        Some(Gate::Rz(t)) => assert!((t - 2.0 * std::f64::consts::PI / 3.0).abs() < 1e-12),
        other => panic!("unexpected {other:?}"),
    }
    match circ.instructions()[2].as_gate() {
        Some(Gate::Rx(t)) => assert!((t - 0.5).abs() < 1e-12, "sin(pi/6) = 0.5, got {t}"),
        other => panic!("unexpected {other:?}"),
    }
    match circ.instructions()[3].as_gate() {
        Some(Gate::Phase(t)) => assert!((t - 1.0).abs() < 1e-12, "2^3/8 = 1, got {t}"),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn barrier_and_broadcast_forms() {
    let circ = roundtrip(
        r#"OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q;
barrier q[0], q[1], q[2];
measure q -> c;
"#,
    );
    assert_eq!(circ.count_ops()["h"], 3);
    assert_eq!(circ.count_ops()["barrier"], 1);
}

#[test]
fn the_spec_core_subset_without_include() {
    // U and CX are primitive: no include needed.
    let circ = roundtrip(
        r#"OPENQASM 2.0;
qreg q[2];
creg c[2];
U(pi/2, 0, pi) q[0];
CX q[0], q[1];
measure q -> c;
"#,
    );
    let counts = QasmSimulatorBackend::new().with_seed(5).run(&circ, 1000).unwrap();
    // U(pi/2, 0, pi) = H: Bell statistics.
    assert_eq!(counts.get_value(0b01) + counts.get_value(0b10), 0);
}

#[test]
fn empty_program_parses_to_empty_circuit() {
    let circ = roundtrip("OPENQASM 2.0;\n");
    assert_eq!(circ.num_qubits(), 0);
    assert_eq!(circ.size(), 0);
}

#[test]
fn comments_only_program() {
    let circ = roundtrip(
        "OPENQASM 2.0;\n// nothing here\n// but commentary\ninclude \"qelib1.inc\";\n// trailing\n",
    );
    assert_eq!(circ.size(), 0);
}

#[test]
fn maximal_register_names_survive() {
    // Long (but legal) identifiers: lowercase start, 64 chars of noise.
    let name = format!("q{}", "abcdefghij0123456789_".repeat(3));
    let src = format!(
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg {name}[2];\ncreg c[2];\n\
         h {name}[0];\ncx {name}[0],{name}[1];\nmeasure {name} -> c;\n"
    );
    let circ = roundtrip(&src);
    assert_eq!(circ.num_qubits(), 2);
    let counts = QasmSimulatorBackend::new().with_seed(9).run(&circ, 100).unwrap();
    assert_eq!(counts.get_value(0b01) + counts.get_value(0b10), 0);
}

#[test]
fn crlf_line_endings_are_accepted() {
    let src = "OPENQASM 2.0;\r\ninclude \"qelib1.inc\";\r\nqreg q[2];\r\ncreg c[2];\r\n\
               h q[0];\r\n// windows comment\r\ncx q[0],q[1];\r\nmeasure q -> c;\r\n";
    let circ = roundtrip(src);
    assert_eq!(circ.count_ops()["h"], 1);
    assert_eq!(circ.count_ops()["cx"], 1);
}

#[test]
fn include_less_primitive_program_with_conditional() {
    // The spec's primitive subset plus `if` — still no include required.
    let circ = roundtrip(
        "OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nU(pi, 0, pi) q[0];\n\
         measure q[0] -> c[0];\nif (c==1) U(pi, 0, pi) q[0];\n",
    );
    let counts = QasmSimulatorBackend::new().with_seed(10).run(&circ, 120).unwrap();
    // X, measure (reads 1), conditional X flips back — register reads 1.
    assert_eq!(counts.get_value(1), 120);
}

#[test]
fn error_diagnostics_quality() {
    // Every diagnostic should carry position and a useful message.
    let cases: &[(&str, &str)] = &[
        ("OPENQASM 2.0; qreg q[1]; h q[0];", "qelib1.inc"),
        ("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[1];\nh r[0];", "unknown quantum register"),
        ("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[1];\nrx() q[0];", "wrong parameter count"),
        ("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[1];\nrx(*) q[0];", "expected expression"),
        ("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[1];\nh q[0]", "expected ';'"),
        ("OPENQASM 1.0; qreg q[1];", "version"),
    ];
    for (src, needle) in cases {
        let err = qasm::parse(src).expect_err(src);
        let msg = err.to_string();
        assert!(msg.contains(needle), "error for {src:?} was: {msg}");
    }
}
