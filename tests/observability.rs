//! End-to-end observability check: one instrumented execution must
//! light up every layer of the stack.
//!
//! This lives in its own test binary (single `#[test]`) because it
//! toggles the process-global metrics registry; sharing a process with
//! unrelated tests would race their view of the registry.

use qukit::job::{ExecutorConfig, JobExecutor};
use qukit::provider::Provider;
use qukit::terra::circuit::QuantumCircuit;

fn ghz(n: usize) -> QuantumCircuit {
    let mut circ = QuantumCircuit::new(n);
    circ.h(0).unwrap();
    for q in 1..n {
        circ.cx(q - 1, q).unwrap();
    }
    circ
}

#[test]
fn instrumented_ghz_execution_lights_up_every_layer() {
    qukit_obs::set_enabled(true);
    qukit_obs::reset();

    // Layer 1+2: execute() on a fake device transpiles (mapping to the
    // ibmqx4 coupling graph) and simulates the 5-qubit GHZ.
    let device = qukit::backend::FakeDevice::ibmqx4().with_seed(11);
    let counts = qukit::execute::execute(&ghz(5), &device, 512).expect("ghz runs");
    assert_eq!(counts.total(), 512);

    // Layer 3: the same circuit through the job service.
    let executor = JobExecutor::with_config(
        Provider::with_defaults(),
        ExecutorConfig { workers: 1, queue_capacity: 4, ..Default::default() },
    );
    let job = executor.submit(&ghz(5), "qasm_simulator", 256).expect("submit");
    job.result(std::time::Duration::from_secs(30)).expect("job completes");
    executor.shutdown();

    // Layer 4: a DD run for the decision-diagram counters.
    let state = qukit::dd::simulator::DdSimulator::new().run(&ghz(5)).expect("dd runs");
    assert!(state.node_count() > 0);

    let snapshot = qukit_obs::registry().snapshot();
    qukit_obs::set_enabled(false);

    // Transpiler: per-pass timings and run counters are nonzero.
    assert!(
        snapshot
            .histograms
            .iter()
            .any(|(name, h)| { name.starts_with("qukit_terra_pass_seconds") && h.count > 0 }),
        "transpiler pass timings missing: {:?}",
        snapshot.histograms.keys().collect::<Vec<_>>()
    );
    let counter = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
    assert!(counter("qukit_terra_transpile_runs_total") > 0);
    assert!(counter("qukit_terra_gates_in_total") > 0);

    // Simulator: gate applications and amplitude work are nonzero.
    assert!(counter("qukit_aer_qasm_runs_total") > 0);
    assert!(counter("qukit_aer_amplitudes_touched_total") > 0);
    assert!(counter("qukit_aer_shots_total") >= 512 + 256);

    // Job service: the submission made it through the lifecycle.
    assert!(counter("qukit_core_jobs_submitted_total") > 0);
    assert!(counter("qukit_core_jobs_completed_total") > 0);
    let job_seconds = snapshot.histograms.get("qukit_core_job_seconds").expect("job latency");
    assert!(job_seconds.count > 0);

    // DD engine: unique-table traffic and node gauges are nonzero.
    assert!(counter("qukit_dd_unique_misses_total") > 0);
    assert!(counter("qukit_dd_compute_misses_total") > 0);
    assert!(snapshot.gauges.get("qukit_dd_nodes").copied().unwrap_or(0.0) > 0.0);
    // Arena telemetry: the live/peak gauges track the refcounted arena
    // (GHZ is tiny, so nothing was collected — live equals what the run
    // built and the GC counters exist but stay zero).
    let gauge = |name: &str| snapshot.gauges.get(name).copied().unwrap_or(0.0);
    assert!(gauge("qukit_dd_live_nodes") > 0.0);
    assert!(gauge("qukit_dd_peak_live_nodes") >= gauge("qukit_dd_live_nodes"));
    assert!(snapshot.counters.contains_key("qukit_dd_gc_runs_total"));
    assert!(snapshot.counters.contains_key("qukit_dd_gc_reclaimed_total"));

    // Spans were recorded and the whole snapshot round-trips as JSON.
    assert!(snapshot.trace.iter().any(|e| e.name == "transpile"));
    assert!(snapshot.trace.iter().any(|e| e.name == "dd.run"));
    let json = qukit_obs::export::to_json(&snapshot);
    qukit_obs::export::validate_snapshot_json(&json).expect("snapshot schema-valid");
    let prometheus = qukit_obs::export::prometheus(&snapshot);
    assert!(prometheus.contains("qukit_terra_transpile_runs_total"));
}
