//! Cross-crate integration tests: full pipelines from OpenQASM source
//! through transpilation to execution on every backend kind.

use qukit::backend::{Backend, DdSimulatorBackend, FakeDevice, QasmSimulatorBackend};
use qukit::execute::execute;
use qukit::provider::Provider;
use qukit_aer::noise::NoiseModel;
use qukit_aer::simulator::StatevectorSimulator;
use qukit_dd::simulator::DdSimulator;
use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::coupling::CouplingMap;
use qukit_terra::qasm;
use qukit_terra::transpiler::{satisfies_coupling, transpile, MapperKind, TranspileOptions};

#[test]
fn qasm_to_counts_pipeline() {
    // Parse a program, execute it, check the statistics.
    let circ = qasm::parse(
        r#"OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
measure q -> c;
"#,
    )
    .expect("valid program");
    let counts = execute(&circ, &QasmSimulatorBackend::new().with_seed(9), 2000).unwrap();
    assert_eq!(counts.get_value(0) + counts.get_value(0b111), 2000);
}

#[test]
fn qasm_transpile_device_pipeline() {
    // A circuit with a Toffoli (needs decomposition) and non-adjacent
    // interactions (needs mapping), from QASM to ibmqx4 execution.
    let circ = qasm::parse(
        r#"OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
ccx q[0],q[1],q[2];
measure q -> c;
"#,
    )
    .expect("valid program");
    let device = FakeDevice::ibmqx4().with_noise(NoiseModel::new()).with_seed(3);
    let counts = device.run(&circ, 1000).unwrap();
    // Ideal result: q0 uniform, ccx fires when q0=q1=1 — since q1=0 always,
    // q2 stays 0: outcomes 000 and 001 only.
    assert_eq!(counts.get_value(0b000) + counts.get_value(0b001), 1000);
}

#[test]
fn dd_and_statevector_simulators_agree_on_random_circuits() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(31);
    for _ in 0..5 {
        let n = 4;
        let mut circ = QuantumCircuit::new(n);
        for _ in 0..20 {
            match rng.gen_range(0..4) {
                0 => {
                    circ.h(rng.gen_range(0..n)).unwrap();
                }
                1 => {
                    circ.t(rng.gen_range(0..n)).unwrap();
                }
                2 => {
                    circ.rx(rng.gen::<f64>() * 3.0, rng.gen_range(0..n)).unwrap();
                }
                _ => {
                    let a = rng.gen_range(0..n);
                    let mut b = rng.gen_range(0..n);
                    while b == a {
                        b = rng.gen_range(0..n);
                    }
                    circ.cx(a, b).unwrap();
                }
            }
        }
        let sv = StatevectorSimulator::new().run(&circ).unwrap();
        let dd = DdSimulator::new().run(&circ).unwrap();
        let dd_state = dd.to_statevector();
        for (a, b) in sv.amplitudes().iter().zip(&dd_state) {
            assert!(a.approx_eq_eps(*b, 1e-8), "DD and statevector disagree");
        }
    }
}

#[test]
fn transpiled_circuit_counts_match_untranspiled() {
    // Measurement relabeling through the mapper must preserve observable
    // statistics exactly (noiseless).
    let mut circ = QuantumCircuit::with_size(4, 4);
    circ.h(0).unwrap();
    circ.cx(0, 3).unwrap();
    circ.x(1).unwrap();
    circ.cx(3, 1).unwrap();
    for q in 0..4 {
        circ.measure(q, q).unwrap();
    }
    let direct = QasmSimulatorBackend::new().with_seed(5).run(&circ, 3000).unwrap();
    let device = FakeDevice::ibmqx5().with_noise(NoiseModel::new()).with_seed(5);
    let mapped = device.run(&circ, 3000).unwrap();
    let fidelity = direct.hellinger_fidelity(&mapped);
    assert!(fidelity > 0.995, "fidelity {fidelity}");
}

#[test]
fn provider_backends_all_run_the_same_bell() {
    let provider = Provider::with_defaults();
    let mut bell = QuantumCircuit::new(2);
    bell.h(0).unwrap();
    bell.cx(0, 1).unwrap();
    for name in ["qasm_simulator", "dd_simulator", "ibmqx2", "ibmqx4", "ibmqx5"] {
        let backend = provider.get_backend(name).unwrap();
        let counts = execute(&bell, backend, 400).unwrap();
        assert_eq!(counts.total(), 400, "{name}");
        // Even noisy devices keep the correlated outcomes dominant.
        let correlated: usize = counts
            .iter()
            .filter(|(v, _)| {
                let b0 = v & 1;
                let b1 = (v >> 1) & 1;
                b0 == b1
            })
            .map(|(_, c)| c)
            .sum();
        assert!(correlated as f64 / 400.0 > 0.8, "{name}: correlation too low");
    }
}

#[test]
fn teleportation_on_constrained_device() {
    // The teleport circuit uses conditionals and mid-circuit measurement;
    // map it to a line topology and check it still works (noiseless).
    let circ =
        qukit_aqua::teleportation::teleport_circuit(&[(qukit_terra::gate::Gate::X, 0)]).unwrap();
    let options = TranspileOptions {
        coupling_map: Some(CouplingMap::line(3)),
        mapper: MapperKind::Basic,
        optimization_level: 0,
        ..TranspileOptions::default()
    };
    let mapped = transpile(&circ, &options).unwrap();
    assert!(satisfies_coupling(&mapped.circuit, &CouplingMap::line(3)));
    let counts =
        qukit_aer::simulator::QasmSimulator::new().with_seed(6).run(&mapped.circuit, 400).unwrap();
    // Output clbit (bit 2) must always read 1.
    for (outcome, count) in counts.iter() {
        if count > 0 {
            assert_eq!((outcome >> 2) & 1, 1, "teleported |1⟩ misread in {outcome:b}");
        }
    }
}

#[test]
fn tomography_of_device_output_detects_noise() {
    // Run state tomography twice: against the ideal backend and against a
    // noisy model; ideal fidelity must be higher.
    let mut prep = QuantumCircuit::new(2);
    prep.h(0).unwrap();
    prep.cx(0, 1).unwrap();
    let target = qukit_terra::reference::statevector(&prep).unwrap();

    let ideal_rho = qukit_ignis::tomography::state_tomography(&prep, 2000, 8, None).unwrap();
    let noise = NoiseModel::depolarizing(0.01, 0.05, 0.02);
    let noisy_rho =
        qukit_ignis::tomography::state_tomography(&prep, 2000, 8, Some(&noise)).unwrap();

    let f_ideal = qukit_ignis::tomography::fidelity_with_pure(&ideal_rho, &target);
    let f_noisy = qukit_ignis::tomography::fidelity_with_pure(&noisy_rho, &target);
    assert!(f_ideal > 0.95, "ideal fidelity {f_ideal}");
    assert!(f_noisy < f_ideal, "noise must reduce fidelity: {f_noisy} vs {f_ideal}");
}

#[test]
fn dd_backend_handles_partial_measurement() {
    let mut circ = QuantumCircuit::with_size(3, 1);
    circ.x(2).unwrap();
    circ.h(0).unwrap();
    circ.measure(2, 0).unwrap();
    let counts = DdSimulatorBackend::new().with_seed(4).run(&circ, 300).unwrap();
    assert_eq!(counts.get_value(1), 300, "only the measured qubit reports");
}

#[test]
fn full_stack_qasm_emit_reparse_execute() {
    // Build programmatically, emit QASM, reparse, execute both; equal
    // statistics with the same seed.
    let mut circ = QuantumCircuit::with_size(3, 3);
    circ.h(0).unwrap();
    circ.cp(std::f64::consts::FRAC_PI_2, 0, 1).unwrap();
    circ.ccx(0, 1, 2).unwrap();
    for q in 0..3 {
        circ.measure(q, q).unwrap();
    }
    let text = qasm::emit(&circ);
    let reparsed = qasm::parse(&text).unwrap();
    let backend = QasmSimulatorBackend::new().with_seed(77);
    let a = backend.run(&circ, 500).unwrap();
    let b = backend.run(&reparsed, 500).unwrap();
    assert_eq!(a, b);
}
