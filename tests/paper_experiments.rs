//! One test per paper artifact — the executable form of EXPERIMENTS.md.
//!
//! Each test asserts the *shape* of the corresponding figure or claim of
//! "IBM's Qiskit Tool Chain" (DATE 2019); the benchmarks in
//! `crates/bench` regenerate the quantitative tables.

use qukit_terra::circuit::{fig1_circuit, QuantumCircuit};
use qukit_terra::coupling::CouplingMap;
use qukit_terra::qasm;
use qukit_terra::transpiler::{satisfies_coupling, transpile, MapperKind, TranspileOptions};

/// The verbatim OpenQASM listing of the paper's Fig. 1a.
const FIG1_QASM: &str = r#"OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[2];
cx q[2],q[3];
cx q[0],q[1];
h q[1];
cx q[1],q[2];
t q[0];
cx q[2],q[0];
cx q[0],q[1];
"#;

#[test]
fn fig1_qasm_parses_to_the_builder_circuit_and_round_trips() {
    let parsed = qasm::parse(FIG1_QASM).expect("the paper's listing is valid OpenQASM 2.0");
    let built = fig1_circuit();
    assert_eq!(parsed.instructions(), built.instructions());
    // Emission reproduces the exact listing.
    assert_eq!(qasm::emit(&built), FIG1_QASM);
    // And the diagram has the right shape (Fig. 1b: 4 wires, depth 5).
    assert_eq!(built.depth(), 5);
    let art = qukit_terra::draw::draw(&built);
    assert_eq!(art.lines().count(), 4);
}

#[test]
fn fig2_qx4_coupling_map_facts() {
    let qx4 = CouplingMap::ibm_qx4();
    // Fig. 2: exactly the six arrows, and the specific constraint the
    // paper's Example discusses — q2 may control q0/q1/q4, q3 controls
    // q2 and q4, q1 controls q0.
    let expected = [(1, 0), (2, 0), (2, 1), (3, 2), (3, 4), (2, 4)];
    assert_eq!(qx4.num_edges(), expected.len());
    for (c, t) in expected {
        assert!(qx4.has_edge(c, t), "Q{c}->Q{t} missing");
    }
    // "the QX4 architecture prohibits e.g. the interaction between q2 as a
    // control and q3 as a target in the second gate (only the opposite is
    // allowed)".
    assert!(!qx4.has_edge(2, 3));
    assert!(qx4.has_edge(3, 2));
    // "or between q0 as a control and q1 as a target in the third gate".
    assert!(!qx4.has_edge(0, 1));
    assert!(qx4.has_edge(1, 0));
}

#[test]
fn fig3_dd_is_smaller_than_dense_matrix() {
    // The 2^n x 2^n matrix of a structured 3-qubit computation vs its DD.
    let mut circ = QuantumCircuit::new(3);
    circ.h(0).unwrap();
    circ.cx(0, 1).unwrap();
    circ.cx(1, 2).unwrap();
    let (package, edge) = qukit_dd::simulator::DdSimulator::new().build_unitary(&circ).unwrap();
    let dense_entries = 8 * 8;
    let dd_nodes = package.matrix_nodes(edge);
    assert!(
        dd_nodes < dense_entries,
        "DD ({dd_nodes} nodes) must beat the dense matrix ({dense_entries} entries)"
    );
    // And the DD still represents the same unitary exactly.
    let reconstructed = package.to_matrix(edge);
    let expected = qukit_terra::reference::unitary(&circ).unwrap();
    assert!(reconstructed.approx_eq_eps(&expected, 1e-9));
}

#[test]
fn fig3_scaling_dd_linear_vs_dense_exponential() {
    // GHZ state: dense 2^n amplitudes vs 2n-1 DD nodes.
    for n in [6usize, 10, 14] {
        let circ = qukit_aqua::circuits::ghz_circuit(n);
        let state = qukit_dd::simulator::DdSimulator::new().run(&circ).unwrap();
        assert_eq!(state.node_count(), 2 * n - 1, "n = {n}");
        assert!(state.node_count() < (1 << n), "compression must win at n = {n}");
    }
}

#[test]
fn fig4a_naive_mapping_has_the_paper_structure() {
    // The naive flow (basic mapper, no optimization) on Fig. 1 / QX4:
    // direction fixes appear as the H-conjugations of Fig. 4a.
    let qx4 = CouplingMap::ibm_qx4();
    let options = TranspileOptions {
        coupling_map: Some(qx4.clone()),
        mapper: MapperKind::Basic,
        optimization_level: 0,
        ..TranspileOptions::default()
    };
    let result = transpile(&fig1_circuit(), &options).unwrap();
    assert!(satisfies_coupling(&result.circuit, &qx4));
    let ops = result.circuit.count_ops();
    // The original 5 CNOTs survive (plus any SWAP expansion), and the
    // direction fixes add Hadamards: the naive flow is strictly larger
    // than the input.
    assert!(ops["cx"] >= 5);
    assert!(ops.get("h").copied().unwrap_or(0) > 2, "H-conjugation expected");
    assert!(result.circuit.num_gates() > fig1_circuit().num_gates());
}

#[test]
fn fig4b_optimized_flow_beats_naive() {
    let qx4 = CouplingMap::ibm_qx4();
    let naive = TranspileOptions {
        coupling_map: Some(qx4.clone()),
        mapper: MapperKind::Basic,
        optimization_level: 0,
        ..TranspileOptions::default()
    };
    let smart = TranspileOptions {
        coupling_map: Some(qx4.clone()),
        mapper: MapperKind::AStar,
        optimization_level: 3,
        ..TranspileOptions::default()
    };
    let fig4a = transpile(&fig1_circuit(), &naive).unwrap();
    let fig4b = transpile(&fig1_circuit(), &smart).unwrap();
    assert!(satisfies_coupling(&fig4b.circuit, &qx4));
    assert!(
        fig4b.circuit.num_gates() < fig4a.circuit.num_gates(),
        "optimized {} must beat naive {}",
        fig4b.circuit.num_gates(),
        fig4a.circuit.num_gates()
    );
    assert!(fig4b.num_swaps <= fig4a.num_swaps);
}

#[test]
fn aer_claim_noise_monotonically_degrades_results() {
    // Section III (Aer): noisy simulation deteriorates results; stronger
    // noise deteriorates them more.
    let mut ghz = QuantumCircuit::with_size(3, 3);
    ghz.h(0).unwrap();
    ghz.cx(0, 1).unwrap();
    ghz.cx(1, 2).unwrap();
    for q in 0..3 {
        ghz.measure(q, q).unwrap();
    }
    let mut successes = Vec::new();
    for p in [0.0, 0.02, 0.08, 0.2] {
        let noise = qukit_aer::noise::NoiseModel::depolarizing(p / 10.0, p, 0.0);
        let counts = qukit_aer::simulator::QasmSimulator::new()
            .with_seed(17)
            .with_noise(noise)
            .run(&ghz, 4000)
            .unwrap();
        successes.push(counts.probability(0) + counts.probability(0b111));
    }
    assert!((successes[0] - 1.0).abs() < 1e-9, "clean run must be exact");
    for w in successes.windows(2) {
        assert!(w[1] < w[0] + 0.02, "success must not grow with noise: {successes:?}");
    }
    assert!(successes[3] < 0.85, "strong noise must visibly hurt: {successes:?}");
}

#[test]
fn aqua_claim_vqe_reaches_chemical_accuracy_on_h2() {
    // Section III (Aqua): VQE as the flagship application.
    let h2 = qukit_aqua::operator::h2_hamiltonian();
    let exact = h2.min_eigenvalue();
    let ansatz = qukit_aqua::vqe::HardwareEfficientAnsatz::new(2, 1);
    let vqe = qukit_aqua::vqe::Vqe::new(&h2, ansatz);
    let optimizer = qukit_aqua::optimizers::NelderMead {
        max_evaluations: 4000,
        ..qukit_aqua::optimizers::NelderMead::new()
    };
    let result = vqe.run(&optimizer, &vec![0.1; ansatz.num_parameters()]).unwrap();
    // Chemical accuracy: 1.6 mHa.
    assert!((result.energy - exact).abs() < 1.6e-3, "VQE {} vs exact {exact}", result.energy);
}

#[test]
fn ignis_claim_rb_decay_reflects_injected_noise() {
    // Section III (Ignis): randomized benchmarking characterizes noise.
    let mut noise = qukit_aer::noise::NoiseModel::new();
    for name in ["h", "s"] {
        noise.add_all_qubit_error(name, qukit_aer::noise::QuantumError::depolarizing(0.03, 1));
    }
    let config = qukit_ignis::rb::RbConfig {
        lengths: vec![1, 2, 4, 8, 16, 32],
        samples_per_length: 10,
        shots: 300,
        seed: 23,
    };
    let result = qukit_ignis::rb::run_rb(&config, &noise).unwrap();
    assert!(result.alpha < 1.0 && result.alpha > 0.7, "alpha {}", result.alpha);
    assert!(result.error_per_clifford > 0.0);
    // Ideal backend: no decay.
    let ideal = qukit_ignis::rb::run_rb(&config, &qukit_aer::noise::NoiseModel::new()).unwrap();
    for &(_, p) in &ideal.curve {
        assert_eq!(p, 1.0, "ideal RB must not decay");
    }
}

#[test]
fn developer_claim_dd_and_array_simulators_agree() {
    // Section V-A: the DD simulator is a drop-in replacement — results
    // must agree with the array-based simulator.
    let circ = fig1_circuit();
    let sv = qukit_aer::simulator::StatevectorSimulator::new().run(&circ).unwrap();
    let dd = qukit_dd::simulator::DdSimulator::new().run(&circ).unwrap();
    for (idx, amp) in sv.amplitudes().iter().enumerate() {
        assert!(dd.amplitude(idx).approx_eq_eps(*amp, 1e-9), "index {idx}");
    }
}
