//! Replays checked-in fuzzer reproducers against the full oracle suite.
//!
//! Every `.qasm` file in `tests/repros/` is a witness the conformance
//! harness once shrank from a failing random circuit. They are kept
//! checked in as permanent regressions: each must now pass *all* oracles
//! (differential across every simulator, inverse, QASM roundtrip, and
//! mapped-transpile equivalence).
//!
//! The current corpus stems from one real bug: the layout-aware DD
//! equivalence check originally built the mapped and original operators
//! as two separate accumulation chains and compared canonical nodes —
//! which is sensitive to floating-point weight bucketing when arbitrary
//! rotation angles are involved. The fuzzer shrank three distinct
//! false-negative witnesses (`rzz`, `p`+`crx`, `sxdg`+`cp`+`ccx`) before
//! the check was restructured into a single product chain.

use std::path::PathBuf;

fn repro_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/repros")
}

#[test]
fn every_checked_in_reproducer_passes_all_oracles() {
    let suite = qukit_conformance::OracleSuite::all_with_defaults();
    let mut replayed = 0;
    let mut entries: Vec<_> = std::fs::read_dir(repro_dir())
        .expect("tests/repros directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "qasm"))
        .collect();
    entries.sort();
    for path in entries {
        let source = std::fs::read_to_string(&path).expect("readable reproducer");
        let circuit = qukit_terra::qasm::parse(&source)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        if let Some(mismatch) = suite.check(&circuit) {
            panic!("reproducer {} regressed: {mismatch}", path.display());
        }
        replayed += 1;
    }
    assert!(replayed >= 3, "expected at least 3 reproducers, found {replayed}");
}

#[test]
fn reproducers_stay_minimal() {
    // Shrunk witnesses must stay small — if someone checks in a raw
    // failing circuit the shrinker should be run on it first.
    for entry in std::fs::read_dir(repro_dir()).expect("tests/repros directory exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_none_or(|ext| ext != "qasm") {
            continue;
        }
        let source = std::fs::read_to_string(&path).expect("readable reproducer");
        let circuit = qukit_terra::qasm::parse(&source).expect("reproducer parses");
        assert!(
            circuit.num_gates() <= 5,
            "{} has {} gates — shrink it before checking it in",
            path.display(),
            circuit.num_gates()
        );
    }
}
