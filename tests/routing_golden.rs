//! Golden routing tests: committed SWAP and depth bounds for benchmark
//! circuits on the standard topologies, for both production routers
//! (SABRE and A*).
//!
//! The bounds are the measured results of the current routers plus zero
//! slack — they pin routing quality so a heuristic regression (more SWAPs
//! or deeper circuits on these well-understood cases) fails loudly. The
//! semantic correctness of every mapped circuit is covered separately by
//! the conformance oracle and the mapper equivalence tests; here we only
//! check coupling validity and cost.

use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::coupling::CouplingMap;
use qukit_terra::gate::Gate;
use qukit_terra::transpiler::{satisfies_coupling, transpile, MapperKind, TranspileOptions};

/// GHZ-8: one Hadamard and a CX fan-out from qubit 0 — worst case for a
/// star interaction pattern on sparse topologies.
fn ghz8() -> QuantumCircuit {
    let mut circ = QuantumCircuit::new(8);
    circ.h(0).unwrap();
    for t in 1..8 {
        circ.cx(0, t).unwrap();
    }
    circ
}

/// QFT-6 with the final reversal swaps — all-to-all controlled-phase
/// interactions, the classic routing stress test.
fn qft6() -> QuantumCircuit {
    let n = 6;
    let mut circ = QuantumCircuit::new(n);
    for i in 0..n {
        circ.h(i).unwrap();
        for j in (i + 1)..n {
            let lambda = std::f64::consts::PI / f64::from(1u32 << (j - i));
            circ.cp(lambda, j, i).unwrap();
        }
    }
    for i in 0..n / 2 {
        circ.swap(i, n - 1 - i).unwrap();
    }
    circ
}

/// Quantum teleportation with mid-circuit measurement and classically
/// conditioned corrections — routing must respect the measure barriers.
fn teleport() -> QuantumCircuit {
    let mut circ = QuantumCircuit::with_size(3, 2);
    circ.ry(0.42, 0).unwrap(); // the state to teleport
    circ.h(1).unwrap();
    circ.cx(1, 2).unwrap();
    circ.cx(0, 1).unwrap();
    circ.h(0).unwrap();
    circ.measure(0, 0).unwrap();
    circ.measure(1, 1).unwrap();
    circ.append_conditional(Gate::X, &[2], "c", 2).unwrap();
    circ.append_conditional(Gate::Z, &[2], "c", 1).unwrap();
    circ
}

fn route(circ: &QuantumCircuit, map: CouplingMap, router: MapperKind) -> (usize, usize) {
    let mut opts = TranspileOptions::for_device(map.clone());
    opts.optimization_level = 1;
    opts.mapper = router;
    let result = transpile(circ, &opts).unwrap();
    assert!(
        satisfies_coupling(&result.circuit, &map),
        "{router:?} on {} violates coupling",
        map.name()
    );
    (result.num_swaps, result.circuit.depth())
}

struct Golden {
    circuit: &'static str,
    topology: &'static str,
    router: MapperKind,
    max_swaps: usize,
    max_depth: usize,
}

fn check(golden: &[Golden], build: fn() -> QuantumCircuit, maps: &[(&str, CouplingMap)]) {
    let circ = build();
    for g in golden {
        let map = &maps.iter().find(|(name, _)| *name == g.topology).expect("topology").1;
        let (swaps, depth) = route(&circ, map.clone(), g.router);
        assert!(
            swaps <= g.max_swaps,
            "{} on {} with {:?}: {} swaps > bound {}",
            g.circuit,
            g.topology,
            g.router,
            swaps,
            g.max_swaps
        );
        assert!(
            depth <= g.max_depth,
            "{} on {} with {:?}: depth {} > bound {}",
            g.circuit,
            g.topology,
            g.router,
            depth,
            g.max_depth
        );
    }
}

fn topologies(n: usize) -> Vec<(&'static str, CouplingMap)> {
    vec![
        ("line", CouplingMap::line(n)),
        ("ring", CouplingMap::ring(n)),
        ("grid", CouplingMap::grid(3, 3)),
        ("heavy_hex", CouplingMap::heavy_hex()),
    ]
}

#[test]
#[ignore = "probe: prints the measured golden numbers"]
fn probe_golden_numbers() {
    for (cname, build) in
        [("ghz8", ghz8 as fn() -> QuantumCircuit), ("qft6", qft6), ("teleport", teleport)]
    {
        let n = build().num_qubits();
        for (tname, map) in topologies(n) {
            for router in [MapperKind::Sabre, MapperKind::AStar] {
                let (swaps, depth) = route(&build(), map.clone(), router);
                println!("{cname:10} {tname:10} {router:?}: swaps={swaps} depth={depth}");
            }
        }
    }
    panic!("probe only");
}

#[test]
fn ghz8_golden_bounds() {
    use MapperKind::{AStar, Sabre};
    let golden = [
        Golden { circuit: "ghz8", topology: "line", router: Sabre, max_swaps: 5, max_depth: 13 },
        Golden { circuit: "ghz8", topology: "line", router: AStar, max_swaps: 9, max_depth: 29 },
        Golden { circuit: "ghz8", topology: "ring", router: Sabre, max_swaps: 6, max_depth: 23 },
        Golden { circuit: "ghz8", topology: "ring", router: AStar, max_swaps: 9, max_depth: 29 },
        Golden { circuit: "ghz8", topology: "grid", router: Sabre, max_swaps: 2, max_depth: 14 },
        Golden { circuit: "ghz8", topology: "grid", router: AStar, max_swaps: 6, max_depth: 23 },
        Golden {
            circuit: "ghz8",
            topology: "heavy_hex",
            router: Sabre,
            max_swaps: 6,
            max_depth: 22,
        },
        Golden {
            circuit: "ghz8",
            topology: "heavy_hex",
            router: AStar,
            max_swaps: 11,
            max_depth: 26,
        },
    ];
    check(&golden, ghz8, &topologies(8));
}

#[test]
fn qft6_golden_bounds() {
    use MapperKind::{AStar, Sabre};
    let golden = [
        Golden { circuit: "qft6", topology: "line", router: Sabre, max_swaps: 18, max_depth: 98 },
        Golden { circuit: "qft6", topology: "line", router: AStar, max_swaps: 21, max_depth: 102 },
        Golden { circuit: "qft6", topology: "ring", router: Sabre, max_swaps: 10, max_depth: 61 },
        Golden { circuit: "qft6", topology: "ring", router: AStar, max_swaps: 13, max_depth: 74 },
        Golden { circuit: "qft6", topology: "grid", router: Sabre, max_swaps: 7, max_depth: 60 },
        Golden { circuit: "qft6", topology: "grid", router: AStar, max_swaps: 11, max_depth: 74 },
        Golden {
            circuit: "qft6",
            topology: "heavy_hex",
            router: Sabre,
            max_swaps: 11,
            max_depth: 76,
        },
        Golden {
            circuit: "qft6",
            topology: "heavy_hex",
            router: AStar,
            max_swaps: 25,
            max_depth: 103,
        },
    ];
    check(&golden, qft6, &topologies(6));
}

#[test]
fn teleport_golden_bounds() {
    use MapperKind::{AStar, Sabre};
    let golden = [
        Golden { circuit: "teleport", topology: "line", router: Sabre, max_swaps: 0, max_depth: 7 },
        Golden { circuit: "teleport", topology: "line", router: AStar, max_swaps: 0, max_depth: 7 },
        Golden { circuit: "teleport", topology: "ring", router: Sabre, max_swaps: 0, max_depth: 7 },
        Golden { circuit: "teleport", topology: "ring", router: AStar, max_swaps: 0, max_depth: 7 },
        Golden { circuit: "teleport", topology: "grid", router: Sabre, max_swaps: 0, max_depth: 7 },
        Golden { circuit: "teleport", topology: "grid", router: AStar, max_swaps: 0, max_depth: 7 },
        Golden {
            circuit: "teleport",
            topology: "heavy_hex",
            router: Sabre,
            max_swaps: 0,
            max_depth: 7,
        },
        Golden {
            circuit: "teleport",
            topology: "heavy_hex",
            router: AStar,
            max_swaps: 0,
            max_depth: 7,
        },
    ];
    check(&golden, teleport, &topologies(3));
}

/// The headline claim for the new router: on the 2D and heavy-hex
/// topologies (where lookahead quality matters most), SABRE's
/// bidirectional layout refinement never loses to per-layer A* search.
#[test]
fn sabre_beats_or_ties_astar_on_grid_and_heavy_hex() {
    for (name, build) in
        [("ghz8", ghz8 as fn() -> QuantumCircuit), ("qft6", qft6), ("teleport", teleport)]
    {
        for map in [CouplingMap::grid(3, 3), CouplingMap::heavy_hex()] {
            let circ = build();
            let (sabre, _) = route(&circ, map.clone(), MapperKind::Sabre);
            let (astar, _) = route(&circ, map.clone(), MapperKind::AStar);
            assert!(
                sabre <= astar,
                "{name} on {}: SABRE used {sabre} swaps, A* used {astar}",
                map.name()
            );
        }
    }
}
