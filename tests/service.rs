//! Execution-service integration tests: crash recovery from the
//! write-ahead journal, admission control, idempotent resubmission,
//! and the result cache — the robustness contract of the multi-tenant
//! job service (the paper's Section II-B queued cloud access, made
//! crash-safe).

use qukit::fault::{FaultInjectingBackend, FaultMode};
use qukit::job::{ExecutorConfig, JobExecutor, JobStatus, SubmitOptions};
use qukit::journal::{self, JournalRecord};
use qukit::provider::Provider;
use qukit::retry::RetryPolicy;
use qukit::{CacheConfig, Priority, QasmSimulatorBackend, QuantumCircuit, TenantConfig};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;

fn bell() -> QuantumCircuit {
    let mut circ = QuantumCircuit::new(2);
    circ.h(0).unwrap();
    circ.cx(0, 1).unwrap();
    circ
}

fn ghz(n: usize) -> QuantumCircuit {
    let mut circ = QuantumCircuit::new(n);
    circ.h(0).unwrap();
    for q in 1..n {
        circ.cx(0, q).unwrap();
    }
    circ
}

/// A self-cleaning temp directory for journal tests.
struct TempDir {
    path: PathBuf,
}

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "qukit_service_test_{tag}_{}_{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .as_nanos()
        ));
        Self { path }
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

fn seeded_provider(seed: u64) -> Provider {
    let mut provider = Provider::new();
    provider.register(Box::new(QasmSimulatorBackend::new().with_seed(seed)));
    provider
}

/// A provider whose backend stalls every call, keeping jobs in flight
/// long enough to crash mid-execution deterministically.
fn slow_provider(stall: Duration) -> Provider {
    let mut provider = Provider::new();
    provider.register(Box::new(FaultInjectingBackend::new(
        Box::new(QasmSimulatorBackend::new().with_seed(5)),
        FaultMode::Hang(stall),
    )));
    provider
}

/// The core crash-recovery invariant: kill the executor mid-flight,
/// rebuild from the journal, and every submitted job ends terminal
/// exactly once — no job lost, none run twice.
#[test]
fn crash_midflight_recovers_every_job_exactly_once() {
    let dir = TempDir::new("crash");
    let total = 6usize;
    let mut submitted_ids = Vec::new();

    // Phase 1: submit, let some finish, crash with the rest in flight.
    {
        let executor = JobExecutor::try_with_config(
            slow_provider(Duration::from_millis(40)),
            ExecutorConfig {
                workers: 1,
                queue_capacity: 64,
                retry: RetryPolicy::none(),
                journal_dir: Some(dir.path.clone()),
                ..Default::default()
            },
        )
        .expect("journal opens");
        let mut jobs = Vec::new();
        for i in 0..total {
            let job = executor
                .submit_with(
                    &bell(),
                    "qasm_simulator",
                    64,
                    &SubmitOptions {
                        idempotency_key: Some(format!("job-{i}")),
                        ..SubmitOptions::default()
                    },
                )
                .expect("accepted");
            submitted_ids.push(job.id());
            jobs.push(job);
        }
        // Let the single worker finish at least one job, then crash
        // while the rest are queued or running.
        jobs[0].result(Duration::from_secs(30)).expect("first job completes");
        executor.crash();
    }

    // Phase 2: rebuild from the same journal directory.
    let executor = JobExecutor::try_with_config(
        seeded_provider(5),
        ExecutorConfig {
            workers: 2,
            queue_capacity: 64,
            retry: RetryPolicy::none(),
            journal_dir: Some(dir.path.clone()),
            ..Default::default()
        },
    )
    .expect("journal replays");
    let recovery = *executor.recovery().expect("journal configured");
    assert_eq!(recovery.corrupt_dropped, 0, "clean crash leaves no torn tail here");
    assert!(recovery.recovered_terminal >= 1, "the completed job must be recovered, not re-run");
    assert_eq!(
        recovery.replayed + recovery.recovered_terminal,
        total,
        "every journaled job is either re-enqueued or already terminal"
    );

    // Every submitted job is visible after recovery and reaches a
    // terminal state exactly once.
    assert_eq!(executor.recovered_jobs().len(), total);
    for job in executor.recovered_jobs() {
        let counts = job.result(Duration::from_secs(30)).expect("recovered job completes");
        assert_eq!(counts.total(), 64);
        assert_eq!(job.status(), JobStatus::Done);
    }

    // Idempotent resubmission after the restart: the key pins the
    // original job, no duplicate work is created.
    let again = executor
        .submit_with(
            &bell(),
            "qasm_simulator",
            64,
            &SubmitOptions {
                idempotency_key: Some("job-0".to_owned()),
                ..SubmitOptions::default()
            },
        )
        .expect("dedup returns the original");
    assert!(submitted_ids.contains(&again.id()), "key must map back to a recovered job");
    executor.shutdown();

    // Ground truth from the journal itself: exactly one terminal record
    // per submitted job, and exactly one Submitted record each (the
    // recovery run must not have re-journaled recovered jobs).
    let log = journal::replay(&dir.path).expect("journal readable");
    let mut submitted_records: BTreeMap<u64, usize> = BTreeMap::new();
    let mut terminal_records: BTreeMap<u64, usize> = BTreeMap::new();
    for record in &log.records {
        match record {
            JournalRecord::Submitted { job_id, .. } => {
                *submitted_records.entry(*job_id).or_default() += 1
            }
            JournalRecord::Terminal { job_id, .. } => {
                *terminal_records.entry(*job_id).or_default() += 1
            }
        }
    }
    for id in &submitted_ids {
        assert_eq!(submitted_records.get(id), Some(&1), "job {id} submitted exactly once");
        assert_eq!(terminal_records.get(id), Some(&1), "job {id} terminal exactly once");
    }
}

/// Restarting over a journal whose jobs all finished recovers their
/// results without re-running anything (the scheduler stays empty).
#[test]
fn completed_journal_recovers_results_without_rerunning() {
    let dir = TempDir::new("terminal");
    {
        let executor = JobExecutor::try_with_config(
            seeded_provider(11),
            ExecutorConfig {
                workers: 1,
                journal_dir: Some(dir.path.clone()),
                ..Default::default()
            },
        )
        .expect("journal opens");
        let job = executor.submit(&ghz(3), "qasm_simulator", 128).expect("accepted");
        job.result(Duration::from_secs(30)).expect("completes");
        executor.shutdown();
    }
    // Rebuild over a provider with a *different* seed: identical counts
    // prove the result came from the journal, not a re-simulation.
    let executor = JobExecutor::try_with_config(
        seeded_provider(999),
        ExecutorConfig { workers: 1, journal_dir: Some(dir.path.clone()), ..Default::default() },
    )
    .expect("journal replays");
    let recovery = *executor.recovery().expect("journal configured");
    assert_eq!(recovery.replayed, 0);
    assert_eq!(recovery.recovered_terminal, 1);
    let job = &executor.recovered_jobs()[0];
    assert_eq!(job.status(), JobStatus::Done);
    let counts = job.result(Duration::from_millis(10)).expect("already terminal");
    assert_eq!(counts.total(), 128);
    executor.shutdown();
}

/// Per-tenant admission control: a tenant over its pending cap gets a
/// typed `Rejected` job back, other tenants are unaffected, and shed
/// submissions never resurrect through the journal.
#[test]
fn admission_control_sheds_over_cap_and_never_replays_shed_jobs() {
    let dir = TempDir::new("shed");
    let shed_ids;
    {
        let executor = JobExecutor::try_with_config(
            slow_provider(Duration::from_millis(60)),
            ExecutorConfig {
                workers: 1,
                queue_capacity: 64,
                retry: RetryPolicy::none(),
                journal_dir: Some(dir.path.clone()),
                ..Default::default()
            },
        )
        .expect("journal opens");
        let bounded = executor.session_with("bounded", TenantConfig::default().with_max_pending(2));
        let mut rejected = Vec::new();
        let mut accepted = Vec::new();
        for _ in 0..5 {
            let job = bounded.submit(&bell(), "qasm_simulator", 32).expect("typed, not Err");
            if job.status() == JobStatus::Rejected {
                rejected.push(job);
            } else {
                accepted.push(job);
            }
        }
        assert!(!rejected.is_empty(), "5 submissions against a cap of 2 must shed");
        assert!(accepted.len() >= 2, "the cap admits up to its depth");
        for job in &rejected {
            assert_eq!(job.tenant(), "bounded");
            let err = job.result(Duration::from_millis(10)).expect_err("rejected yields no counts");
            assert!(err.to_string().contains("rejected"), "{err}");
        }
        // An unbounded sibling tenant is not affected by the shed.
        let other = executor.session("roomy");
        let ok = other.submit(&bell(), "qasm_simulator", 32).expect("accepted");
        assert_ne!(ok.status(), JobStatus::Rejected);
        shed_ids = rejected.iter().map(|j| j.id()).collect::<Vec<_>>();
        executor.shutdown();
    }
    // Shed jobs must not come back from the dead on recovery.
    let executor = JobExecutor::try_with_config(
        seeded_provider(5),
        ExecutorConfig { workers: 1, journal_dir: Some(dir.path.clone()), ..Default::default() },
    )
    .expect("journal replays");
    assert_eq!(executor.recovery().expect("configured").replayed, 0);
    for job in executor.recovered_jobs() {
        if shed_ids.contains(&job.id()) {
            assert_eq!(job.status(), JobStatus::Rejected, "shed outcome is pinned by the journal");
        }
    }
    executor.shutdown();
}

/// Priorities are honored within a tenant: with the worker pinned, a
/// high-priority submission overtakes earlier low-priority ones.
#[test]
fn high_priority_overtakes_low_within_a_tenant() {
    let executor = JobExecutor::with_config(
        slow_provider(Duration::from_millis(50)),
        ExecutorConfig {
            workers: 1,
            queue_capacity: 16,
            retry: RetryPolicy::none(),
            ..Default::default()
        },
    );
    let session = executor.session("t");
    // Pin the worker so subsequent submissions queue deterministically.
    let pin = session.submit(&bell(), "qasm_simulator", 16).expect("accepted");
    while pin.status() == JobStatus::Queued {
        std::thread::sleep(Duration::from_millis(1));
    }
    let low =
        session.submit_with(&bell(), "qasm_simulator", 16, Priority::Low, None).expect("accepted");
    let high =
        session.submit_with(&bell(), "qasm_simulator", 16, Priority::High, None).expect("accepted");
    high.result(Duration::from_secs(30)).expect("high completes");
    // Under FIFO order low (submitted first, ~50ms stall) would already
    // be Done by the time high finishes; under priority order it is
    // still waiting or just starting.
    assert_ne!(
        low.status(),
        JobStatus::Done,
        "the later high-priority job must run before the earlier low one"
    );
    low.result(Duration::from_secs(30)).expect("low completes eventually");
    executor.shutdown();
}

/// The result cache serves repeated payloads by re-sampling: same
/// total shots, no second simulation, and the flag is observable.
#[test]
fn repeated_payloads_hit_the_result_cache() {
    let executor = JobExecutor::with_config(
        seeded_provider(31),
        ExecutorConfig { workers: 1, cache: Some(CacheConfig::default()), ..Default::default() },
    );
    let first = executor.submit(&ghz(4), "qasm_simulator", 256).expect("accepted");
    let first_counts = first.result(Duration::from_secs(30)).expect("completes");
    assert!(!first.served_from_cache());

    let second = executor.submit(&ghz(4), "qasm_simulator", 256).expect("accepted");
    let second_counts = second.result(Duration::from_secs(30)).expect("completes");
    assert!(second.served_from_cache(), "identical payload must be served from cache");
    assert_eq!(second_counts.total(), 256);
    // GHZ counts concentrate on |0000> and |1111>; the re-sampled
    // distribution must respect the cached support.
    for (outcome, _) in second_counts.iter() {
        assert!(
            first_counts.iter().any(|(o, _)| o == outcome),
            "re-sampled outcome {outcome:b} must come from the cached distribution"
        );
    }

    // A different payload misses.
    let third = executor.submit(&ghz(5), "qasm_simulator", 256).expect("accepted");
    third.result(Duration::from_secs(30)).expect("completes");
    assert!(!third.served_from_cache());
    executor.shutdown();
}

/// `Job::result` distinguishes "the wait timed out" from "the job
/// failed": a deadline elapsing on a still-running job is a typed,
/// retryable-by-waiting-longer condition.
#[test]
fn wait_deadline_is_a_typed_timeout_not_a_failure() {
    let executor = JobExecutor::with_config(
        slow_provider(Duration::from_millis(120)),
        ExecutorConfig {
            workers: 1,
            queue_capacity: 8,
            retry: RetryPolicy::none(),
            ..Default::default()
        },
    );
    let job = executor.submit(&bell(), "qasm_simulator", 16).expect("accepted");
    let err = job.result(Duration::from_millis(5)).expect_err("deadline too short");
    assert!(err.is_wait_timeout(), "typed wait timeout, got: {err}");
    assert!(!job.status().is_terminal(), "the job itself keeps running");
    // Waiting longer succeeds — nothing was lost by the timed-out wait.
    job.result(Duration::from_secs(30)).expect("job still completes");
    executor.shutdown();
}
