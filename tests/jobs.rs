//! End-to-end tests of the fault-tolerant job service: the acceptance
//! scenarios of the job-layer issue, all deterministic.
//!
//! (a) a transient fault is retried with backoff and then succeeds, with
//!     counts identical to a clean run of the same seeded backend;
//! (b) a fatal error is not retried;
//! (c) a hung attempt is abandoned as `TimedOut`;
//! (d) a fallback chain completes on its fallback member and records
//!     which backend actually served the job.
//!
//! No assertion depends on wall-clock timing: tests assert on attempt
//! counts, statuses, the policy's pure-function backoff schedule, and
//! seeded counts.

use qukit::backend::{DdSimulatorBackend, QasmSimulatorBackend, StabilizerBackend};
use qukit::execute::execute;
use qukit::fault::{FallbackChain, FaultInjectingBackend, FaultMode};
use qukit::job::{ExecutorConfig, JobExecutor, JobStatus};
use qukit::provider::Provider;
use qukit::retry::RetryPolicy;
use qukit::QuantumCircuit;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(60);

fn bell() -> QuantumCircuit {
    let mut circ = QuantumCircuit::new(2);
    circ.h(0).unwrap();
    circ.cx(0, 1).unwrap();
    circ
}

fn single_worker(backend: Box<dyn qukit::Backend>, retry: RetryPolicy) -> JobExecutor {
    let mut provider = Provider::new();
    provider.register(backend);
    JobExecutor::with_config(
        provider,
        ExecutorConfig { workers: 1, queue_capacity: 8, retry, ..Default::default() },
    )
}

/// Scenario (a): two injected transient failures, retried with backoff,
/// third attempt succeeds — and the counts match a clean run of the same
/// seeded backend exactly.
#[test]
fn transient_faults_are_retried_then_succeed_with_clean_counts() {
    let seed = 1234;
    let retry = RetryPolicy::new(3)
        .with_base_backoff(Duration::from_millis(2))
        .with_backoff_factor(2.0)
        .with_jitter(0.1)
        .with_jitter_seed(9);
    let flaky = FaultInjectingBackend::new(
        Box::new(QasmSimulatorBackend::new().with_seed(seed)),
        FaultMode::FailTimes(2),
    );
    let executor = single_worker(Box::new(flaky), retry.clone());

    let job = executor.submit(&bell(), "qasm_simulator", 500).unwrap();
    let counts = job.result(WAIT).unwrap();

    assert_eq!(job.status(), JobStatus::Done);
    assert_eq!(job.attempts(), 3, "two failures + one success");
    // The backoffs actually waited are exactly the policy's (seeded,
    // deterministic) schedule.
    assert_eq!(job.backoffs(), retry.schedule());
    assert_eq!(job.executed_on().as_deref(), Some("qasm_simulator"));

    // A clean run of the same seeded backend gives identical counts:
    // retries are transparent to the result.
    let clean = execute(&bell(), &QasmSimulatorBackend::new().with_seed(seed), 500).unwrap();
    let as_pairs = |c: &qukit::Counts| {
        let mut v: Vec<(u64, usize)> = c.iter().collect();
        v.sort_unstable();
        v
    };
    assert_eq!(as_pairs(&counts), as_pairs(&clean));
}

/// Scenario (b): a fatal (non-transient) error is not retried, however
/// many attempts the policy would allow.
#[test]
fn fatal_errors_are_not_retried() {
    let retry = RetryPolicy::new(5).with_base_backoff(Duration::from_millis(1));
    let executor = single_worker(Box::new(StabilizerBackend::new()), retry);

    // A T gate is non-Clifford: the stabilizer backend rejects it fatally.
    let mut circ = QuantumCircuit::new(1);
    circ.t(0).unwrap();
    let job = executor.submit(&circ, "stabilizer_simulator", 100).unwrap();
    let err = job.result(WAIT).unwrap_err();

    assert_eq!(job.status(), JobStatus::Error);
    assert_eq!(job.attempts(), 1, "fatal errors must fail fast");
    assert!(job.backoffs().is_empty(), "no backoff for a non-retry");
    assert!(err.to_string().contains("failed"), "{err}");
}

/// Scenario (c): a hung attempt is abandoned once the per-attempt
/// timeout elapses and the job ends `TimedOut`.
#[test]
fn hung_attempts_time_out() {
    let retry = RetryPolicy::new(3)
        .with_base_backoff(Duration::from_millis(1))
        .with_attempt_timeout(Duration::from_millis(30));
    let slow = FaultInjectingBackend::new(
        Box::new(QasmSimulatorBackend::new().with_seed(1)),
        // The hang is far longer than the timeout, so the outcome does
        // not depend on scheduling luck.
        FaultMode::Hang(Duration::from_millis(1500)),
    );
    let executor = single_worker(Box::new(slow), retry);

    let job = executor.submit(&bell(), "qasm_simulator", 100).unwrap();
    let err = job.result(WAIT).unwrap_err();

    assert_eq!(job.status(), JobStatus::TimedOut);
    assert_eq!(job.attempts(), 1, "a hung attempt is abandoned, not retried");
    assert!(err.to_string().contains("timed out"), "{err}");
}

/// Scenario (d): the decision-diagram simulator cannot run a non-unitary
/// instruction; a fallback chain degrades to the qasm simulator and the
/// job records which backend actually served it.
#[test]
fn fallback_chain_serves_on_fallback_and_records_backend() {
    let chain = FallbackChain::new("dd_with_fallback")
        .then(Box::new(DdSimulatorBackend::new().with_seed(7)))
        .then(Box::new(QasmSimulatorBackend::new().with_seed(7)));
    assert_eq!(chain.members(), vec!["dd_simulator", "qasm_simulator"]);
    let executor = single_worker(Box::new(chain), RetryPolicy::none());

    // reset is non-unitary: dd_simulator rejects it, qasm_simulator runs it.
    let mut circ = QuantumCircuit::with_size(1, 1);
    circ.x(0).unwrap();
    circ.reset(0).unwrap();
    circ.x(0).unwrap();
    circ.measure(0, 0).unwrap();

    let job = executor.submit(&circ, "dd_with_fallback", 64).unwrap();
    let counts = job.result(WAIT).unwrap();

    assert_eq!(job.status(), JobStatus::Done);
    assert_eq!(job.executed_on().as_deref(), Some("qasm_simulator"));
    assert_eq!(counts.get("1"), 64, "x; reset; x leaves |1>");

    // A unitary circuit stays on the primary member.
    let job = executor.submit(&bell(), "dd_with_fallback", 64).unwrap();
    job.result(WAIT).unwrap();
    assert_eq!(job.executed_on().as_deref(), Some("dd_simulator"));
}

/// Corrupted-counts faults keep the shot total but scramble outcomes —
/// the decorator is observable without breaking histogram invariants.
#[test]
fn corrupted_counts_preserve_totals_but_not_outcomes() {
    let seed = 42;
    let corrupting = FaultInjectingBackend::new(
        Box::new(QasmSimulatorBackend::new().with_seed(seed)),
        FaultMode::CorruptCounts,
    )
    .with_seed(99);
    let executor = single_worker(Box::new(corrupting), RetryPolicy::none());

    let job = executor.submit(&bell(), "qasm_simulator", 400).unwrap();
    let corrupted = job.result(WAIT).unwrap();
    let clean = execute(&bell(), &QasmSimulatorBackend::new().with_seed(seed), 400).unwrap();

    assert_eq!(corrupted.total(), 400, "corruption must preserve the shot total");
    let pairs = |c: &qukit::Counts| {
        let mut v: Vec<(u64, usize)> = c.iter().collect();
        v.sort_unstable();
        v
    };
    assert_ne!(pairs(&corrupted), pairs(&clean), "corruption must change outcomes");
}

/// The queue really queues: with one worker pinned by a slow job, later
/// submissions wait their turn and everything drains in order on
/// shutdown.
#[test]
fn queued_jobs_drain_in_submission_order() {
    let slow = FaultInjectingBackend::new(
        Box::new(QasmSimulatorBackend::new().with_seed(3)),
        FaultMode::Hang(Duration::from_millis(40)),
    );
    let executor = single_worker(Box::new(slow), RetryPolicy::none());

    let jobs: Vec<_> =
        (0..3).map(|_| executor.submit(&bell(), "qasm_simulator", 32).unwrap()).collect();
    for job in &jobs {
        assert_eq!(job.result(WAIT).unwrap().total(), 32);
        assert_eq!(job.status(), JobStatus::Done);
    }
    // Ids are assigned in submission order.
    assert!(jobs.windows(2).all(|w| w[0].id() < w[1].id()));
}
