OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg m0[1];
creg m1[1];
creg out[1];
// message state
ry(1.2) q[0];
// Bell pair
h q[1];
cx q[1],q[2];
// Bell measurement
cx q[0],q[1];
h q[0];
measure q[0] -> m0[0];
measure q[1] -> m1[0];
// corrections
if (m1==1) x q[2];
if (m0==1) z q[2];
measure q[2] -> out[0];
