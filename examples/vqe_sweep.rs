//! Batched parameter sweeps — the Estimator-primitive traffic shape.
//!
//! A VQE outer loop evaluates the same ansatz at many angle points. This
//! example builds a 2-local ansatz as a [`ParameterizedCircuit`], binds
//! it over a 64-point angle grid, and runs the whole grid through the
//! batched sweep path against a fake 16-qubit device: the template is
//! transpiled (routed onto the device topology) exactly once, and all
//! bindings execute in one batch with a shared amplitude buffer. It then
//! re-runs every point as an independent job through the executor — the
//! pre-batch traffic shape, where every binding pays its own transpile,
//! validation and queueing — and asserts the two paths produce
//! bit-identical histograms.
//!
//! Run with: `cargo run --release --example vqe_sweep`

use qukit::aer::noise::NoiseModel;
use qukit::backend::FakeDevice;
use qukit::terra::parameter::ParameterizedCircuit;
use qukit::{ExecutorConfig, JobExecutor, Provider};
use std::time::{Duration, Instant};

const NUM_QUBITS: usize = 6;
const POINTS: usize = 64;
const SHOTS: usize = 256;
const SEED: u64 = 17;

/// A 2-local ansatz: Ry rotation layer, CX entangler ladder, Ry layer.
fn two_local() -> Result<ParameterizedCircuit, Box<dyn std::error::Error>> {
    let mut ansatz = ParameterizedCircuit::new(NUM_QUBITS);
    let params: Vec<_> =
        (0..2 * NUM_QUBITS).map(|i| ansatz.parameter(format!("theta{i}"))).collect();
    for (q, &param) in params.iter().take(NUM_QUBITS).enumerate() {
        ansatz.ry(param, q)?;
    }
    for q in 0..NUM_QUBITS - 1 {
        ansatz.circuit_mut().cx(q, q + 1)?;
    }
    for (q, &param) in params.iter().skip(NUM_QUBITS).enumerate() {
        ansatz.ry(param, q)?;
    }
    Ok(ansatz)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ansatz = two_local()?;
    let num_params = ansatz.num_parameters();
    let grid: Vec<Vec<f64>> = (0..POINTS)
        .map(|p| (0..num_params).map(|i| 0.1 + 0.37 * (p * num_params + i) as f64).collect())
        .collect();
    println!(
        "2-local ansatz: {NUM_QUBITS} qubits, {num_params} parameters, {POINTS}-point grid, \
         {SHOTS} shots per point"
    );

    // A noiseless, seeded 16-qubit device: every run pays the real
    // transpile (routing onto the ibmqx5 topology), and fixed seeds make
    // the two execution paths exactly comparable. Optimization level 1
    // copies rotation angles verbatim, which is what lets the sweep
    // validate its transpile-once template against the first binding.
    let device =
        FakeDevice::ibmqx5().with_noise(NoiseModel::new()).with_seed(SEED).with_opt_level(1);
    let mut provider = Provider::new();
    provider.register(Box::new(device));
    let executor = JobExecutor::with_config(
        provider,
        ExecutorConfig { workers: 1, queue_capacity: POINTS + 4, ..Default::default() },
    );

    // Batched path: one sweep call — template transpiled once, all
    // bindings through one Backend::run_batch pass.
    qukit::terra::transpiler::cache::global().clear();
    let start = Instant::now();
    let report = executor.run_sweep(&ansatz, &grid, "ibmqx5", SHOTS)?;
    let batch_wall = start.elapsed().as_secs_f64();
    println!(
        "batched sweep:    {:>8.2} ms  (template transpiled once: {})",
        batch_wall * 1e3,
        report.transpiled_once
    );

    // Independent-jobs path: the pre-batch traffic shape — every binding
    // submitted as its own job (a fresh device transpile, per-job
    // validation, queueing, a fresh statevector allocation each). The
    // transpile cache is cleared first because a real sweep presents
    // angles the cache has never seen.
    qukit::terra::transpiler::cache::global().clear();
    let start = Instant::now();
    let mut independent = Vec::with_capacity(POINTS);
    for values in &grid {
        let bound = ansatz.bind(values)?;
        let job = executor.submit(&bound, "ibmqx5", SHOTS)?;
        independent.push(job.result(Duration::from_secs(120))?);
    }
    let jobs_wall = start.elapsed().as_secs_f64();
    println!("independent jobs: {:>8.2} ms", jobs_wall * 1e3);
    println!("speedup: {:.1}x", jobs_wall / batch_wall);

    // The batched path is an optimization, not an approximation: on the
    // same seeded backend it must reproduce the per-job histograms bit
    // for bit.
    assert_eq!(report.counts, independent, "sweep must match per-job execution exactly");
    println!("verified: all {POINTS} histograms bit-identical across both paths");

    let energies: Vec<f64> = report
        .counts
        .iter()
        .map(|counts| {
            // A toy diagonal observable: ⟨Z…Z⟩ estimated from parity.
            counts
                .iter()
                .map(|(outcome, n)| {
                    let parity = if (outcome.count_ones() & 1) == 0 { 1.0 } else { -1.0 };
                    parity * n as f64 / counts.total() as f64
                })
                .sum()
        })
        .collect();
    let best = energies.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("best ⟨Z…Z⟩ over the grid: {best:.4}");
    Ok(())
}
