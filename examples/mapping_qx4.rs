//! Reproduction of the paper's Fig. 4: mapping Fig. 1 to IBM QX4.
//!
//! Compares the naive mapping (Fig. 4a — route every CNOT independently,
//! no optimization) against the improved search-based flow (Fig. 4b) and
//! prints per-strategy gate counts and circuit depth.
//!
//! Run with: `cargo run --example mapping_qx4`

use qukit_terra::circuit::fig1_circuit;
use qukit_terra::coupling::CouplingMap;
use qukit_terra::draw::draw;
use qukit_terra::transpiler::{transpile, MapperKind, TranspileOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circ = fig1_circuit();
    let qx4 = CouplingMap::ibm_qx4();
    println!("Input: the paper's Fig. 1 circuit ({} gates)", circ.num_gates());
    println!("Target: {qx4}\n");

    println!(
        "{:<12} {:<6} {:>6} {:>6} {:>6} {:>7} {:>7}",
        "mapper", "opt", "gates", "cx", "1q", "swaps", "depth"
    );
    let mut fig4a = None;
    let mut fig4b = None;
    for (mapper, label) in [
        (MapperKind::Basic, "basic"),
        (MapperKind::Lookahead, "lookahead"),
        (MapperKind::AStar, "astar"),
    ] {
        for level in [0u8, 3] {
            let options = TranspileOptions {
                coupling_map: Some(qx4.clone()),
                mapper,
                optimization_level: level,
                ..TranspileOptions::default()
            };
            let result = transpile(&circ, &options)?;
            let ops = result.circuit.count_ops();
            let cx = ops.get("cx").copied().unwrap_or(0);
            let total = result.circuit.num_gates();
            println!(
                "{:<12} {:<6} {:>6} {:>6} {:>6} {:>7} {:>7}",
                label,
                level,
                total,
                cx,
                total - cx,
                result.num_swaps,
                result.circuit.depth()
            );
            if mapper == MapperKind::Basic && level == 0 {
                fig4a = Some(result.circuit.clone());
            } else if mapper == MapperKind::AStar && level == 3 {
                fig4b = Some(result.circuit.clone());
            }
        }
    }

    let fig4a = fig4a.expect("computed above");
    let fig4b = fig4b.expect("computed above");
    println!("\nFig. 4a (naive flow, {} gates):\n{}", fig4a.num_gates(), draw(&fig4a));
    println!("Fig. 4b (optimized flow, {} gates):\n{}", fig4b.num_gates(), draw(&fig4b));
    println!(
        "Improvement: {} -> {} gates ({:.0}% smaller)",
        fig4a.num_gates(),
        fig4b.num_gates(),
        100.0 * (1.0 - fig4b.num_gates() as f64 / fig4a.num_gates() as f64)
    );
    Ok(())
}
