//! Noise exploration on GHZ states — the paper's Aer story.
//!
//! "These algorithms can be run on 'clean' (noiseless) simulators …
//! subsequently, the algorithms can also be run on noisy simulators in
//! order to analyze to what extent realistic noise levels deteriorate the
//! results." This example sweeps the two-qubit depolarizing rate and shows
//! GHZ fidelity decay, then applies Ignis measurement mitigation to
//! recover part of the readout loss.
//!
//! Run with: `cargo run --example noisy_ghz`

use qukit_aer::noise::NoiseModel;
use qukit_aer::simulator::QasmSimulator;
use qukit_ignis::mitigation::MeasurementFilter;
use qukit_terra::circuit::QuantumCircuit;

fn ghz_measured(n: usize) -> QuantumCircuit {
    let mut circ = QuantumCircuit::with_size(n, n);
    circ.h(0).expect("valid");
    for q in 1..n {
        circ.cx(q - 1, q).expect("valid");
    }
    for q in 0..n {
        circ.measure(q, q).expect("valid");
    }
    circ
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4;
    let shots = 4000;
    let circ = ghz_measured(n);
    let ideal = QasmSimulator::new().with_seed(1).run(&circ, shots)?;

    println!("GHZ-{n}: success probability P(|0…0⟩) + P(|1…1⟩) vs CX error rate\n");
    println!("{:>8} {:>10} {:>10}", "p(cx)", "success", "fidelity");
    for p2 in [0.0, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2] {
        let noise = NoiseModel::depolarizing(p2 / 10.0, p2, 0.0);
        let counts = QasmSimulator::new().with_seed(1).with_noise(noise).run(&circ, shots)?;
        let success = counts.probability(0) + counts.probability((1 << n) - 1);
        let fidelity = counts.hellinger_fidelity(&ideal);
        println!("{p2:>8.3} {success:>10.4} {fidelity:>10.4}");
    }

    // Readout-error mitigation (Ignis).
    println!("\nReadout-error mitigation at 5% symmetric flip probability:");
    let mut noise = NoiseModel::new();
    noise.set_readout_error(qukit_aer::noise::ReadoutError::symmetric(0.05));
    let noisy = QasmSimulator::new().with_seed(2).with_noise(noise.clone()).run(&circ, shots)?;
    let filter = MeasurementFilter::calibrate(n, &noise, 8000, 3)?;
    let mitigated = filter.apply(&noisy);
    println!(
        "raw:       success = {:.4}, fidelity = {:.4}",
        noisy.probability(0) + noisy.probability((1 << n) - 1),
        noisy.hellinger_fidelity(&ideal)
    );
    println!(
        "mitigated: success = {:.4}, fidelity = {:.4}",
        mitigated.probability(0) + mitigated.probability((1 << n) - 1),
        mitigated.hellinger_fidelity(&ideal)
    );
    Ok(())
}
