//! The algorithm zoo: every Aqua algorithm end to end in one run.
//!
//! Exercises the public API across the whole application layer the paper's
//! Aqua section describes — oracle algorithms, search, counting, phase
//! estimation, arithmetic, teleportation, state preparation and
//! Hamiltonian simulation.
//!
//! Run with: `cargo run --release --example algorithm_zoo`

use qukit_aqua::arithmetic::run_adder;
use qukit_aqua::counting::estimate_count;
use qukit_aqua::evolution::{exact_evolution_matrix, trotter_evolution};
use qukit_aqua::grover::{grover_circuit, success_probability};
use qukit_aqua::operator::transverse_field_ising;
use qukit_aqua::oracle_algorithms::{bernstein_vazirani_circuit, deutsch_jozsa_circuit, DjOracle};
use qukit_aqua::phase_estimation::estimate_phase;
use qukit_aqua::simon::run_simon;
use qukit_aqua::state_preparation::prepare_state;
use qukit_aqua::teleportation::teleported_one_probability;
use qukit_terra::gate::Gate;
use qukit_terra::matrix::state_fidelity;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sim = qukit_aer::simulator::QasmSimulator::new().with_seed(42);

    // Deutsch-Jozsa: constant vs balanced in one query.
    let constant = deutsch_jozsa_circuit(4, &DjOracle::Constant(true))?;
    let balanced = deutsch_jozsa_circuit(4, &DjOracle::BalancedParity(0b1010))?;
    println!(
        "Deutsch-Jozsa:      constant -> {:04b}, balanced -> {:04b}",
        sim.run(&constant, 64)?.most_frequent().unwrap_or(99),
        sim.run(&balanced, 64)?.most_frequent().unwrap_or(99),
    );

    // Bernstein-Vazirani: the hidden string in one query.
    let secret = 0b10110u64;
    let bv = bernstein_vazirani_circuit(5, secret)?;
    println!(
        "Bernstein-Vazirani: secret {secret:05b} -> read {:05b}",
        sim.run(&bv, 64)?.most_frequent().unwrap_or(0)
    );

    // Simon: hidden period via GF(2) post-processing.
    let period = 0b1011u64;
    println!(
        "Simon:              period {period:04b} -> recovered {:04b}",
        run_simon(4, period, 7, 200)?
    );

    // Grover: amplitude amplification.
    let grover = grover_circuit(4, &[0b0110], None)?;
    println!(
        "Grover:             P(|0110⟩) = {:.3} after optimal iterations",
        success_probability(&grover, &[0b0110])?
    );

    // Quantum counting: how many marked states?
    println!(
        "Counting:           3 marked of 8 -> estimate {:.2}",
        estimate_count(3, &[1, 3, 6], 5, 300, 5)?
    );

    // Phase estimation.
    println!(
        "QPE:                φ = 0.3125 -> estimate {:.4}",
        estimate_phase(5, 0.3125, 200, 3)?
    );

    // Arithmetic: 5 + 6 on the Cuccaro adder.
    println!("Adder:              5 + 6 = {}", run_adder(3, 5, 6)?);

    // Teleportation with conditioned corrections.
    println!(
        "Teleportation:      P(1) for teleported Ry(2.0)|0⟩ = {:.3} (sin²(1.0) = {:.3})",
        teleported_one_probability(&[(Gate::Ry(2.0), 0)], 4000, 9)?,
        (1.0f64).sin().powi(2)
    );

    // Arbitrary state preparation: a random 3-qubit state, exactly.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
    let target = qukit_terra::reference::random_state(3, &mut rng);
    let prep = prepare_state(&target)?;
    let produced = qukit_terra::reference::statevector(&prep)?;
    println!(
        "State preparation:  random 3-qubit target, fidelity = {:.9} ({} gates)",
        state_fidelity(&produced, &target),
        prep.num_gates()
    );

    // Hamiltonian simulation: TFIM quench.
    let h = transverse_field_ising(3, 1.0, 0.9);
    let time = 0.8;
    let circ = trotter_evolution(&h, time, 8)?;
    let initial = {
        let mut v = vec![qukit_terra::complex::Complex::ZERO; 8];
        v[0] = qukit_terra::complex::Complex::ONE;
        v
    };
    let approx = qukit_terra::reference::evolve(&circ, &initial)?;
    let exact = exact_evolution_matrix(&h.to_matrix(), time).matvec(&initial);
    println!(
        "Trotter evolution:  TFIM-3 quench t = {time}, 8 steps, fidelity = {:.6}",
        state_fidelity(&approx, &exact)
    );
    Ok(())
}
