//! Quickstart: the paper's Section IV user walkthrough, end to end.
//!
//! Builds the circuit of Fig. 1 with the builder API, shows its OpenQASM
//! and ASCII diagram, simulates it on the ideal `qasm_simulator`, and then
//! "runs it on the device" — the fake `ibmqx4` backend that enforces the
//! real device's coupling constraints and noise.
//!
//! Run with: `cargo run --example quickstart`

use qukit::execute::execute;
use qukit::provider::Provider;
use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::draw::draw;
use qukit_terra::qasm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Define a circuit (the paper's Fig. 1), exactly like the Python
    // walkthrough: circ.h(q[2]); circ.cx(q[2], q[3]); ...
    let mut circ = QuantumCircuit::new(4);
    circ.h(2)?;
    circ.cx(2, 3)?;
    circ.cx(0, 1)?;
    circ.h(1)?;
    circ.cx(1, 2)?;
    circ.t(0)?;
    circ.cx(2, 0)?;
    circ.cx(0, 1)?;

    println!("OpenQASM 2.0 (Fig. 1a):\n{}", qasm::emit(&circ));
    println!("Circuit diagram (Fig. 1b):\n{}", draw(&circ));

    // --- Append measurements: measured_circ = circ + measurement.
    let mut measurement = QuantumCircuit::with_size(4, 4);
    for q in 0..4 {
        measurement.measure(q, q)?;
    }
    let mut measured_circ = circ.clone();
    measured_circ.add_creg("c", 4)?;
    measured_circ.compose(&measurement)?;

    // --- Simulate on the clean simulator first...
    let provider = Provider::with_defaults();
    let sim = provider.get_backend("qasm_simulator")?;
    let sim_counts = execute(&measured_circ, sim, 1024)?;
    println!("qasm_simulator counts: {sim_counts}");

    // --- ...then change the backend string to run on the (fake) device.
    let device = provider.get_backend("ibmqx4")?;
    let device_counts = execute(&measured_circ, device, 1024)?;
    println!("ibmqx4 counts:         {device_counts}");

    let fidelity = sim_counts.hellinger_fidelity(&device_counts);
    println!("\nHellinger fidelity ideal vs device: {fidelity:.4}");
    Ok(())
}
