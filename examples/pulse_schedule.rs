//! Pulse-level lowering — the OpenPulse layer the paper's Terra section
//! names.
//!
//! Transpiles a Bell circuit for ibmqx4 and lowers the elementary-gate
//! result to a microwave pulse schedule, printing a per-channel timeline.
//!
//! Run with: `cargo run --release --example pulse_schedule`

use qukit::backend::FakeDevice;
use qukit_terra::circuit::QuantumCircuit;
use qukit_terra::coupling::CouplingMap;
use qukit_terra::pulse::{lower_to_pulses, Calibration, PulseInstruction};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Bell pair with measurement, as the device will run it.
    let mut circ = QuantumCircuit::with_size(2, 2);
    circ.h(0)?;
    circ.cx(0, 1)?;
    circ.measure(0, 0)?;
    circ.measure(1, 1)?;

    // Transpile to the elementary basis {U, CX} under QX4's constraints.
    let device = FakeDevice::ibmqx4();
    let elementary = device.transpile(&circ)?;
    println!("transpiled: {} gates, depth {}\n", elementary.num_gates(), elementary.depth());

    // Lower to pulses with a calibration derived from the coupling map.
    let edges: Vec<(usize, usize)> = CouplingMap::ibm_qx4().edges().collect();
    let calibration = Calibration::with_edges(&edges);
    let schedule = lower_to_pulses(&elementary, &calibration)?;

    println!(
        "pulse schedule '{}': {} instructions, {} dt total, channels {:?}\n",
        schedule.name(),
        schedule.instructions().len(),
        schedule.duration(),
        schedule.channels().iter().map(|c| c.to_string()).collect::<Vec<_>>()
    );
    println!("{:>8} {:>6} {:>10}  description", "t0", "ch", "dur");
    for (start, inst) in schedule.instructions() {
        let what = match inst {
            PulseInstruction::Play { waveform, .. } => {
                format!("play {} (peak {:.2})", waveform.name(), waveform.peak_amplitude())
            }
            PulseInstruction::ShiftPhase { phase, .. } => {
                format!("shift_phase {phase:+.3} rad (virtual Z)")
            }
            PulseInstruction::Delay { .. } => "delay".to_owned(),
            PulseInstruction::Acquire { memory_slot, .. } => {
                format!("acquire -> c[{memory_slot}]")
            }
        };
        println!(
            "{:>8} {:>6} {:>10}  {}",
            start,
            inst.channel().to_string(),
            inst.duration(),
            what
        );
    }
    Ok(())
}
