//! Decision-diagram compactness — the paper's Fig. 3 story.
//!
//! Compares the explicit `2^n × 2^n` / `2^n` representations against the
//! decision-diagram node counts for structured circuits, and prints the
//! Graphviz rendering of a small state DD (the style of Fig. 3b).
//!
//! Run with: `cargo run --release --example dd_compression`

use qukit_aqua::circuits::{ghz_circuit, qft_circuit};
use qukit_dd::export::vector_to_dot;
use qukit_dd::simulator::DdSimulator;
use qukit_terra::circuit::QuantumCircuit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("State representation sizes: dense amplitudes vs DD nodes\n");
    println!(
        "{:>3} {:>14} {:>10} {:>14} {:>10}",
        "n", "ghz dense", "ghz DD", "qft dense", "qft DD"
    );
    for n in [4usize, 8, 12, 16, 20] {
        let ghz = DdSimulator::new().run(&ghz_circuit(n))?;
        let qft = DdSimulator::new().run(&qft_circuit(n.min(12)))?; // QFT cost grows fast
        println!(
            "{:>3} {:>14} {:>10} {:>14} {:>10}",
            n,
            1u64 << n,
            ghz.node_count(),
            1u64 << n.min(12),
            qft.node_count()
        );
    }

    // Matrix DD of the paper's 3-qubit example flavour: dense entries vs
    // matrix nodes for the full circuit unitary.
    println!("\nCircuit unitary: dense 2^n x 2^n entries vs matrix-DD nodes\n");
    println!("{:>3} {:>16} {:>10}", "n", "dense entries", "DD nodes");
    for n in [3usize, 6, 9, 12] {
        let circ = ghz_circuit(n);
        let (package, edge) = DdSimulator::new().build_unitary(&circ)?;
        println!("{:>3} {:>16} {:>10}", n, 1u128 << (2 * n), package.matrix_nodes(edge));
    }

    // A small DD rendered as Graphviz (Fig. 3b style).
    let mut circ = QuantumCircuit::new(3);
    circ.h(0)?;
    circ.cx(0, 1)?;
    circ.cx(1, 2)?;
    let state = DdSimulator::new().run(&circ)?;
    println!("\nGraphviz rendering of the 3-qubit GHZ state DD:\n");
    println!("{}", vector_to_dot(&state.package, state.root));
    Ok(())
}
