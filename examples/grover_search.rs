//! Grover search: ideal simulation vs execution on a constrained device.
//!
//! Searches a 4-qubit space for a marked element and reports the exact
//! amplification curve over iterations; then runs a 3-qubit search on the
//! fake `ibmqx4` device (with its coupling constraints and noise) to show
//! the NISQ-era degradation the paper's Aer section discusses.
//!
//! Run with: `cargo run --example grover_search`

use qukit::backend::{Backend, FakeDevice, QasmSimulatorBackend};
use qukit_aqua::grover::{grover_circuit, optimal_iterations, success_probability};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4;
    let marked = [0b1011u64];
    println!("Searching {} states for |{:04b}⟩", 1 << n, marked[0]);

    // Exact amplification curve.
    println!("\niterations  success probability");
    let optimal = optimal_iterations(n, marked.len());
    for iterations in 0..=2 * optimal {
        let circ = grover_circuit(n, &marked, Some(iterations))?;
        let p = success_probability(&circ, &marked)?;
        let bar: String = std::iter::repeat_n('#', (p * 40.0) as usize).collect();
        let mark = if iterations == optimal { " <- optimal" } else { "" };
        println!("{iterations:>10}  {p:.4} {bar}{mark}");
    }

    // Shot-based execution, ideal vs fake device (3-qubit instance keeps
    // the transpiled noisy simulation fast).
    let device_marked = [0b101u64];
    let mut measured = grover_circuit(3, &device_marked, None)?;
    measured.measure_all();
    let shots = 1024;

    let ideal = QasmSimulatorBackend::new().with_seed(7).run(&measured, shots)?;
    let device = FakeDevice::ibmqx4().with_seed(7);
    let noisy = device.run(&measured, shots)?;

    println!("\nideal simulator: P(marked) = {:.3}", ideal.probability(device_marked[0]));
    println!(
        "fake ibmqx4:     P(marked) = {:.3}  (transpiled depth {})",
        noisy.probability(device_marked[0]),
        device.transpile(&measured)?.depth()
    );
    println!(
        "\nThe marked state is still the argmax on the noisy device: {}",
        noisy.most_frequent() == Some(device_marked[0])
    );
    Ok(())
}
