//! VQE on the H2 molecule — the paper's flagship Aqua application.
//!
//! Runs the hardware-efficient VQE [Kandala et al., Nature 2017] on the
//! 2-qubit H2 Hamiltonian with both provided optimizers and compares
//! against exact diagonalization, then sweeps a transverse-field Ising
//! chain to show the hybrid loop on a scalable Hamiltonian family.
//!
//! Run with: `cargo run --release --example vqe_h2`

use qukit_aqua::operator::{h2_hamiltonian, transverse_field_ising};
use qukit_aqua::optimizers::{NelderMead, Spsa};
use qukit_aqua::vqe::{HardwareEfficientAnsatz, Vqe};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- H2 at equilibrium bond distance.
    let h2 = h2_hamiltonian();
    let exact = h2.min_eigenvalue();
    println!("H2 (0.735 Å, STO-3G, parity mapping)");
    println!("exact ground-state energy: {exact:.8} Hartree\n");

    let ansatz = HardwareEfficientAnsatz::new(2, 1);
    let vqe = Vqe::new(&h2, ansatz);

    let nm = NelderMead { max_evaluations: 4000, ..NelderMead::new() };
    let result = vqe.run(&nm, &vec![0.1; ansatz.num_parameters()])?;
    println!(
        "Nelder-Mead: E = {:.8}  (error {:+.2e}, {} evaluations)",
        result.energy,
        result.energy - exact,
        result.evaluations
    );

    let spsa = Spsa { iterations: 1000, a: 1.0, c: 0.2, seed: 11 };
    let result = vqe.run(&spsa, &vec![0.2; ansatz.num_parameters()])?;
    println!(
        "SPSA:        E = {:.8}  (error {:+.2e}, {} evaluations)",
        result.energy,
        result.energy - exact,
        result.evaluations
    );

    // --- Transverse-field Ising chain sweep.
    println!("\nTransverse-field Ising chain, 4 qubits, J = 1:");
    println!("{:>6} {:>14} {:>14} {:>10}", "h", "VQE", "exact", "error");
    for field in [0.2, 0.5, 1.0, 1.5, 2.0] {
        let ising = transverse_field_ising(4, 1.0, field);
        let exact = ising.min_eigenvalue();
        let ansatz = HardwareEfficientAnsatz::new(4, 2);
        let vqe = Vqe::new(&ising, ansatz);
        let nm = NelderMead { max_evaluations: 8000, ..NelderMead::new() };
        let result = vqe.run(&nm, &vec![0.3; ansatz.num_parameters()])?;
        println!(
            "{:>6.2} {:>14.6} {:>14.6} {:>10.2e}",
            field,
            result.energy,
            exact,
            (result.energy - exact).abs()
        );
    }
    Ok(())
}
